"""U-relations: the representation system of MayBMS (Section 2.1).

A U-relation is a standard relation extended with *condition columns*
(pairs of integers: variable id, assigned value) and *probability columns*
(floats caching the marginal probability of each assignment).  This module
stores exactly that wide relational encoding -- payload columns followed
by ``cond_arity`` triples ``(_v{i}, _d{i}, _p{i})`` -- the same layout the
paper describes for the PostgreSQL implementation ("storing the variables
and their possible assignments as pairs of integers, and probabilities as
floating-point numbers", Section 2.4).

Typed-certain (t-certain) tables are the ``cond_arity = 0`` case.

Attribute-level uncertainty is achieved by *vertical decomposition*: a
relation with uncertain attributes is split into one U-relation per
attribute keyed by a tuple id, and re-assembled ("undoing the vertical
decomposition on demand") by joining on the tuple id and conjoining
conditions; see :func:`vertical_decompose` / :func:`vertical_recompose`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.core.conditions import Condition, TRUE_CONDITION
from repro.core.variables import TOP_VARIABLE, VariableRegistry
from repro.engine.relation import Relation
from repro.engine.schema import Column, Schema
from repro.engine.types import FLOAT, INTEGER, NULL
from repro.errors import ConditionError, SchemaError

#: Column-name prefixes of the wide encoding's condition triples.
VAR_PREFIX = "_v"
VAL_PREFIX = "_d"
PROB_PREFIX = "_p"


def condition_columns(cond_arity: int, qualifier: Optional[str] = None) -> List[Column]:
    """The schema columns of ``cond_arity`` condition triples."""
    cols: List[Column] = []
    for i in range(cond_arity):
        cols.append(Column(f"{VAR_PREFIX}{i}", INTEGER, qualifier))
        cols.append(Column(f"{VAL_PREFIX}{i}", INTEGER, qualifier))
        cols.append(Column(f"{PROB_PREFIX}{i}", FLOAT, qualifier))
    return cols


def encode_condition(condition: Condition, cond_arity: int, registry: VariableRegistry) -> tuple:
    """Flatten a condition into ``cond_arity`` (var, val, prob) triples,
    padding with the reserved always-true atom."""
    if len(condition) > cond_arity:
        raise ConditionError(
            f"condition {condition!r} needs {len(condition)} triples, "
            f"encoding has {cond_arity}"
        )
    flat: List = []
    for var, value in condition:
        flat.extend((var, value, registry.probability(var, value)))
    for _ in range(cond_arity - len(condition)):
        flat.extend((TOP_VARIABLE, 0, 1.0))
    return tuple(flat)


def decode_condition(row: tuple, payload_arity: int, cond_arity: int) -> Optional[Condition]:
    """Read the condition triples out of a wide-encoded row.

    Returns None when the row's atoms are contradictory (possible only for
    rows produced by a join before its consistency filter runs).
    """
    atoms = []
    base = payload_arity
    for i in range(cond_arity):
        var = row[base + 3 * i]
        value = row[base + 3 * i + 1]
        atoms.append((var, value))
    return Condition.of(atoms)


_MISSING = object()


def decode_condition_columns(
    relation: Relation, payload_arity: int, cond_arity: int
) -> List[Optional[Condition]]:
    """Decode every row's condition from the relation's *columns*.

    The columnar counterpart of calling :func:`decode_condition` per row:
    it reads the (var, val) condition columns straight out of the cached
    column view and memoizes Condition construction on the raw atom
    tuple -- translated query results repeat a small set of conditions
    across many rows, so most rows hit the memo instead of re-sorting and
    re-deduplicating atoms.
    """
    n = len(relation)
    if cond_arity == 0:
        return [TRUE_CONDITION] * n
    columns = relation.columns()
    atom_columns: List[Sequence] = []
    for i in range(cond_arity):
        atom_columns.append(columns[payload_arity + 3 * i])
        atom_columns.append(columns[payload_arity + 3 * i + 1])
    memo: Dict[tuple, Optional[Condition]] = {}
    out: List[Optional[Condition]] = []
    for flat in zip(*atom_columns):
        condition = memo.get(flat, _MISSING)
        if condition is _MISSING:
            atoms = [(flat[2 * k], flat[2 * k + 1]) for k in range(cond_arity)]
            condition = Condition.of(atoms)
            memo[flat] = condition
        out.append(condition)
    return out


class URelation:
    """A U-relation in the wide relational encoding.

    ``relation`` holds payload columns followed by condition triples;
    ``registry`` is the variable table the conditions refer to.
    """

    __slots__ = ("relation", "payload_arity", "cond_arity", "registry")

    def __init__(
        self,
        relation: Relation,
        payload_arity: int,
        cond_arity: int,
        registry: VariableRegistry,
    ):
        expected = payload_arity + 3 * cond_arity
        if len(relation.schema) != expected:
            raise SchemaError(
                f"U-relation schema has {len(relation.schema)} columns, "
                f"expected {payload_arity} payload + {3 * cond_arity} condition"
            )
        self.relation = relation
        self.payload_arity = payload_arity
        self.cond_arity = cond_arity
        self.registry = registry

    # -- constructors -----------------------------------------------------------
    @staticmethod
    def from_conditions(
        payload_schema: Schema,
        rows: Sequence[tuple],
        conditions: Sequence[Condition],
        registry: VariableRegistry,
        cond_arity: Optional[int] = None,
    ) -> "URelation":
        """Build a U-relation from payload rows and parallel conditions."""
        if len(rows) != len(conditions):
            raise SchemaError(
                f"{len(rows)} rows but {len(conditions)} conditions"
            )
        if cond_arity is None:
            cond_arity = max((len(c) for c in conditions), default=0)
        schema = Schema(tuple(payload_schema) + tuple(condition_columns(cond_arity)))
        wide_rows = [
            tuple(row) + encode_condition(cond, cond_arity, registry)
            for row, cond in zip(rows, conditions)
        ]
        return URelation(
            Relation(schema, wide_rows), len(payload_schema), cond_arity, registry
        )

    @staticmethod
    def t_certain(relation: Relation, registry: VariableRegistry) -> "URelation":
        """Wrap a standard relation as a t-certain table (no conditions)."""
        return URelation(relation, len(relation.schema), 0, registry)

    @staticmethod
    def from_wide(
        relation: Relation, payload_arity: int, registry: VariableRegistry
    ) -> "URelation":
        """Adopt an already wide-encoded relation (e.g. a translated query
        result); the condition arity is inferred from the column count."""
        extra = len(relation.schema) - payload_arity
        if extra < 0 or extra % 3 != 0:
            raise SchemaError(
                f"cannot infer condition arity: {extra} non-payload columns"
            )
        return URelation(relation, payload_arity, extra // 3, registry)

    # -- views ----------------------------------------------------------------
    @property
    def is_t_certain(self) -> bool:
        return self.cond_arity == 0

    @property
    def payload_schema(self) -> Schema:
        return self.relation.schema.project(range(self.payload_arity))

    def payload_row(self, row: tuple) -> tuple:
        return row[: self.payload_arity]

    def payload_relation(self) -> Relation:
        """The payload columns only (conditions dropped, duplicates kept)."""
        return self.relation.project_positions(list(range(self.payload_arity)))

    def condition_of(self, row: tuple) -> Optional[Condition]:
        return decode_condition(row, self.payload_arity, self.cond_arity)

    def rows_with_conditions(self) -> Iterator[Tuple[tuple, Optional[Condition]]]:
        conditions = self.conditions()
        payload_arity = self.payload_arity
        for row, condition in zip(self.relation, conditions):
            yield row[:payload_arity], condition

    def conditions(self) -> List[Optional[Condition]]:
        """Per-row decoded conditions (columnar + memoized decode)."""
        return decode_condition_columns(
            self.relation, self.payload_arity, self.cond_arity
        )

    def condition_probabilities(self) -> List[float]:
        """Per-row marginal probability of each row's condition, straight
        from the condition columns.

        The fast path multiplies atom marginals without materializing
        Condition objects at all; rows with a repeated variable (possible
        only before a consistency filter runs) fall back to the full
        decode so duplicates count once and contradictions yield 0.
        """
        n = len(self.relation)
        if self.cond_arity == 0:
            return [1.0] * n
        columns = self.relation.columns()
        base = self.payload_arity
        probability = self.registry.probability
        out: List[float] = []
        if self.cond_arity == 1:
            memo: Dict[Tuple[int, int], float] = {}
            for var, value in zip(columns[base], columns[base + 1]):
                key = (var, value)
                p = memo.get(key)
                if p is None:
                    p = probability(var, value)
                    memo[key] = p
                out.append(p)
            return out
        atom_columns: List[Sequence] = []
        for i in range(self.cond_arity):
            atom_columns.append(columns[base + 3 * i])
            atom_columns.append(columns[base + 3 * i + 1])
        arity = self.cond_arity
        for flat in zip(*atom_columns):
            p = 1.0
            seen: List[int] = []
            duplicate = False
            for k in range(arity):
                var = flat[2 * k]
                if var == TOP_VARIABLE:
                    continue
                if var in seen:
                    duplicate = True
                    break
                seen.append(var)
                p *= probability(var, flat[2 * k + 1])
            if duplicate:
                atoms = [(flat[2 * k], flat[2 * k + 1]) for k in range(arity)]
                condition = Condition.of(atoms)
                p = 0.0 if condition is None else condition.probability(self.registry)
            out.append(p)
        return out

    def __len__(self) -> int:
        return len(self.relation)

    def __repr__(self) -> str:
        return (
            f"<URelation payload={self.payload_schema.names} "
            f"cond_arity={self.cond_arity} rows={len(self.relation)}>"
        )

    # -- possible-worlds semantics ---------------------------------------------------
    def in_world(self, assignment: Mapping[int, int], distinct: bool = False) -> Relation:
        """Instantiate this U-relation in the world given by a total
        assignment: the payload rows whose condition is satisfied."""
        payload_arity = self.payload_arity
        rows = []
        for row, condition in zip(self.relation, self.conditions()):
            if condition is not None and condition.satisfied_by(assignment):
                rows.append(row[:payload_arity])
        result = Relation(self.payload_schema, rows)
        return result.distinct() if distinct else result

    def possible_payloads(self) -> Relation:
        """Distinct payload tuples possible in at least one world with
        positive probability (the core of the ``possible`` construct)."""
        payload_arity = self.payload_arity
        seen = set()
        rows = []
        for row, probability in zip(self.relation, self.condition_probabilities()):
            if probability <= 0.0:
                continue
            payload = row[:payload_arity]
            if payload not in seen:
                seen.add(payload)
                rows.append(payload)
        return Relation(self.payload_schema, rows)

    # -- representation maintenance -------------------------------------------------
    def pad_to(self, cond_arity: int) -> "URelation":
        """Widen the condition columns to ``cond_arity`` with ⊤ padding."""
        if cond_arity < self.cond_arity:
            raise SchemaError(
                f"cannot narrow condition arity {self.cond_arity} -> {cond_arity}"
            )
        if cond_arity == self.cond_arity:
            return self
        extra = cond_arity - self.cond_arity
        padding = (TOP_VARIABLE, 0, 1.0) * extra
        schema = Schema(
            tuple(self.relation.schema)
            + tuple(
                Column(f"{prefix}{i}", typ)
                for i in range(self.cond_arity, cond_arity)
                for prefix, typ in (
                    (VAR_PREFIX, INTEGER),
                    (VAL_PREFIX, INTEGER),
                    (PROB_PREFIX, FLOAT),
                )
            )
        )
        rows = [row + padding for row in self.relation]
        return URelation(Relation(schema, rows), self.payload_arity, cond_arity, self.registry)

    def normalized(self) -> "URelation":
        """Drop rows with contradictory or zero-probability conditions and
        re-encode each condition minimally (sorted, deduplicated, padded)."""
        payload_schema = self.payload_schema
        payload_arity = self.payload_arity
        rows, conditions = [], []
        for row, condition in zip(self.relation, self.conditions()):
            if condition is None:
                continue
            if condition.probability(self.registry) <= 0.0:
                continue
            rows.append(row[:payload_arity])
            conditions.append(condition)
        return URelation.from_conditions(payload_schema, rows, conditions, self.registry)

    def refresh_probabilities(self) -> "URelation":
        """Recompute the cached probability columns from the registry."""
        rows = []
        base = self.payload_arity
        for row in self.relation:
            out = list(row)
            for i in range(self.cond_arity):
                var = row[base + 3 * i]
                value = row[base + 3 * i + 1]
                out[base + 3 * i + 2] = self.registry.probability(var, value)
            rows.append(tuple(out))
        return URelation(
            Relation(self.relation.schema, rows),
            self.payload_arity,
            self.cond_arity,
            self.registry,
        )

    # -- presentation ----------------------------------------------------------
    def pretty(self, max_rows: Optional[int] = None) -> str:
        """Figure-1 style rendering: payload columns, a symbolic
        ``condition`` column (``x3 ↦ 1``), and a probability column."""
        header = list(self.payload_schema.names) + ["condition", "P"]
        body = []
        rows = self.relation.rows if max_rows is None else self.relation.rows[:max_rows]
        for row in rows:
            condition = self.condition_of(row)
            if condition is None:
                text, prob = "⊥", 0.0
            else:
                text = repr(condition)
                prob = condition.probability(self.registry)
            cells = ["NULL" if v is NULL else str(v) for v in self.payload_row(row)]
            body.append(cells + [text, f"{prob:.6g}"])
        widths = [len(h) for h in header]
        for line in body:
            for i, cell in enumerate(line):
                widths[i] = max(widths[i], len(cell))
        out = [
            " | ".join(h.ljust(w) for h, w in zip(header, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        for line in body:
            out.append(" | ".join(c.ljust(w) for c, w in zip(line, widths)))
        out.append(f"({len(self.relation)} rows)")
        return "\n".join(out)


def rebuild_registry(
    urelations: Iterable[URelation],
    registry: Optional[VariableRegistry] = None,
) -> VariableRegistry:
    """Reconstruct variable distributions from the inline probability
    columns of stored U-relations.

    This is why the wide encoding carries probability columns at all: the
    representation is self-describing, so a catalog recovered from the
    write-ahead log (which persists only tables) can restore its world
    table.  Observed ``(variable, value) -> probability`` triples become
    the distribution; when the observed values of a variable do not
    exhaust its probability mass, the remainder goes to a sink value (one
    past the largest observed value) -- those are the alternatives no
    surviving tuple references.
    """
    observed: Dict[int, Dict[int, float]] = {}
    for urel in urelations:
        base = urel.payload_arity
        for row in urel.relation:
            for i in range(urel.cond_arity):
                var = row[base + 3 * i]
                value = row[base + 3 * i + 1]
                probability = row[base + 3 * i + 2]
                if var == TOP_VARIABLE:
                    continue
                slot = observed.setdefault(var, {})
                previous = slot.get(value)
                if previous is not None and abs(previous - probability) > 1e-9:
                    raise ConditionError(
                        f"inconsistent stored probabilities for variable "
                        f"{var} value {value}: {previous} vs {probability}"
                    )
                slot[value] = probability

    rebuilt = registry if registry is not None else VariableRegistry()
    for var in sorted(observed):
        distribution = dict(observed[var])
        mass = sum(distribution.values())
        if mass > 1.0 + 1e-9:
            raise ConditionError(
                f"stored probabilities for variable {var} sum to {mass} > 1"
            )
        if mass < 1.0 - 1e-9:
            sink = max(distribution) + 1
            distribution[sink] = 1.0 - mass
        # Install under the original id; fresh() would renumber, so write
        # the internal tables directly (ids must survive recovery).
        rebuilt._distributions[var] = {
            int(v): float(p) for v, p in distribution.items()
        }
        rebuilt._names.setdefault(var, f"x{var}")
        rebuilt._next_id = max(rebuilt._next_id, var + 1)
    return rebuilt


# ---------------------------------------------------------------------------
# Vertical decomposition (attribute-level uncertainty).
# ---------------------------------------------------------------------------

TID_COLUMN = "_tid"


def vertical_decompose(urel: URelation) -> Dict[str, URelation]:
    """Split a U-relation into one U-relation per payload attribute.

    Each part has schema ``(_tid, attribute)`` plus the original row's
    condition.  The tuple id is the row's position, mirroring the paper's
    "additional (system) column ... for storing tuple ids".
    """
    parts: Dict[str, URelation] = {}
    payload_schema = urel.payload_schema
    all_conditions = [c if c is not None else None for c in urel.conditions()]
    for position, column in enumerate(payload_schema):
        schema = Schema([Column(TID_COLUMN, INTEGER), Column(column.name, column.type)])
        rows, conditions = [], []
        for tid, (row, condition) in enumerate(zip(urel.relation, all_conditions)):
            if condition is None:
                continue
            rows.append((tid, row[position]))
            conditions.append(condition)
        parts[column.name] = URelation.from_conditions(
            schema, rows, conditions, urel.registry
        )
    return parts


def vertical_recompose(
    parts: Mapping[str, URelation], column_order: Sequence[str]
) -> URelation:
    """Undo a vertical decomposition: join the per-attribute U-relations on
    the tuple id, conjoining their conditions.

    An attribute may have *several alternative values* per tuple id (that
    is what attribute-level uncertainty means), so the join takes the
    cross product of alternatives per tid; combinations with contradictory
    conditions represent no world and are dropped, exactly as the
    translated join's consistency filter would drop them.
    """
    if not column_order:
        raise SchemaError("recompose needs at least one column")
    first = parts[column_order[0]]
    registry = first.registry

    # Per attribute: tid -> list of (value, condition) alternatives.
    alternatives: List[Dict[int, List[Tuple[object, Condition]]]] = []
    for name in column_order:
        per_tid: Dict[int, List[Tuple[object, Condition]]] = {}
        for payload, condition in parts[name].rows_with_conditions():
            if condition is None:
                continue
            per_tid.setdefault(payload[0], []).append((payload[1], condition))
        alternatives.append(per_tid)

    columns = []
    for name in column_order:
        part_schema = parts[name].payload_schema
        columns.append(Column(name, part_schema[1].type))
    schema = Schema(columns)

    shared_tids = set(alternatives[0])
    for per_tid in alternatives[1:]:
        shared_tids &= set(per_tid)

    rows: List[tuple] = []
    conditions: List[Condition] = []
    for tid in sorted(shared_tids):
        combos: List[Tuple[List, Condition]] = [([], TRUE_CONDITION)]
        for per_tid in alternatives:
            extended: List[Tuple[List, Condition]] = []
            for values, acc in combos:
                for value, condition in per_tid[tid]:
                    merged = acc.conjoin(condition)
                    if merged is not None:
                        extended.append((values + [value], merged))
            combos = extended
        for values, condition in combos:
            rows.append(tuple(values))
            conditions.append(condition)
    return URelation.from_conditions(schema, rows, conditions, registry)
