"""The parsimonious translation of positive relational algebra [1].

Section 2.3: "The answers to positive relational algebra queries (without
confidences) can be computed using a parsimonious translation of such
queries into (again) positive relational algebra queries that are then
evaluated in standard relational way on U-relations."

The translation rules (Antova-Jansen-Koch-Olteanu, ICDE 2008), with
payload columns written D and condition columns V:

- **selection** σ_φ(R):  σ_φ applies to the payload columns only; the
  condition columns ride along untouched.
- **projection** π_A(R):  π_{A ∪ V}(R) -- condition columns are always
  kept, and *no duplicate elimination* happens (duplicates with different
  conditions encode a disjunction of their lineages).
- **join** R ⋈_φ S:  join on the payload predicate, concatenate both
  sides' condition columns, and *select consistency*: rows whose merged
  condition assigns two different values to one variable represent no
  world and are filtered by an ordinary selection over the integer
  condition columns -- ⋀_{i,j} (V_i ≠ V'_j ∨ D_i = D'_j).
- **union** R ∪ S:  pad both sides' condition columns to a common arity
  with the reserved always-true atom, then multiset union.

Every rule emits ordinary relational plans over the wide integer encoding
and is executed by the standard engine -- which is the whole point: a
conventional RDBMS evaluates queries on probabilistic data with only a
constant-factor overhead (benchmark C-TRANS measures it).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.urelation import (
    PROB_PREFIX,
    URelation,
    VAL_PREFIX,
    VAR_PREFIX,
    condition_columns,
)
from repro.core.variables import TOP_VARIABLE
from repro.engine import algebra, planner
from repro.engine.expressions import (
    BoolOp,
    ColumnRef,
    Comparison,
    ConsistencyPredicate,
    Expr,
    Literal,
    PositionRef,
)
from repro.engine.relation import Relation
from repro.engine.schema import Column, Schema
from repro.engine.types import FLOAT, INTEGER
from repro.errors import PlanError, SchemaError


def u_select(urel: URelation, predicate: Expr) -> URelation:
    """σ_φ over a U-relation: the predicate sees only payload columns."""
    plan = algebra.Select(algebra.RelationScan(urel.relation), predicate)
    result = planner.run(plan)
    return URelation(result, urel.payload_arity, urel.cond_arity, urel.registry)


def u_project(urel: URelation, items: Sequence[Tuple[Expr, str]]) -> URelation:
    """π over payload expressions; condition columns are appended and no
    duplicate elimination takes place (parsimonious projection)."""
    schema = urel.relation.schema
    out_items: List[Tuple[Expr, str]] = list(items)
    base = urel.payload_arity
    for i in range(urel.cond_arity):
        for offset, (prefix, typ) in enumerate(
            ((VAR_PREFIX, INTEGER), (VAL_PREFIX, INTEGER), (PROB_PREFIX, FLOAT))
        ):
            position = base + 3 * i + offset
            out_items.append((PositionRef(position, typ), f"{prefix}{i}"))
    plan = algebra.Project(algebra.RelationScan(urel.relation), out_items)
    result = planner.run(plan)
    return URelation(result, len(items), urel.cond_arity, urel.registry)


def consistency_predicate(
    left_payload: int,
    left_cond: int,
    right_payload: int,
    right_cond: int,
) -> Optional[Expr]:
    """The join consistency filter over a concatenated wide row.

    Left triples start at ``left_payload``; right triples start at
    ``left_payload + 3*left_cond + right_payload``.  For every pair (i, j)
    require  V_i ≠ V'_j  ∨  D_i = D'_j.  The reserved top variable never
    conflicts (it has a single value), so padding is harmless.

    Emitted as a dedicated :class:`ConsistencyPredicate` rather than a
    generic AND-of-OR tree: this filter runs once per candidate joined row
    and is the hottest loop of the parsimonious translation, so both
    engines give it a specialized kernel (vectorized over the integer
    condition columns in the batch engine).
    """
    left_base = left_payload
    right_base = left_payload + 3 * left_cond + right_payload
    pairs: List[Tuple[int, int, int, int]] = []
    for i in range(left_cond):
        vi = left_base + 3 * i
        di = left_base + 3 * i + 1
        for j in range(right_cond):
            vj = right_base + 3 * j
            dj = right_base + 3 * j + 1
            pairs.append((vi, di, vj, dj))
    if not pairs:
        return None
    return ConsistencyPredicate(pairs)


def u_join(
    left: URelation,
    right: URelation,
    predicate: Optional[Expr] = None,
    left_alias: Optional[str] = None,
    right_alias: Optional[str] = None,
) -> URelation:
    """Join two U-relations: payload predicate + condition concatenation +
    consistency selection, all as one ordinary relational plan.

    Payload columns keep their names and qualifiers (re-qualified first if
    ``left_alias``/``right_alias`` are given); the qualified payload names
    of the two sides must not clash -- alias the inputs when joining a
    U-relation with itself.  The combined condition columns are renamed to
    the canonical ``_v0.._v{k-1}`` sequence.
    """
    if left.registry is not right.registry:
        raise PlanError("joining U-relations over different variable registries")
    if left_alias is not None:
        left = u_rename(left, left_alias)
    if right_alias is not None:
        right = u_rename(right, right_alias)

    # Offset the right side's condition-column names so the concatenated
    # join schema has no duplicates.
    right = _shift_condition_names(right, left.cond_arity)

    left_scan = algebra.RelationScan(left.relation)
    right_scan = algebra.RelationScan(right.relation)

    join_predicate = predicate
    consistency = consistency_predicate(
        left.payload_arity, left.cond_arity, right.payload_arity, right.cond_arity
    )
    if consistency is not None:
        join_predicate = (
            consistency
            if join_predicate is None
            else BoolOp("AND", [join_predicate, consistency])
        )

    joined = algebra.Join(left_scan, right_scan, join_predicate)

    # Rebuild the output as payload columns then renumbered condition
    # triples.  Projection items get positional placeholder names (payload
    # names may clash across the two sides as long as qualifiers differ);
    # the real schema is attached afterwards.
    combined = joined.schema()
    items: List[Tuple[Expr, str]] = []
    final_columns: List[Column] = []
    left_width = len(left.relation.schema)
    for position in range(left.payload_arity):
        items.append((PositionRef(position, combined[position].type), f"_c{len(items)}"))
        final_columns.append(combined[position])
    for position in range(right.payload_arity):
        absolute = left_width + position
        items.append((PositionRef(absolute, combined[absolute].type), f"_c{len(items)}"))
        final_columns.append(combined[absolute])

    out_index = 0
    for base, cond_arity in (
        (left.payload_arity, left.cond_arity),
        (left_width + right.payload_arity, right.cond_arity),
    ):
        for i in range(cond_arity):
            items.append((PositionRef(base + 3 * i, INTEGER), f"_c{len(items)}"))
            items.append((PositionRef(base + 3 * i + 1, INTEGER), f"_c{len(items)}"))
            items.append((PositionRef(base + 3 * i + 2, FLOAT), f"_c{len(items)}"))
            final_columns.append(Column(f"{VAR_PREFIX}{out_index}", INTEGER))
            final_columns.append(Column(f"{VAL_PREFIX}{out_index}", INTEGER))
            final_columns.append(Column(f"{PROB_PREFIX}{out_index}", FLOAT))
            out_index += 1

    plan = algebra.Project(joined, items)
    result = planner.run(plan).with_schema(Schema(final_columns))
    payload_arity = left.payload_arity + right.payload_arity
    return URelation(result, payload_arity, left.cond_arity + right.cond_arity, left.registry)


def u_union(left: URelation, right: URelation) -> URelation:
    """Multiset union with ⊤-padding to a common condition arity."""
    if left.registry is not right.registry:
        raise PlanError("union of U-relations over different variable registries")
    left_payload = left.payload_schema
    right_payload = right.payload_schema
    if not left_payload.union_compatible_with(right_payload):
        raise SchemaError(
            f"union payload schemas incompatible: {left_payload.types} "
            f"vs {right_payload.types}"
        )
    arity = max(left.cond_arity, right.cond_arity)
    lw = left.pad_to(arity)
    rw = right.pad_to(arity)
    # Align the right schema's column names to the left's.
    rw_rel = rw.relation.with_schema(
        Schema(
            Column(lc.name, rc.type, None)
            for lc, rc in zip(lw.relation.schema, rw.relation.schema)
        )
    )
    plan = algebra.Union(
        algebra.RelationScan(lw.relation.with_schema(lw.relation.schema.unqualified())),
        algebra.RelationScan(rw_rel),
    )
    result = planner.run(plan)
    return URelation(result, left.payload_arity, arity, left.registry)


def _shift_condition_names(urel: URelation, offset: int) -> URelation:
    """Rename the condition triples ``_v0.._vk`` to start at ``offset``."""
    if offset == 0 or urel.cond_arity == 0:
        return urel
    columns = list(urel.relation.schema[: urel.payload_arity])
    for i in range(urel.cond_arity):
        columns.append(Column(f"{VAR_PREFIX}{offset + i}", INTEGER))
        columns.append(Column(f"{VAL_PREFIX}{offset + i}", INTEGER))
        columns.append(Column(f"{PROB_PREFIX}{offset + i}", FLOAT))
    return URelation(
        urel.relation.with_schema(Schema(columns)),
        urel.payload_arity,
        urel.cond_arity,
        urel.registry,
    )


def u_rename(urel: URelation, alias: str) -> URelation:
    """Re-qualify payload columns under a new alias (condition columns stay
    unqualified -- they are system columns)."""
    columns = []
    for i, column in enumerate(urel.relation.schema):
        if i < urel.payload_arity:
            columns.append(column.with_qualifier(alias))
        else:
            columns.append(column.with_qualifier(None))
    return URelation(
        urel.relation.with_schema(Schema(columns)),
        urel.payload_arity,
        urel.cond_arity,
        urel.registry,
    )
