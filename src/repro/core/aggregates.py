"""The uncertainty-aware aggregates of Section 2.2.

- ``conf`` / ``aconf(ε,δ)``: per group of result tuples, the exact or
  (ε,δ)-approximate probability that the group's tuple appears;
- ``tconf``: per *row*, the marginal probability of its own condition, in
  isolation from duplicates;
- ``possible``: the distinct possible tuples (probability > 0);
- ``esum`` / ``ecount``: expected sum / count across the worlds.  These
  are efficient despite confidence being #P-hard: by linearity of
  expectation, E[Σ_t v(t)·1(t present)] = Σ_t v(t)·P(t present), one
  marginal per row, no DNF combination at all;
- ``argmax`` is a certain-data aggregate and lives in the engine
  (:class:`repro.engine.algebra.AggregateSpec`).

Standard SQL aggregates on uncertain inputs are rejected by the SQL
analyzer (see :class:`repro.errors.UncertainAggregateError`), matching the
paper: "these aggregates will produce exponentially many different
numerical results in the various possible worlds".
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.confidence import dispatch
from repro.core.confidence.dispatch import ConfidenceDispatcher
from repro.core.confidence.dklr import aconf_unit_seed
from repro.core.confidence.exact import ExactConfidenceEngine
from repro.core.lineage import Lineage, group_lineages
from repro.core.urelation import URelation
from repro.engine.physical import group_key
from repro.engine.relation import Relation
from repro.engine.schema import Column, Schema
from repro.engine.types import FLOAT, INTEGER
from repro.errors import ConfidenceError


def _group_rows(
    urel: URelation, group_columns: Sequence[str]
) -> Tuple[List[int], Dict[tuple, Tuple[tuple, List[int]]], List[tuple]]:
    """Group row indexes by the projection onto ``group_columns``.

    Returns (positions, key -> (projected row, row indexes), key order).
    Works off the relation's cached column view: only the grouping columns
    are touched, not whole rows.
    """
    positions = [urel.relation.schema.resolve(name) for name in group_columns]
    groups: Dict[tuple, Tuple[tuple, List[int]]] = {}
    order: List[tuple] = []
    n = len(urel.relation)
    if positions:
        columns = urel.relation.columns()
        projected_iter = zip(*(columns[p] for p in positions))
    else:
        projected_iter = (() for _ in range(n))
    for index, projected in enumerate(projected_iter):
        key = group_key(projected)
        entry = groups.get(key)
        if entry is None:
            entry = (projected, [])
            groups[key] = entry
            order.append(key)
        entry[1].append(index)
    return positions, groups, order


def _group_schema(
    urel: URelation, group_columns: Sequence[str], result_name: str, result_type
) -> Schema:
    columns = [
        Column(
            urel.relation.schema[urel.relation.schema.resolve(name)].name,
            urel.relation.schema[urel.relation.schema.resolve(name)].type,
        )
        for name in group_columns
    ]
    columns.append(Column(result_name, result_type))
    return Schema(columns)


def _relation_cache(urel: URelation) -> dict:
    cache = urel.relation._lineage_cache
    if cache is None:
        cache = urel.relation._lineage_cache = {}
    return cache


def _cached_groups(
    urel: URelation, group_columns: Sequence[str]
) -> Tuple[Dict[tuple, Tuple[tuple, List[int]]], List[tuple]]:
    """Group the relation's rows, cached on the relation object.

    Table snapshots are cached per table version
    (:meth:`repro.engine.storage.Table.snapshot`), and the MVCC pin
    chain (:meth:`repro.engine.storage.Table.pin_snapshot`) hands every
    statement pinned to a version that same per-version relation
    object, so attaching the cache to the relation keys it by *pinned
    table version + group columns*: any mutation produces a fresh
    snapshot object and therefore a fresh cache, while consecutive read
    statements pinned to an unchanged version share it.  Kept separate
    from the lineage cache so the parallel path
    (which builds lineages worker-side) shares grouping with a later
    serial fallback without paying for coordinator-side lineages.
    """
    key = ("groups", tuple(group_columns), urel.payload_arity, urel.cond_arity)
    cache = _relation_cache(urel)
    entry = cache.get(key)
    if entry is None:
        _, groups, order = _group_rows(urel, group_columns)
        entry = cache[key] = (groups, order)
    return entry


def _cached_group_lineages(
    urel: URelation, group_columns: Sequence[str]
) -> Tuple[Dict[tuple, Tuple[tuple, List[int]]], List[tuple], List[Lineage]]:
    """Grouping plus per-group lineages, cached on the relation object: a
    repeated ``conf()`` over an unchanged stored U-relation re-uses
    grouping, interned clauses, and their probability caches."""
    key = (
        tuple(group_columns),
        urel.payload_arity,
        urel.cond_arity,
        id(urel.registry),
    )
    cache = _relation_cache(urel)
    entry = cache.get(key)
    if entry is not None:
        return entry
    groups, order = _cached_groups(urel, group_columns)
    lineages = group_lineages(urel, [groups[k][1] for k in order])
    entry = cache[key] = (groups, order, lineages)
    return entry


def conf(
    urel: URelation,
    group_columns: Sequence[str] = (),
    result_name: str = "conf",
    engine: Optional[ExactConfidenceEngine] = None,
    dispatcher: Optional[ConfidenceDispatcher] = None,
    parallel=None,
) -> Relation:
    """Confidence computation (the ``conf()`` aggregate).

    For each distinct value of ``group_columns``, the probability that at
    least one tuple with that value is present: the probability of the
    disjunction of the group's row conditions.  With no group columns the
    result is a single row -- the probability that the relation is
    non-empty.

    Each group's lineage goes through the cost-based dispatcher
    (:mod:`repro.core.confidence.dispatch`), which picks closed-form /
    SPROUT safe evaluation / exact ws-trees / Monte Carlo per independent
    component.  Passing ``engine`` forces the exact ws-tree engine for
    every group (the pre-dispatcher behaviour, kept for ablations and
    benchmarks).  ``parallel`` is a
    :class:`~repro.engine.parallel.ParallelExecutionPool`: relations past
    its cost gate are sharded across worker processes, and any parallel
    failure silently degrades back to the serial path below.
    """
    if engine is not None:
        groups, order, lineages = _cached_group_lineages(urel, group_columns)
        probabilities = [engine.probability(lineage) for lineage in lineages]
    else:
        if dispatcher is None:
            dispatcher = ConfidenceDispatcher(urel.registry)
        results = None
        detail = ""
        if parallel is not None and parallel.eligible(urel):
            groups, order = _cached_groups(urel, group_columns)
            attempt = parallel.conf_groups(
                urel,
                [groups[key][1] for key in order],
                dispatcher.policy,
                lineages=lambda: _cached_group_lineages(urel, group_columns)[2],
                dispatcher=dispatcher,
            )
            if attempt is not None:
                results, info = attempt
                detail = (
                    f"parallel: {info['workers']} workers, "
                    f"{info['shards']} {info['path']} shard(s)"
                )
        if results is None:
            groups, order, lineages = _cached_group_lineages(urel, group_columns)
            results = dispatcher.group_probabilities(lineages)
        dispatch.record_aggregate("conf", results, detail=detail)
        probabilities = [result.probability for result in results]
    rows = [
        groups[key][0] + (probability,)
        for key, probability in zip(order, probabilities)
    ]
    if not group_columns and not rows:
        rows.append((0.0,))
    return Relation(_group_schema(urel, group_columns, result_name, FLOAT), rows)


def aconf(
    urel: URelation,
    epsilon: float,
    delta: float,
    group_columns: Sequence[str] = (),
    result_name: str = "aconf",
    rng: Optional[random.Random] = None,
    dispatcher: Optional[ConfidenceDispatcher] = None,
    parallel=None,
    base_seed: Optional[int] = None,
) -> Relation:
    """Approximate confidence: ``aconf(ε, δ)``.

    Per group, an estimate p̂ with P(|p̂ − p| > ε·p) < δ.  The dispatcher
    takes exact shortcuts that satisfy the guarantee trivially (closed
    forms, hierarchical lineages); everything else runs the Karp-Luby
    estimator under the DKLR optimal Monte-Carlo driver.

    With ``base_seed`` (the store/session seed, wired by the SQL
    executor) each group's Monte-Carlo run is pinned to its own
    deterministic stream via :func:`~repro.core.confidence.dklr.aconf_unit_seed`,
    so the answer is a pure function of (seed, data) -- which is what
    lets ``parallel`` (a :class:`~repro.engine.parallel.ParallelExecutionPool`)
    shard the sample loops across workers bit-identically to serial at
    any worker count.  An explicit ``rng`` overrides both: draws come
    from it sequentially (the legacy behaviour) and the query stays
    serial.
    """
    deterministic = base_seed is not None and rng is None
    if dispatcher is None:
        dispatcher = ConfidenceDispatcher(urel.registry, rng=rng)
    elif rng is not None:
        dispatcher = ConfidenceDispatcher(
            urel.registry, dispatcher.policy, rng=rng
        )
    detail = f"epsilon={epsilon:g}, delta={delta:g}"
    results = None
    if deterministic and parallel is not None and parallel.eligible(urel):
        groups, order = _cached_groups(urel, group_columns)
        attempt = parallel.aconf_groups(
            urel,
            [groups[key][1] for key in order],
            dispatcher.policy,
            epsilon,
            delta,
            base_seed,
        )
        if attempt is not None:
            results, info = attempt
            detail += (
                f"; parallel: {info['workers']} workers, "
                f"{info['shards']} {info['path']} shard(s)"
            )
    if results is None:
        groups, order, lineages = _cached_group_lineages(urel, group_columns)
        if deterministic:
            results = [
                dispatcher.approximate(
                    lineage,
                    epsilon,
                    delta,
                    unit_seed=aconf_unit_seed(base_seed, ordinal),
                )
                for ordinal, lineage in enumerate(lineages)
            ]
        else:
            results = [
                dispatcher.approximate(lineage, epsilon, delta)
                for lineage in lineages
            ]
    dispatch.record_aggregate("aconf", results, detail=detail)
    rows = [
        groups[key][0] + (result.probability,)
        for key, result in zip(order, results)
    ]
    if not group_columns and not rows:
        rows.append((0.0,))
    return Relation(_group_schema(urel, group_columns, result_name, FLOAT), rows)


def tconf(urel: URelation, result_name: str = "tconf") -> Relation:
    """Per-row marginal probability ("in isolation from the other
    (possibly duplicate) tuples"): payload columns plus the probability of
    the row's own condition.

    Marginals are atom-product closed forms read straight off the
    condition columns -- no dispatch decision to make, but the strategy
    trace still records the call so EXPLAIN shows every confidence
    computation of a query.
    """
    columns = list(urel.payload_schema) + [Column(result_name, FLOAT)]
    payload_arity = urel.payload_arity
    rows = [
        row[:payload_arity] + (probability,)
        for row, probability in zip(urel.relation, urel.condition_probabilities())
    ]
    if dispatch.tracing_active():
        dispatch.record_event(
            dispatch.ConfidenceEvent(
                aggregate="tconf",
                groups=len(rows),
                strategy_counts=(("marginal", len(rows)),),
            )
        )
    return Relation(Schema(columns), rows)


def possible(urel: URelation) -> Relation:
    """The ``possible`` construct: distinct tuples with probability > 0.

    Equivalent to filtering ``tconf > 0`` and deduplicating, which is how
    MayBMS implements it by rewriting (Section 2.4).
    """
    return urel.possible_payloads()


def esum(
    urel: URelation,
    value_column: str,
    group_columns: Sequence[str] = (),
    result_name: str = "esum",
    parallel=None,
) -> Relation:
    """Expected sum: Σ_rows value(row) · P(condition(row)) per group.

    Linear in the input -- no #P-hard machinery -- by linearity of
    expectation (Section 2.2's justification for allowing esum/ecount
    while forbidding plain sum/count on uncertain data).  NULL values
    contribute nothing, mirroring SQL's sum.
    """
    value_position = urel.relation.schema.resolve(value_column)
    return _expectation(urel, value_position, group_columns, result_name, parallel)


def ecount(
    urel: URelation,
    group_columns: Sequence[str] = (),
    result_name: str = "ecount",
    parallel=None,
) -> Relation:
    """Expected count: Σ_rows P(condition(row)) per group."""
    return _expectation(urel, None, group_columns, result_name, parallel)


def _expectation(
    urel: URelation,
    value_position: Optional[int],
    group_columns: Sequence[str],
    result_name: str,
    parallel=None,
) -> Relation:
    """Per-group expectations, serial or sharded.

    Both paths sum with exact accumulation (``math.fsum`` serially;
    Shewchuk partials per shard with an fsum reduction in the pool), so
    a group's total is a function of its term multiset alone -- serial
    and parallel answers are bit-identical at any worker count.
    """
    _, groups, order = _group_rows(urel, group_columns)
    row_groups = [groups[key][1] for key in order]
    totals: Optional[List[float]] = None
    if parallel is not None and parallel.eligible(urel):
        attempt = parallel.expectation_groups(urel, row_groups, value_position)
        if attempt is not None:
            totals, _ = attempt
    if totals is None:
        weights = urel.condition_probabilities()
        value_column = (
            urel.relation.columns()[value_position]
            if value_position is not None
            else None
        )
        if value_column is None:
            totals = [
                math.fsum(weights[i] for i in indexes) for indexes in row_groups
            ]
        else:
            totals = [
                math.fsum(
                    weights[i] * value_column[i]
                    for i in indexes
                    if value_column[i] is not None
                )
                for indexes in row_groups
            ]
    rows = [
        groups[key][0] + (total,) for key, total in zip(order, totals)
    ]
    if not group_columns and not rows:
        rows.append((0.0,))
    return Relation(_group_schema(urel, group_columns, result_name, FLOAT), rows)
