"""SPROUT: scalable confidence computation for tractable queries [5].

Section 2.3: "For tractable queries on probabilistic databases, MayBMS
uses the SPROUT codebase for scalable query processing by reduction of
confidence computation to a sequence of SQL-like aggregations."

The tractable class (for conjunctive queries without self-joins over
*tuple-independent* tables) is the class of **hierarchical** queries: for
any two non-head variables x, y, the sets of subgoals containing them are
nested or disjoint.  For those, confidence computation reduces to a *safe
plan* of ordinary joins and two aggregation flavours:

- **independent join**: events touching disjoint table sets are
  independent, so probabilities multiply;
- **independent project**: distinct values of a *root variable* (one that
  occurs in every subgoal of a connected component) select disjoint tuple
  sets, so the "exists some value" probability is 1 − ∏(1 − pᵥ).

Two execution strategies, following the lazy-vs-eager study of [5]:

- **eager** plans interleave the probability aggregations with the joins
  (aggregate as early as the hierarchy allows, shrinking intermediates);
- **lazy** plans first materialize the full join with per-subgoal
  probability columns (pure relational work), then compute all
  confidences in one aggregation pass over the sorted result.

Both produce identical probabilities (tested against exact DNF lineage
computation); their run-time trade-off is the subject of benchmark
C-SPROUT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.core.conditions import Condition
from repro.core.confidence.dnf import DNF
from repro.core.lineage import Lineage, combine_independent
from repro.core.variables import VariableRegistry
from repro.engine.physical import group_key
from repro.engine.relation import Relation
from repro.engine.schema import Column, Schema
from repro.engine.types import FLOAT
from repro.errors import (
    ConfidenceError,
    NotTupleIndependentError,
    UnsafeLineageError,
    UnsafeQueryError,
)


@dataclass(frozen=True)
class Var:
    """A query variable (as opposed to a constant term)."""

    name: str

    def __repr__(self) -> str:
        return f"?{self.name}"


Term = Union[Var, Any]  # a Var or a constant


@dataclass(frozen=True)
class Subgoal:
    """One atom of a conjunctive query: ``table(term, term, ...)``."""

    table: str
    terms: Tuple[Term, ...]

    def __init__(self, table: str, terms: Sequence[Term]):
        object.__setattr__(self, "table", table)
        object.__setattr__(self, "terms", tuple(terms))

    def variables(self) -> FrozenSet[str]:
        return frozenset(t.name for t in self.terms if isinstance(t, Var))

    def __repr__(self) -> str:
        inner = ", ".join(repr(t) for t in self.terms)
        return f"{self.table}({inner})"


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A conjunctive query without self-joins over tuple-independent tables.

    ``head`` lists the distinguished (group-by) variables; the confidence
    of each head binding is the probability that the binding is an answer.
    """

    head: Tuple[str, ...]
    subgoals: Tuple[Subgoal, ...]

    def __init__(self, head: Sequence[str], subgoals: Sequence[Subgoal]):
        object.__setattr__(self, "head", tuple(head))
        object.__setattr__(self, "subgoals", tuple(subgoals))
        tables = [sg.table for sg in subgoals]
        if len(set(tables)) != len(tables):
            raise UnsafeQueryError(
                "self-joins are outside SPROUT's tractable class: "
                f"duplicate table in {tables}"
            )
        head_set = set(head)
        all_vars = set().union(*(sg.variables() for sg in subgoals)) if subgoals else set()
        missing = head_set - all_vars
        if missing:
            raise ConfidenceError(f"head variables {sorted(missing)} not used in any subgoal")

    def variables(self) -> FrozenSet[str]:
        out: Set[str] = set()
        for sg in self.subgoals:
            out.update(sg.variables())
        return frozenset(out)

    def __repr__(self) -> str:
        body = ", ".join(repr(sg) for sg in self.subgoals)
        return f"q({', '.join(self.head)}) :- {body}"


class TupleIndependentTable:
    """A tuple-independent probabilistic table: payload rows with a
    per-tuple presence probability (and, lazily, a fresh Boolean variable
    per tuple for lineage construction)."""

    def __init__(self, name: str, relation: Relation, probabilities: Sequence[float]):
        if len(probabilities) != len(relation):
            raise NotTupleIndependentError(
                f"{len(probabilities)} probabilities for {len(relation)} rows"
            )
        for p in probabilities:
            if not (0.0 <= float(p) <= 1.0):
                raise NotTupleIndependentError(f"tuple probability {p} outside [0, 1]")
        self.name = name
        self.relation = relation
        self.probabilities = [float(p) for p in probabilities]

    def __len__(self) -> int:
        return len(self.relation)

    @staticmethod
    def from_prob_column(name: str, relation: Relation, prob_column: str = "_p") -> "TupleIndependentTable":
        position = relation.schema.resolve(prob_column)
        payload_positions = [i for i in range(len(relation.schema)) if i != position]
        payload = relation.project_positions(payload_positions)
        probabilities = [row[position] for row in relation]
        return TupleIndependentTable(name, payload, probabilities)

    def rows(self) -> Iterable[Tuple[tuple, float]]:
        return zip(self.relation.rows, self.probabilities)


Database = Mapping[str, TupleIndependentTable]


# ---------------------------------------------------------------------------
# Hierarchy analysis.
# ---------------------------------------------------------------------------


def subgoals_of_variable(query: ConjunctiveQuery) -> Dict[str, FrozenSet[int]]:
    """sg(x): the indices of subgoals mentioning each variable."""
    out: Dict[str, Set[int]] = {}
    for i, sg in enumerate(query.subgoals):
        for v in sg.variables():
            out.setdefault(v, set()).add(i)
    return {v: frozenset(s) for v, s in out.items()}


def is_hierarchical(query: ConjunctiveQuery) -> bool:
    """The Dalvi-Suciu tractability test: for all non-head variables x, y,
    sg(x) and sg(y) are nested or disjoint."""
    sg = subgoals_of_variable(query)
    non_head = [v for v in sg if v not in query.head]
    for i, x in enumerate(non_head):
        for y in non_head[i + 1:]:
            a, b = sg[x], sg[y]
            if not (a <= b or b <= a or not (a & b)):
                return False
    return True


# ---------------------------------------------------------------------------
# Safe evaluation directly on lineage (the dispatcher's SPROUT strategy).
# ---------------------------------------------------------------------------


def safe_lineage_confidence(
    lineage,
    registry: Optional[VariableRegistry] = None,
    connected: bool = False,
) -> float:
    """P(lineage) via SPROUT-style safe evaluation on the lineage IR.

    The query-level safe plans above apply the independent-join and
    independent-project rules to *subgoals*; this is the same recursion
    applied to the lineage itself, which is how the dispatcher wires
    SPROUT into the SQL ``conf()`` path (where only lineage, not query
    structure, survives the parsimonious translation):

    - **independent components** (no shared variables) multiply:
      P(⋁) = 1 − ∏(1 − P(componentᵢ));
    - a connected component must have a **root variable** occurring in
      every clause; Shannon expansion on the root (the lineage analog of
      the independent project) partitions the clauses by the root's value
      and recurses on strictly smaller cofactors;
    - single clauses and fully independent clause sets finish in closed
      form.

    Every recursion step removes a variable from each clause it keeps, so
    the work is polynomial whenever the lineage is hierarchical (the
    variables' clause sets are laminar -- :meth:`Lineage.stats`).  A
    component with no root variable raises
    :class:`~repro.errors.UnsafeLineageError`; the dispatcher catches it
    and falls back to the exact ws-tree engine.

    ``connected`` tells the evaluator the top-level clause set is already
    one connected component (the dispatcher hands components out one by
    one), skipping a redundant union-find pass.
    """
    if registry is None:
        if not isinstance(lineage, Lineage):
            raise ConfidenceError(
                "safe_lineage_confidence needs a registry when not given "
                "the lineage IR"
            )
        registry = lineage.arena.registry
    lineage = Lineage.of(lineage, registry).simplified()
    return _safe_eval(lineage, registry, connected)


def _safe_eval(
    lineage: Lineage, registry: VariableRegistry, connected: bool = False
) -> float:
    # Closed forms need no simplification here: duplicate clauses fail the
    # independence test (shared variables) and recurse instead, certain
    # clauses surface as is_true, and zero-probability clauses contribute
    # a 1 − 0 factor -- so cofactors skip the simplification pass.
    closed = lineage.closed_form_probability()
    if closed is not None:
        return closed
    if not connected:
        components = lineage.components()
        if len(components) > 1:
            return combine_independent(
                _safe_eval(component, registry, connected=True)
                for component in components
            )
    roots = lineage.root_variables()
    if not roots:
        raise UnsafeLineageError(
            "lineage is not hierarchical: a connected clause component "
            "has no variable occurring in all of its clauses"
        )
    root = min(roots)
    fast = _two_level_closed_form(lineage, root, registry)
    if fast is not None:
        return fast
    total = 0.0
    for value, p_value in registry.distribution(root).items():
        if p_value == 0.0:
            continue
        cofactor = lineage.restrict(root, value)
        if cofactor.is_false:
            continue
        total += p_value * _safe_eval(cofactor, registry)
    return total


def _two_level_closed_form(
    lineage: Lineage, root: int, registry: VariableRegistry
) -> Optional[float]:
    """The innermost independent-project, fused into one pass.

    The most common hierarchical shape -- lineage of ``R(x), S(x, y)``
    per group -- is a root variable plus pairwise-disjoint single-atom
    rests: ``{root=v₁ ∧ s₁, root=v₂ ∧ s₂, ...}``.  Shannon expansion
    telescopes into

        P = Σ_v P(root = v) · (1 − ∏_{clauses on v} (1 − P(restᵢ)))

    which this computes clause-at-a-time off the IR, with no cofactor
    materialization.  Applies when every clause is the root plus at most
    one other atom and no non-root variable repeats (checked from the
    cached stats in O(1)); returns None otherwise.
    """
    stats = lineage.stats(test_hierarchy=False)
    if stats.max_width > 2:
        return None
    if stats.atom_count - stats.clause_count != stats.variable_count - 1:
        return None
    probability = registry.probability
    complements: Dict[int, float] = {}
    for clause in lineage.clauses:
        atoms = clause.atoms
        if len(atoms) == 1:
            # The clause is the root atom alone: its rest is ⊤.
            value, rest_probability = atoms[0][1], 1.0
        else:
            (var_a, val_a), (var_b, val_b) = atoms
            if var_a == root:
                value, rest_probability = val_a, probability(var_b, val_b)
            else:
                value, rest_probability = val_b, probability(var_a, val_a)
        complements[value] = complements.get(value, 1.0) * (
            1.0 - rest_probability
        )
    return sum(
        probability(root, value) * (1.0 - complement)
        for value, complement in complements.items()
    )


# ---------------------------------------------------------------------------
# Shared join machinery.
# ---------------------------------------------------------------------------


def _subgoal_bindings(
    sg: Subgoal, table: TupleIndependentTable
) -> Tuple[List[str], List[tuple], List[int]]:
    """The satisfying rows of one subgoal, column-wise.

    Returns ``(var_order, value_rows, tuple_indices)``: the subgoal's
    variables in first-occurrence order, per matching base row the tuple of
    those variables' values, and the base row's index (for its probability
    and its lineage variable).  Constants and repeated variables are
    checked here, once per base row, with no per-row dict construction.
    """
    arity = len(sg.terms)
    relation = table.relation
    if len(relation.schema) != arity and len(relation) > 0:
        raise ConfidenceError(
            f"subgoal {sg!r} has arity {arity} but table rows have "
            f"{len(relation.schema)}"
        )
    first_position: Dict[str, int] = {}
    constants: List[Tuple[int, Any]] = []
    duplicate_checks: List[Tuple[int, int]] = []
    for position, term in enumerate(sg.terms):
        if isinstance(term, Var):
            seen = first_position.get(term.name)
            if seen is None:
                first_position[term.name] = position
            else:
                duplicate_checks.append((seen, position))
        else:
            constants.append((position, term))
    var_order = list(first_position)
    positions = list(first_position.values())

    rows: List[tuple] = []
    indices: List[int] = []
    for index, row in enumerate(relation.rows):
        matched = True
        for position, value in constants:
            if row[position] != value:
                matched = False
                break
        if matched:
            for a, b in duplicate_checks:
                if row[a] != row[b]:
                    matched = False
                    break
        if matched:
            rows.append(tuple(row[p] for p in positions))
            indices.append(index)
    return var_order, rows, indices


def _join_rows(
    subgoals: Sequence[Subgoal], db: Database
) -> Tuple[List[str], List[tuple], List[Tuple[Tuple[int, int], ...]]]:
    """All satisfying assignments of the subgoals via hash joins.

    Returns ``(var_order, value_rows, used)``: the joined variables in
    binding order, one value tuple per assignment, and per assignment the
    (subgoal index, tuple index) pairs that produced it.  Subgoals fold
    most-bound-first (the same greedy order the old backtracking join
    used, so result order is preserved), but each fold is a hash join on
    the shared variables instead of a nested scan -- the difference
    between O(result) and O(|R| x |S|) on the C-SPROUT workloads.
    """
    order: List[int] = []
    remaining = list(range(len(subgoals)))
    bound: Set[str] = set()
    while remaining:
        best = max(
            remaining,
            key=lambda i: sum(1 for v in subgoals[i].variables() if v in bound),
        )
        order.append(best)
        remaining.remove(best)
        bound |= subgoals[best].variables()

    acc_vars: List[str] = []
    acc_rows: List[tuple] = [()]
    acc_used: List[Tuple[Tuple[int, int], ...]] = [()]
    for sg_index in order:
        sg = subgoals[sg_index]
        if not acc_rows:
            # Already empty: no rows can result, so skip the scans -- but
            # keep extending the variable order so callers can still
            # resolve every query variable's position.
            seen_here: List[str] = []
            for term in sg.terms:
                if isinstance(term, Var) and term.name not in seen_here:
                    seen_here.append(term.name)
            acc_vars = acc_vars + [v for v in seen_here if v not in acc_vars]
            continue
        var_order, rows, indices = _subgoal_bindings(sg, db[sg.table])
        shared = [v for v in var_order if v in acc_vars]
        new_vars = [v for v in var_order if v not in acc_vars]
        shared_acc = [acc_vars.index(v) for v in shared]
        shared_new = [var_order.index(v) for v in shared]
        new_positions = [var_order.index(v) for v in new_vars]

        buckets: Dict[tuple, List[int]] = {}
        for k, values in enumerate(rows):
            key = tuple(values[p] for p in shared_new)
            buckets.setdefault(key, []).append(k)

        next_rows: List[tuple] = []
        next_used: List[Tuple[Tuple[int, int], ...]] = []
        for values, used in zip(acc_rows, acc_used):
            key = tuple(values[p] for p in shared_acc)
            bucket = buckets.get(key)
            if not bucket:
                continue
            for k in bucket:
                new_values = rows[k]
                next_rows.append(
                    values + tuple(new_values[p] for p in new_positions)
                )
                next_used.append(used + ((sg_index, indices[k]),))
        acc_vars = acc_vars + new_vars
        acc_rows = next_rows
        acc_used = next_used
    return acc_vars, acc_rows, acc_used


# ---------------------------------------------------------------------------
# Lineage construction (the exact baseline SPROUT is compared against).
# ---------------------------------------------------------------------------


def query_lineage(
    query: ConjunctiveQuery, db: Database, registry: Optional[VariableRegistry] = None
) -> Tuple[Dict[tuple, DNF], VariableRegistry]:
    """Per-head-binding lineage DNFs over fresh Boolean variables (one per
    base tuple).  This is the general-purpose path: handing the DNFs to
    the exact or Karp-Luby engines works for *any* conjunctive query,
    hierarchical or not."""
    registry = registry if registry is not None else VariableRegistry()
    table_vars: Dict[str, List[int]] = {}
    for sg in query.subgoals:
        table = db[sg.table]
        if sg.table not in table_vars:
            table_vars[sg.table] = [
                registry.fresh_boolean(p, name=f"{sg.table}[{i}]")
                for i, (_, p) in enumerate(table.rows())
            ]

    lineages: Dict[tuple, List[Condition]] = {}
    var_order, value_rows, used_lists = _join_rows(query.subgoals, db)
    if value_rows:
        head_positions = [var_order.index(v) for v in query.head]
        for values, used in zip(value_rows, used_lists):
            key = tuple(values[p] for p in head_positions)
            atoms = []
            for sg_index, tuple_index in used:
                table_name = query.subgoals[sg_index].table
                atoms.append((table_vars[table_name][tuple_index], 1))
            clause = Condition.of(atoms)
            if clause is not None:
                lineages.setdefault(key, []).append(clause)
    return {key: DNF(clauses) for key, clauses in lineages.items()}, registry


# ---------------------------------------------------------------------------
# Safe-plan evaluation: eager strategy.
# ---------------------------------------------------------------------------


def _eager_evaluate(
    subgoals: List[int],
    head_vars: Tuple[str, ...],
    query: ConjunctiveQuery,
    db: Database,
) -> Dict[tuple, float]:
    """Recursive safe-plan evaluation; returns head-binding -> probability.

    Aggregations run as soon as the hierarchy allows: every independent
    project materializes its (smaller) aggregated result before the
    enclosing join proceeds.
    """
    # Split into connected components via shared non-head variables.
    components = _components(subgoals, head_vars, query)
    if len(components) > 1:
        partials = [
            _eager_evaluate(comp, head_vars, query, db) for comp in components
        ]
        return _independent_join(partials, components, head_vars, query)

    component = components[0]
    if len(component) == 1:
        # A single-subgoal component: the chain of per-variable independent
        # projects telescopes (or-combination is associative and
        # commutative), so one grouped pass over the subgoal computes
        # 1 − ∏(1 − pᵢ) per head binding directly.  Its keys are already
        # in head-variable order.
        return _single_subgoal(component[0], head_vars, query, db)
    free = _free_variables(component, head_vars, query)
    if not free:
        # All terms determined by head vars / constants: or-combine per
        # binding within each subgoal, multiply across subgoals.
        partials = []
        for index in component:
            partials.append(_single_subgoal(index, head_vars, query, db))
        return _independent_join(partials, [[i] for i in component], head_vars, query)

    root = _root_variable(component, free, query)
    if root is None:
        raise UnsafeQueryError(
            f"query {query!r} is not hierarchical: component "
            f"{[repr(query.subgoals[i]) for i in component]} has no root variable"
        )
    extended = head_vars + (root,)
    inner = _eager_evaluate(component, extended, query, db)
    # Independent project: group by the original head vars, or-combine
    # across root-variable values.
    out: Dict[tuple, float] = {}
    for key, p in inner.items():
        outer_key = key[:-1]
        out[outer_key] = 1.0 - (1.0 - out.get(outer_key, 0.0)) * (1.0 - p)
    return out


def _components(
    subgoals: List[int], head_vars: Tuple[str, ...], query: ConjunctiveQuery
) -> List[List[int]]:
    head_set = set(head_vars)
    parent = {i: i for i in subgoals}

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    var_home: Dict[str, int] = {}
    for i in subgoals:
        for v in query.subgoals[i].variables():
            if v in head_set:
                continue
            if v in var_home:
                ra, rb = find(var_home[v]), find(i)
                if ra != rb:
                    parent[rb] = ra
            else:
                var_home[v] = i
    groups: Dict[int, List[int]] = {}
    for i in subgoals:
        groups.setdefault(find(i), []).append(i)
    return [sorted(g) for _, g in sorted(groups.items())]


def _free_variables(
    component: List[int], head_vars: Tuple[str, ...], query: ConjunctiveQuery
) -> Set[str]:
    head_set = set(head_vars)
    out: Set[str] = set()
    for i in component:
        out.update(v for v in query.subgoals[i].variables() if v not in head_set)
    return out


def _root_variable(
    component: List[int], free: Set[str], query: ConjunctiveQuery
) -> Optional[str]:
    """A non-head variable occurring in every subgoal of the component."""
    candidates = set(free)
    for i in component:
        candidates &= query.subgoals[i].variables()
        if not candidates:
            return None
    # Deterministic choice.
    return sorted(candidates)[0]


def _single_subgoal(
    index: int, head_vars: Tuple[str, ...], query: ConjunctiveQuery, db: Database
) -> Dict[tuple, float]:
    """Evaluate one subgoal whose variables are all head vars: per binding
    of the head vars *it mentions*, or-combine the probabilities of the
    matching tuples.  The enclosing independent join aligns partial
    bindings across subgoals."""
    sg = query.subgoals[index]
    bound = tuple(v for v in head_vars if v in sg.variables())
    table = db[sg.table]
    var_order, value_rows, indices = _subgoal_bindings(sg, table)
    key_positions = [var_order.index(v) for v in bound]
    probabilities = table.probabilities
    out: Dict[tuple, float] = {}
    get = out.get
    for values, tuple_index in zip(value_rows, indices):
        key = tuple(values[p] for p in key_positions)
        p = probabilities[tuple_index]
        out[key] = 1.0 - (1.0 - get(key, 0.0)) * (1.0 - p)
    return out


def _independent_join(
    partials: List[Dict[tuple, float]],
    components: List[List[int]],
    head_vars: Tuple[str, ...],
    query: ConjunctiveQuery,
) -> Dict[tuple, float]:
    """Combine per-component results: a head binding is an answer iff it is
    an answer in every component, and the events are independent.

    Components may bind different subsets of the head variables; bindings
    join on their shared variables (hash join on the common projection).
    """
    bound_vars: List[Tuple[str, ...]] = []
    for comp in components:
        vs: Set[str] = set()
        for i in comp:
            vs.update(query.subgoals[i].variables())
        bound_vars.append(tuple(v for v in head_vars if v in vs))

    # Start from the first component and fold the rest in.
    acc: Dict[tuple, float] = {}
    acc_vars = bound_vars[0]
    for key, p in partials[0].items():
        acc[key] = p

    for partial, vs in zip(partials[1:], bound_vars[1:]):
        shared = tuple(v for v in acc_vars if v in vs)
        new_vars = acc_vars + tuple(v for v in vs if v not in acc_vars)
        # Positions are resolved once per partial, not once per row.
        shared_in_vs = [vs.index(v) for v in shared]
        shared_in_acc = [acc_vars.index(v) for v in shared]
        fresh_in_vs = [vs.index(v) for v in vs if v not in acc_vars]
        index: Dict[tuple, List[Tuple[tuple, float]]] = {}
        for key, p in partial.items():
            shared_key = tuple(key[i] for i in shared_in_vs)
            index.setdefault(shared_key, []).append((key, p))
        next_acc: Dict[tuple, float] = {}
        for key, p in acc.items():
            shared_key = tuple(key[i] for i in shared_in_acc)
            for other_key, q in index.get(shared_key, ()):
                merged = key + tuple(other_key[i] for i in fresh_in_vs)
                next_acc[merged] = p * q
        acc = next_acc
        acc_vars = new_vars

    # Results are keyed over the head variables this subgoal set binds, in
    # head-variable order; callers with wider head lists align partials on
    # their shared variables.
    overall = tuple(v for v in head_vars if any(v in vs for vs in bound_vars))
    if acc_vars != overall:
        positions = [acc_vars.index(v) for v in overall]
        acc = {tuple(k[i] for i in positions): p for k, p in acc.items()}
    return acc


# ---------------------------------------------------------------------------
# Safe-plan evaluation: lazy strategy.
# ---------------------------------------------------------------------------


def _lazy_evaluate(query: ConjunctiveQuery, db: Database) -> Dict[tuple, float]:
    """Materialize the full join first (pure relational phase), then run
    the whole confidence computation as one aggregation pass over the
    join result, grouped along the hierarchy.

    Join rows carry (variable values, per-subgoal tuple ids and
    probabilities); the aggregation recursion mirrors the eager plan's
    structure but never touches base tables again.
    """
    var_order, value_rows, used_lists = _join_rows(query.subgoals, db)
    var_index = {name: position for position, name in enumerate(var_order)}
    annotated = []
    for values, used in zip(value_rows, used_lists):
        probs = {}
        for sg_index, tuple_index in used:
            table = db[query.subgoals[sg_index].table]
            probs[sg_index] = (tuple_index, table.probabilities[tuple_index])
        annotated.append((values, probs))

    all_indices = list(range(len(query.subgoals)))

    def aggregate(
        row_subset: List[Tuple[tuple, Dict[int, Tuple[int, float]]]],
        subgoals: List[int],
        head_vars: Tuple[str, ...],
    ) -> Dict[tuple, float]:
        components = _components(subgoals, head_vars, query)
        if len(components) > 1:
            partials = [aggregate(row_subset, comp, head_vars) for comp in components]
            return _independent_join(partials, components, head_vars, query)
        component = components[0]
        free = _free_variables(component, head_vars, query)
        if not free:
            out: Dict[tuple, float] = {}
            component_vars: Set[str] = set()
            for i in component:
                component_vars.update(query.subgoals[i].variables())
            bound = tuple(v for v in head_vars if v in component_vars)
            bound_positions = [var_index[v] for v in bound]
            # Dedup per subgoal: the same base tuple appears in many join
            # rows; each base tuple's probability must count once.
            per_key: Dict[tuple, Dict[int, Dict[int, float]]] = {}
            for values, probs in row_subset:
                key = tuple(values[p] for p in bound_positions)
                bucket = per_key.setdefault(key, {i: {} for i in component})
                for i in component:
                    tuple_index, p = probs[i]
                    bucket[i][tuple_index] = p
            for key, buckets in per_key.items():
                probability = 1.0
                for i in component:
                    or_p = 0.0
                    for p in buckets[i].values():
                        or_p = 1.0 - (1.0 - or_p) * (1.0 - p)
                    probability *= or_p
                out[key] = probability
            return out
        root = _root_variable(component, free, query)
        if root is None:
            raise UnsafeQueryError(
                f"query {query!r} is not hierarchical (lazy plan)"
            )
        inner = aggregate(row_subset, component, head_vars + (root,))
        out: Dict[tuple, float] = {}
        for key, p in inner.items():
            outer = key[:-1]
            out[outer] = 1.0 - (1.0 - out.get(outer, 0.0)) * (1.0 - p)
        return out

    return aggregate(annotated, all_indices, query.head)


# ---------------------------------------------------------------------------
# Public API.
# ---------------------------------------------------------------------------


def sprout_confidence(
    query: ConjunctiveQuery,
    db: Database,
    strategy: str = "eager",
) -> Relation:
    """Confidence of every answer of a hierarchical query.

    Returns a relation with one column per head variable plus ``p``.
    Raises :class:`UnsafeQueryError` for non-hierarchical queries (use
    :func:`query_lineage` + an exact/approximate engine for those).
    """
    if strategy not in ("eager", "lazy"):
        raise ConfidenceError(f"unknown SPROUT strategy {strategy!r}")
    if not is_hierarchical(query):
        raise UnsafeQueryError(
            f"query {query!r} is not hierarchical; SPROUT's safe plans do not apply"
        )
    if strategy == "eager":
        result = _eager_evaluate(
            list(range(len(query.subgoals))), query.head, query, db
        )
    else:
        result = _lazy_evaluate(query, db)

    columns = [
        Column(name, _column_type(name, query, db)) for name in query.head
    ]
    columns.append(Column("p", FLOAT))
    schema = Schema(columns)
    rows = [key + (p,) for key, p in sorted(result.items(), key=lambda kv: group_key(kv[0]))]
    return Relation(schema, rows)


def _column_type(var_name: str, query: ConjunctiveQuery, db: Database):
    for sg in query.subgoals:
        for position, term in enumerate(sg.terms):
            if isinstance(term, Var) and term.name == var_name:
                return db[sg.table].relation.schema[position].type
    raise ConfidenceError(f"variable {var_name!r} not found in any subgoal")
