"""Exponential confidence oracles (for testing and tiny inputs).

Two independent ground-truth implementations:

- :func:`confidence_by_enumeration` sums world probabilities over all
  assignments of the DNF's variables;
- :func:`confidence_by_inclusion_exclusion` applies inclusion-exclusion
  over clause subsets.

Having two oracles that must agree with each other (and with the exact
engine, and in expectation with the estimators) is the backbone of the
test suite.
"""

from __future__ import annotations

import itertools
from typing import List

from repro.core.confidence.dnf import DNF
from repro.core.conditions import Condition
from repro.core.variables import VariableRegistry
from repro.core.worlds import enumerate_worlds


def confidence_by_enumeration(dnf, registry: VariableRegistry) -> float:
    """P(dnf) by summing over all worlds of the lineage's variables.

    Accepts the lineage IR or a DNF (both expose ``is_false``/``is_true``/
    ``variables``/``satisfied_by``)."""
    if dnf.is_false:
        return 0.0
    if dnf.is_true:
        return 1.0
    variables = sorted(dnf.variables())
    total = 0.0
    for world, p in enumerate_worlds(registry, variables):
        if dnf.satisfied_by(world):
            total += p
    return total


def confidence_by_inclusion_exclusion(dnf, registry: VariableRegistry) -> float:
    """P(dnf) = Σ_{∅≠S⊆clauses} (−1)^{|S|+1} P(⋀S).

    The conjunction of a clause subset is contradictory (probability 0)
    when two clauses disagree on a variable.  Exponential in the clause
    count; use only for small DNFs.
    """
    if dnf.is_false:
        return 0.0
    clauses: List[Condition] = list(dnf.clauses)
    total = 0.0
    for size in range(1, len(clauses) + 1):
        sign = 1.0 if size % 2 == 1 else -1.0
        for subset in itertools.combinations(clauses, size):
            conjunction = subset[0]
            for clause in subset[1:]:
                conjunction = conjunction.conjoin(clause)
                if conjunction is None:
                    break
            if conjunction is None:
                continue
            total += sign * conjunction.probability(registry)
    # Clamp tiny floating-point drift from the alternating sum.
    return min(1.0, max(0.0, total))
