"""The Dagum-Karp-Luby-Ross optimal Monte Carlo algorithm [2].

Implements the two algorithms of "An Optimal Algorithm for Monte Carlo
Estimation" (SIAM J. Comput. 29(5), 2000) over an arbitrary [0,1]-valued
sampler, and glues them to the Karp-Luby estimator to provide MayBMS's
``aconf(ε, δ)``: an estimate p̂ with

    P( |p̂ − p| > ε·p ) < δ            (relative (ε,δ)-approximation).

**Stopping Rule Algorithm (SRA).**  With Υ = 4(e−2)·ln(2/δ)/ε² and
Υ₁ = 1 + (1+ε)·Υ, draw samples until their running sum S first exceeds
Υ₁ and output Υ₁ / N, where N is the number of samples drawn.  The paper
proves this is an (ε,δ)-approximation of the mean μ using an *optimal*
expected number of samples up to constants: the count adapts to μ itself
(≈ Υ₁/μ), without needing a lower bound on μ in advance.

**Approximation Algorithm (AA).**  Wraps three phases ("sequential
analysis": a small pilot run estimates the mean and variance, which then
size the main run):

1. a pilot SRA with loosened parameters (√ε, δ/3) giving μ̂;
2. a variance run of N = Υ₂·ε/μ̂ sample *pairs*, estimating
   ρ̂ = max(S/N, ε·μ̂) where S sums (Z₂ᵢ₋₁ − Z₂ᵢ)²/2 -- an unbiased
   variance estimator that needs no mean subtraction;
3. a main run of N = Υ₂·ρ̂/μ̂² samples whose mean is the output,

with Υ₂ = 2·(1 + √ε)·(1 + 2√ε)·(1 + ln(3/2)/ln(3/δ))·Υ (and Υ evaluated
at δ/3).  AA's expected sample count is within a constant factor of the
optimum ≈ ρ/(μ²ε²)·ln(1/δ) for *every* (μ, ρ), which is why the paper is
titled "optimal": the naive bound μ/(ε²μ²) overshoots when the variance
is small, and MayBMS inherits the saving.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.core.confidence.dnf import DNF
from repro.core.confidence.dnf import LineageLike
from repro.core.confidence.karp_luby import KarpLubyEstimator
from repro.core.variables import VariableRegistry
from repro.errors import ConfidenceError

Sampler = Callable[[], float]

_E_MINUS_2 = math.e - 2.0

#: Samples per seeded block of the deterministic main run (see
#: :func:`approximate_confidence` with ``unit_seed``).  The block layout
#: depends only on the main-run sample count, never on worker count or
#: shard assignment, so blocked estimates are reproducible anywhere.
MAIN_BLOCK = 32_768

#: Stream tag for per-group ``aconf`` seeds.  Must stay distinct from the
#: component ordinals the conf() parallel path mixes in (-1 for a whole
#: group, 0..n for components) so the two aggregates never share draws.
ACONF_UNIT_STREAM = -2


def fnv_mix(seed: int, *parts: int) -> int:
    """Deterministic FNV-style integer mix: one 64-bit seed stream per
    (seed, parts) tuple.

    This is the single seed-derivation formula of the engine: the
    parallel pool's per-unit conf() seeds, the per-group aconf() seeds,
    and the per-block main-run seeds below are all drawn from it, so
    results are bit-identical across worker counts and shard layouts.
    """
    h = 0x9E3779B97F4A7C15 ^ (seed & 0xFFFFFFFFFFFFFFFF)
    for part in parts:
        h = (h ^ (part + 2)) * 0x100000001B3 & 0xFFFFFFFFFFFFFFFF
    return h


def aconf_unit_seed(base_seed: int, ordinal: int) -> int:
    """The per-group seed of ``aconf``'s Monte-Carlo run (group ``ordinal``
    in group order).  Shared by the serial path and the parallel workers:
    both call :func:`approximate_confidence` with this ``unit_seed``, so
    an aconf() answer is a pure function of (store seed, group ordinal)."""
    return fnv_mix(base_seed, ordinal, ACONF_UNIT_STREAM)


@dataclass
class ApproximationResult:
    """An estimate plus the number of samples each phase consumed."""

    estimate: float
    pilot_samples: int
    variance_samples: int
    main_samples: int

    @property
    def total_samples(self) -> int:
        return self.pilot_samples + self.variance_samples + self.main_samples


def _upsilon(epsilon: float, delta: float) -> float:
    """Υ = 4(e−2)·ln(2/δ)/ε², the base sample-count constant."""
    return 4.0 * _E_MINUS_2 * math.log(2.0 / delta) / (epsilon * epsilon)


def _check_parameters(epsilon: float, delta: float) -> None:
    if not (0.0 < epsilon < 1.0):
        raise ConfidenceError(f"epsilon must be in (0, 1), got {epsilon}")
    if not (0.0 < delta < 1.0):
        raise ConfidenceError(f"delta must be in (0, 1), got {delta}")


def stopping_rule_estimate(
    sampler: Sampler,
    epsilon: float,
    delta: float,
    max_samples: int = 100_000_000,
) -> Tuple[float, int]:
    """The DKLR Stopping Rule Algorithm.

    Returns (μ̂, samples used).  Requires the sampler's mean to be
    positive; ``max_samples`` guards against a zero-mean sampler looping
    forever (the Karp-Luby variable always has mean ≥ 1/#clauses, so the
    guard never triggers for well-formed lineage).
    """
    _check_parameters(epsilon, delta)
    upsilon1 = 1.0 + (1.0 + epsilon) * _upsilon(epsilon, delta)
    total = 0.0
    count = 0
    while total < upsilon1:
        if count >= max_samples:
            raise ConfidenceError(
                f"stopping rule drew {count} samples without reaching "
                f"Υ₁ = {upsilon1:.3g}; sampler mean is (near) zero"
            )
        total += sampler()
        count += 1
    return upsilon1 / count, count


def aa_estimate(
    sampler: Sampler,
    epsilon: float,
    delta: float,
    main_run: Optional[Callable[[int], float]] = None,
) -> ApproximationResult:
    """The DKLR Approximation Algorithm AA (pilot / variance / main runs).

    ``main_run`` overrides step 3: given the main-run sample count it
    returns the sample mean.  The parallel/deterministic aconf path uses
    it to draw the main run in fixed seeded blocks (vectorized, and
    independent of how the pilot RNG advanced); the default draws from
    ``sampler`` one at a time.
    """
    _check_parameters(epsilon, delta)

    # Step 1: pilot estimate with loosened accuracy min(1/2, √ε), confidence δ/3.
    pilot_epsilon = min(0.5, math.sqrt(epsilon))
    mu_hat, pilot_samples = stopping_rule_estimate(sampler, pilot_epsilon, delta / 3.0)

    # Υ₂ as in the paper, with Υ evaluated at (ε, δ/3).
    upsilon = _upsilon(epsilon, delta / 3.0)
    upsilon2 = (
        2.0
        * (1.0 + math.sqrt(epsilon))
        * (1.0 + 2.0 * math.sqrt(epsilon))
        * (1.0 + math.log(1.5) / math.log(3.0 / delta))
        * upsilon
    )

    # Step 2: variance estimation from sample pairs.
    pair_count = max(1, math.ceil(upsilon2 * epsilon / mu_hat))
    s = 0.0
    for _ in range(pair_count):
        z1 = sampler()
        z2 = sampler()
        d = z1 - z2
        s += d * d / 2.0
    rho_hat = max(s / pair_count, epsilon * mu_hat)
    variance_samples = 2 * pair_count

    # Step 3: main run sized by the variance estimate.
    main_count = max(1, math.ceil(upsilon2 * rho_hat / (mu_hat * mu_hat)))
    if main_run is not None:
        estimate = main_run(main_count)
    else:
        total = 0.0
        for _ in range(main_count):
            total += sampler()
        estimate = total / main_count

    return ApproximationResult(
        estimate=estimate,
        pilot_samples=pilot_samples,
        variance_samples=variance_samples,
        main_samples=main_count,
    )


def _blocked_main_run(
    estimator: KarpLubyEstimator, unit_seed: int
) -> Callable[[int], float]:
    """AA step 3 drawn in fixed seeded blocks of :data:`MAIN_BLOCK`.

    Block ``j`` draws its hit count from a private RNG seeded with
    ``fnv_mix(unit_seed, j + 1)`` (stream 0 is the pilot/variance RNG), so
    the main-run estimate depends only on (unit seed, sample count) --
    not on how far the pilot advanced a shared stream, and not on which
    worker runs it.  Z is Bernoulli, so integer hit counts combine across
    blocks with no float-order sensitivity at all.
    """

    def run(main_count: int) -> float:
        hits = 0
        for j, start in enumerate(range(0, main_count, MAIN_BLOCK)):
            block = min(MAIN_BLOCK, main_count - start)
            hits += estimator.sample_hits(block, seed=fnv_mix(unit_seed, j + 1))
        return hits / main_count

    return run


def approximate_confidence(
    dnf: LineageLike,
    registry: VariableRegistry,
    epsilon: float = 0.1,
    delta: float = 0.05,
    rng: Optional[random.Random] = None,
    unit_seed: Optional[int] = None,
) -> ApproximationResult:
    """``aconf(ε, δ)``: DKLR-driven Karp-Luby approximation of P(dnf).

    The AA guarantee on the Bernoulli mean μ_Z = p/U transfers to
    p = U·μ_Z because U is a known constant: relative error is preserved
    under scaling.

    With ``unit_seed`` the estimate is fully deterministic for that seed:
    the pilot/variance phases draw sequentially from a private RNG seeded
    with ``fnv_mix(unit_seed, 0)`` and the main run uses the blocked
    layout of :func:`_blocked_main_run`.  This is how aconf() stays
    bit-identical between serial execution and any parallel worker count
    -- every group carries its own seed, derived from the store seed via
    :func:`aconf_unit_seed`.  Without it, draws come from ``rng`` (the
    session RNG), the legacy behaviour.
    """
    if unit_seed is not None:
        rng = random.Random(fnv_mix(unit_seed, 0))
    estimator = KarpLubyEstimator(dnf, registry, rng)
    if estimator.is_trivial:
        return ApproximationResult(estimator.trivial_probability, 0, 0, 0)
    main_run = (
        _blocked_main_run(estimator, unit_seed) if unit_seed is not None else None
    )
    result = aa_estimate(estimator.sample, epsilon, delta, main_run=main_run)
    return ApproximationResult(
        estimate=estimator.total_weight * result.estimate,
        pilot_samples=result.pilot_samples,
        variance_samples=result.variance_samples,
        main_samples=result.main_samples,
    )


def aconf(
    dnf: LineageLike,
    registry: VariableRegistry,
    epsilon: float = 0.1,
    delta: float = 0.05,
    rng: Optional[random.Random] = None,
) -> float:
    """The scalar form of :func:`approximate_confidence`."""
    return approximate_confidence(dnf, registry, epsilon, delta, rng).estimate
