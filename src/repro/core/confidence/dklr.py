"""The Dagum-Karp-Luby-Ross optimal Monte Carlo algorithm [2].

Implements the two algorithms of "An Optimal Algorithm for Monte Carlo
Estimation" (SIAM J. Comput. 29(5), 2000) over an arbitrary [0,1]-valued
sampler, and glues them to the Karp-Luby estimator to provide MayBMS's
``aconf(ε, δ)``: an estimate p̂ with

    P( |p̂ − p| > ε·p ) < δ            (relative (ε,δ)-approximation).

**Stopping Rule Algorithm (SRA).**  With Υ = 4(e−2)·ln(2/δ)/ε² and
Υ₁ = 1 + (1+ε)·Υ, draw samples until their running sum S first exceeds
Υ₁ and output Υ₁ / N, where N is the number of samples drawn.  The paper
proves this is an (ε,δ)-approximation of the mean μ using an *optimal*
expected number of samples up to constants: the count adapts to μ itself
(≈ Υ₁/μ), without needing a lower bound on μ in advance.

**Approximation Algorithm (AA).**  Wraps three phases ("sequential
analysis": a small pilot run estimates the mean and variance, which then
size the main run):

1. a pilot SRA with loosened parameters (√ε, δ/3) giving μ̂;
2. a variance run of N = Υ₂·ε/μ̂ sample *pairs*, estimating
   ρ̂ = max(S/N, ε·μ̂) where S sums (Z₂ᵢ₋₁ − Z₂ᵢ)²/2 -- an unbiased
   variance estimator that needs no mean subtraction;
3. a main run of N = Υ₂·ρ̂/μ̂² samples whose mean is the output,

with Υ₂ = 2·(1 + √ε)·(1 + 2√ε)·(1 + ln(3/2)/ln(3/δ))·Υ (and Υ evaluated
at δ/3).  AA's expected sample count is within a constant factor of the
optimum ≈ ρ/(μ²ε²)·ln(1/δ) for *every* (μ, ρ), which is why the paper is
titled "optimal": the naive bound μ/(ε²μ²) overshoots when the variance
is small, and MayBMS inherits the saving.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.core.confidence.dnf import DNF
from repro.core.confidence.dnf import LineageLike
from repro.core.confidence.karp_luby import KarpLubyEstimator
from repro.core.variables import VariableRegistry
from repro.errors import ConfidenceError

Sampler = Callable[[], float]

_E_MINUS_2 = math.e - 2.0


@dataclass
class ApproximationResult:
    """An estimate plus the number of samples each phase consumed."""

    estimate: float
    pilot_samples: int
    variance_samples: int
    main_samples: int

    @property
    def total_samples(self) -> int:
        return self.pilot_samples + self.variance_samples + self.main_samples


def _upsilon(epsilon: float, delta: float) -> float:
    """Υ = 4(e−2)·ln(2/δ)/ε², the base sample-count constant."""
    return 4.0 * _E_MINUS_2 * math.log(2.0 / delta) / (epsilon * epsilon)


def _check_parameters(epsilon: float, delta: float) -> None:
    if not (0.0 < epsilon < 1.0):
        raise ConfidenceError(f"epsilon must be in (0, 1), got {epsilon}")
    if not (0.0 < delta < 1.0):
        raise ConfidenceError(f"delta must be in (0, 1), got {delta}")


def stopping_rule_estimate(
    sampler: Sampler,
    epsilon: float,
    delta: float,
    max_samples: int = 100_000_000,
) -> Tuple[float, int]:
    """The DKLR Stopping Rule Algorithm.

    Returns (μ̂, samples used).  Requires the sampler's mean to be
    positive; ``max_samples`` guards against a zero-mean sampler looping
    forever (the Karp-Luby variable always has mean ≥ 1/#clauses, so the
    guard never triggers for well-formed lineage).
    """
    _check_parameters(epsilon, delta)
    upsilon1 = 1.0 + (1.0 + epsilon) * _upsilon(epsilon, delta)
    total = 0.0
    count = 0
    while total < upsilon1:
        if count >= max_samples:
            raise ConfidenceError(
                f"stopping rule drew {count} samples without reaching "
                f"Υ₁ = {upsilon1:.3g}; sampler mean is (near) zero"
            )
        total += sampler()
        count += 1
    return upsilon1 / count, count


def aa_estimate(
    sampler: Sampler,
    epsilon: float,
    delta: float,
) -> ApproximationResult:
    """The DKLR Approximation Algorithm AA (pilot / variance / main runs)."""
    _check_parameters(epsilon, delta)

    # Step 1: pilot estimate with loosened accuracy min(1/2, √ε), confidence δ/3.
    pilot_epsilon = min(0.5, math.sqrt(epsilon))
    mu_hat, pilot_samples = stopping_rule_estimate(sampler, pilot_epsilon, delta / 3.0)

    # Υ₂ as in the paper, with Υ evaluated at (ε, δ/3).
    upsilon = _upsilon(epsilon, delta / 3.0)
    upsilon2 = (
        2.0
        * (1.0 + math.sqrt(epsilon))
        * (1.0 + 2.0 * math.sqrt(epsilon))
        * (1.0 + math.log(1.5) / math.log(3.0 / delta))
        * upsilon
    )

    # Step 2: variance estimation from sample pairs.
    pair_count = max(1, math.ceil(upsilon2 * epsilon / mu_hat))
    s = 0.0
    for _ in range(pair_count):
        z1 = sampler()
        z2 = sampler()
        d = z1 - z2
        s += d * d / 2.0
    rho_hat = max(s / pair_count, epsilon * mu_hat)
    variance_samples = 2 * pair_count

    # Step 3: main run sized by the variance estimate.
    main_count = max(1, math.ceil(upsilon2 * rho_hat / (mu_hat * mu_hat)))
    total = 0.0
    for _ in range(main_count):
        total += sampler()
    estimate = total / main_count

    return ApproximationResult(
        estimate=estimate,
        pilot_samples=pilot_samples,
        variance_samples=variance_samples,
        main_samples=main_count,
    )


def approximate_confidence(
    dnf: LineageLike,
    registry: VariableRegistry,
    epsilon: float = 0.1,
    delta: float = 0.05,
    rng: Optional[random.Random] = None,
) -> ApproximationResult:
    """``aconf(ε, δ)``: DKLR-driven Karp-Luby approximation of P(dnf).

    The AA guarantee on the Bernoulli mean μ_Z = p/U transfers to
    p = U·μ_Z because U is a known constant: relative error is preserved
    under scaling.
    """
    estimator = KarpLubyEstimator(dnf, registry, rng)
    if estimator.is_trivial:
        return ApproximationResult(estimator.trivial_probability, 0, 0, 0)
    result = aa_estimate(estimator.sample, epsilon, delta)
    return ApproximationResult(
        estimate=estimator.total_weight * result.estimate,
        pilot_samples=result.pilot_samples,
        variance_samples=result.variance_samples,
        main_samples=result.main_samples,
    )


def aconf(
    dnf: LineageLike,
    registry: VariableRegistry,
    epsilon: float = 0.1,
    delta: float = 0.05,
    rng: Optional[random.Random] = None,
) -> float:
    """The scalar form of :func:`approximate_confidence`."""
    return approximate_confidence(dnf, registry, epsilon, delta, rng).estimate
