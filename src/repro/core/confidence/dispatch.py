"""The cost-based confidence dispatcher.

Section 2.3 presents confidence computation as a *portfolio*: exact
ws-tree decomposition where tractable, SPROUT's safe plans for
hierarchical (tractable) cases, and (ε,δ) Monte Carlo everywhere else.
This module is the piece that actually chooses -- per ``conf()`` group
and per independent lineage component -- which algorithm runs:

1. **closed form** -- ⊥/⊤, a single clause, or pairwise
   variable-disjoint clauses: read the answer off the IR's cached clause
   probabilities (:meth:`~repro.core.lineage.Lineage.closed_form_probability`);
2. **sprout** -- the component is hierarchical (its variables' clause
   sets are laminar): SPROUT-style safe evaluation on the lineage
   (:func:`~repro.core.confidence.sprout.safe_lineage_confidence`),
   polynomial-time and exact;
3. **exact** -- the Koch-Olteanu ws-tree engine, under a *cost budget*
   (``max_subproblems``): still exact, but bounded;
4. **monte-carlo** -- the Karp-Luby estimator under the DKLR driver when
   the budget blows: an (ε,δ)-approximation with the policy's default
   parameters.

Components share no variables, so their results combine by independence:
P(⋁ all) = 1 − ∏(1 − P(componentᵢ)).

The decisions taken are recorded per aggregate call when a
:func:`trace_confidence` scope is active; the SQL ``EXPLAIN`` statement
renders them next to the relational plan fragments, and the
:class:`~repro.db.MayBMS` facade exposes the policy as a tuning knob
(``confidence_strategy`` / ``REPRO_CONF_STRATEGY``).
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.confidence.dklr import approximate_confidence
from repro.core.confidence.dnf import LineageLike
from repro.core.confidence.exact import ExactConfidenceEngine
from repro.core.confidence.sprout import safe_lineage_confidence
from repro.core.lineage import Lineage, combine_independent
from repro.core.variables import VariableRegistry
from repro.errors import (
    ConfidenceError,
    CostBudgetExceededError,
    UnsafeLineageError,
)

#: Strategy labels, in the order the dispatcher prefers them.
STRATEGY_CLOSED_FORM = "closed-form"
STRATEGY_SPROUT = "sprout"
STRATEGY_EXACT = "exact"
STRATEGY_MONTE_CARLO = "monte-carlo"

#: Legal values of the policy/facade strategy knob: "auto" is the cost
#: model; the rest force one algorithm for the whole lineage.
STRATEGY_CHOICES = (
    "auto",
    STRATEGY_SPROUT,
    STRATEGY_EXACT,
    STRATEGY_MONTE_CARLO,
)


@dataclass
class DispatchPolicy:
    """The tuning knobs of the dispatcher.

    - ``strategy``: ``"auto"`` (the cost model) or a forced algorithm
      (``"sprout"`` / ``"exact"`` / ``"monte-carlo"``);
    - ``exact_budget``: maximum ws-tree subproblems per component before
      ``conf()`` falls back to Monte Carlo (None = never fall back);
    - ``epsilon`` / ``delta``: the (ε,δ) parameters of that fallback,
      applied per component with δ split across a lineage's components
      (union bound); ε compounding through recombination makes the
      fallback best-effort -- ``aconf`` always uses its own SQL-given
      parameters on the whole lineage instead, keeping its guarantee.
    - ``parallel_workers`` / ``parallel_min_rows``: the process-parallel
      knobs (:mod:`repro.engine.parallel`): how many worker processes
      ``conf()`` may shard across (0 = serial), and the cost gate --
      relations with fewer condition-bearing rows stay serial because the
      shared-memory handoff would cost more than the confidence work.
    """

    strategy: str = "auto"
    exact_budget: Optional[int] = 100_000
    epsilon: float = 0.05
    delta: float = 0.01
    parallel_workers: int = 0
    parallel_min_rows: int = 2048

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGY_CHOICES:
            raise ConfidenceError(
                f"unknown confidence strategy {self.strategy!r}; expected "
                f"one of {STRATEGY_CHOICES}"
            )
        if self.parallel_workers < 0 or self.parallel_min_rows < 0:
            raise ConfidenceError(
                "parallel_workers and parallel_min_rows must be non-negative"
            )


@dataclass(frozen=True)
class ComponentDecision:
    """What the dispatcher did for one independent lineage component."""

    strategy: str
    probability: float
    clause_count: int
    variable_count: int


@dataclass
class DispatchResult:
    """Probability of one lineage plus the per-component decisions."""

    probability: float
    decisions: Tuple[ComponentDecision, ...]

    def strategy_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for decision in self.decisions:
            counts[decision.strategy] = counts.get(decision.strategy, 0) + 1
        return counts


# ---------------------------------------------------------------------------
# Strategy tracing (the EXPLAIN substrate, mirroring planner.trace_plans).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ConfidenceEvent:
    """One confidence-computing aggregate call: which strategies ran."""

    aggregate: str  # "conf" | "aconf" | "tconf"
    groups: int
    strategy_counts: Tuple[Tuple[str, int], ...]
    detail: str = ""

    def render(self) -> str:
        strategies = ", ".join(
            f"{name} x{count}" if count != 1 else name
            for name, count in self.strategy_counts
        )
        text = f"{self.aggregate}: {self.groups} group(s) via {strategies or 'nothing'}"
        if self.detail:
            text += f" ({self.detail})"
        return text


_TRACES: List[List[ConfidenceEvent]] = []


@contextmanager
def trace_confidence() -> Iterator[List[ConfidenceEvent]]:
    """Collect a :class:`ConfidenceEvent` per confidence aggregate executed
    in this scope; the EXPLAIN statement renders them."""
    buffer: List[ConfidenceEvent] = []
    _TRACES.append(buffer)
    try:
        yield buffer
    finally:
        _TRACES.pop()


def tracing_active() -> bool:
    return bool(_TRACES)


def record_event(event: ConfidenceEvent) -> None:
    for buffer in _TRACES:
        buffer.append(event)


def record_aggregate(
    aggregate: str,
    results: Sequence[DispatchResult],
    detail: str = "",
) -> None:
    """Summarize one aggregate call's dispatch results into a trace event
    (no-op when no trace is active)."""
    if not _TRACES:
        return
    counts: Dict[str, int] = {}
    for result in results:
        for name, n in result.strategy_counts().items():
            counts[name] = counts.get(name, 0) + n
    record_event(
        ConfidenceEvent(
            aggregate=aggregate,
            groups=len(results),
            strategy_counts=tuple(sorted(counts.items())),
            detail=detail,
        )
    )


# ---------------------------------------------------------------------------
# The dispatcher.
# ---------------------------------------------------------------------------


class ConfidenceDispatcher:
    """Chooses and runs a confidence algorithm per independent component.

    One dispatcher per session: it owns a shared exact engine (whose memo
    amortizes across groups and queries) and the Monte-Carlo RNG (seeded
    by the facade, so approximate results are reproducible).
    """

    def __init__(
        self,
        registry: VariableRegistry,
        policy: Optional[DispatchPolicy] = None,
        rng: Optional[random.Random] = None,
    ):
        self.registry = registry
        self.policy = policy if policy is not None else DispatchPolicy()
        self.rng = rng if rng is not None else random.Random(0)
        self._exact: Optional[ExactConfidenceEngine] = None
        self._budgeted_exact: Optional[ExactConfidenceEngine] = None

    def set_policy(self, policy: DispatchPolicy) -> None:
        """Swap the policy (the facade's tuning knob); engines built under
        the old policy's budget are discarded."""
        self.policy = policy
        self._budgeted_exact = None

    # -- engines (lazy, shared memoization) ---------------------------------
    def _exact_engine(self) -> ExactConfidenceEngine:
        if self._exact is None:
            self._exact = ExactConfidenceEngine(self.registry)
        return self._exact

    def _budgeted_engine(self) -> ExactConfidenceEngine:
        if self._budgeted_exact is None:
            self._budgeted_exact = ExactConfidenceEngine(
                self.registry, max_subproblems=self.policy.exact_budget
            )
        return self._budgeted_exact

    # -- public API ---------------------------------------------------------
    def probability(self, lineage: LineageLike) -> DispatchResult:
        """P(lineage) with per-component strategy choice (the ``conf()``
        semantics: exact unless the exact budget blows, in which case the
        affected component degrades to an (ε,δ) estimate)."""
        lineage = Lineage.of(lineage, self.registry).simplified()
        strategy = self.policy.strategy
        if strategy != "auto":
            return self._forced(lineage, strategy)

        # Whole-lineage closed form first: the common fully-independent
        # case (e.g. tuple-independent lineage) finishes here without
        # materializing per-clause components.
        closed = lineage.closed_form_probability()
        if closed is not None:
            stats = lineage.stats(test_hierarchy=False)
            return DispatchResult(
                closed,
                (
                    ComponentDecision(
                        STRATEGY_CLOSED_FORM,
                        closed,
                        stats.clause_count,
                        stats.variable_count,
                    ),
                ),
            )
        components = lineage.components()
        # Union bound: splitting δ across components keeps the total
        # chance of any Monte-Carlo component exceeding its ε bound below
        # the policy's δ.  (Per-component relative errors can still
        # compound through the 1 − ∏(1 − pᵢ) recombination; conf()'s
        # budget fallback is best-effort by design -- aconf() runs one
        # whole-lineage estimation precisely to keep the strict
        # guarantee.)
        delta = self.policy.delta / max(1, len(components))
        decisions = [
            self._dispatch_component(component, delta)
            for component in components
        ]
        probability = combine_independent(d.probability for d in decisions)
        return DispatchResult(probability, tuple(decisions))

    def approximate(
        self,
        lineage: LineageLike,
        epsilon: float,
        delta: float,
        unit_seed: Optional[int] = None,
    ) -> DispatchResult:
        """The ``aconf(ε, δ)`` semantics: any estimate p̂ with
        P(|p̂ − p| > ε·p) < δ.

        Exact answers satisfy the guarantee trivially, so cheap exact
        routes are taken when available: closed forms always, SPROUT safe
        evaluation when the lineage is known hierarchical.  Otherwise the
        whole lineage goes to the DKLR-driven Karp-Luby estimator (whole,
        not per component: the (ε,δ) guarantee is proved for a single
        estimator run and does not survive per-component recombination).

        ``unit_seed`` pins the Monte-Carlo route to a private deterministic
        stream (see :func:`approximate_confidence`); the exact routes are
        deterministic regardless.  The parallel aconf path relies on this:
        a worker's fresh dispatcher and the store's long-lived one return
        bit-identical answers for the same (lineage, seed).
        """
        lineage = Lineage.of(lineage, self.registry).simplified()
        stats = lineage.stats(test_hierarchy=False)
        decision_shape = (stats.clause_count, stats.variable_count)
        if self.policy.strategy in ("auto", STRATEGY_SPROUT):
            closed = lineage.closed_form_probability()
            if closed is not None:
                return DispatchResult(
                    closed,
                    (ComponentDecision(STRATEGY_CLOSED_FORM, closed, *decision_shape),),
                )
            try:
                p = safe_lineage_confidence(lineage)
                return DispatchResult(
                    p, (ComponentDecision(STRATEGY_SPROUT, p, *decision_shape),)
                )
            except UnsafeLineageError:
                # A forced "sprout" policy means *only* safe plans, for
                # aconf as for conf; only "auto" may fall through.
                if self.policy.strategy == STRATEGY_SPROUT:
                    raise
        if self.policy.strategy == STRATEGY_EXACT:
            p = self._exact_engine().probability(lineage)
            return DispatchResult(
                p, (ComponentDecision(STRATEGY_EXACT, p, *decision_shape),)
            )
        result = approximate_confidence(
            lineage, self.registry, epsilon, delta, self.rng, unit_seed=unit_seed
        )
        return DispatchResult(
            result.estimate,
            (
                ComponentDecision(
                    STRATEGY_MONTE_CARLO, result.estimate, *decision_shape
                ),
            ),
        )

    def group_probabilities(
        self, lineages: Sequence[LineageLike]
    ) -> List[DispatchResult]:
        return [self.probability(lineage) for lineage in lineages]

    def dispatch_component(
        self, component: LineageLike, delta: Optional[float] = None
    ) -> ComponentDecision:
        """Dispatch one independent component (the unit of work a parallel
        confidence worker runs; see :mod:`repro.engine.parallel`).  The
        caller supplies the per-component δ share it computed when it
        split the lineage."""
        component = Lineage.of(component, self.registry)
        return self._dispatch_component(component, delta)

    # -- internals ----------------------------------------------------------
    def _forced(self, lineage: Lineage, strategy: str) -> DispatchResult:
        stats = lineage.stats(test_hierarchy=False)
        shape = (stats.clause_count, stats.variable_count)
        if strategy == STRATEGY_EXACT:
            p = self._exact_engine().probability(lineage)
        elif strategy == STRATEGY_SPROUT:
            p = safe_lineage_confidence(lineage)  # raises UnsafeLineageError
        else:  # monte-carlo
            if lineage.is_false or lineage.is_true:
                p = 0.0 if lineage.is_false else 1.0
            else:
                p = approximate_confidence(
                    lineage,
                    self.registry,
                    self.policy.epsilon,
                    self.policy.delta,
                    self.rng,
                ).estimate
        return DispatchResult(p, (ComponentDecision(strategy, p, *shape),))

    def _dispatch_component(
        self, component: Lineage, delta: Optional[float] = None
    ) -> ComponentDecision:
        stats = component.stats(test_hierarchy=False)
        shape = (stats.clause_count, stats.variable_count)

        closed = component.closed_form_probability()
        if closed is not None:
            return ComponentDecision(STRATEGY_CLOSED_FORM, closed, *shape)

        # Hierarchical components run SPROUT-style safe evaluation:
        # polynomial and exact.  Safety is probed constructively rather
        # than pre-tested (the O(V^2) laminarity test would dominate on
        # the very lineages safe evaluation makes cheap): the evaluator
        # raises on the first root-less component, typically at the top.
        try:
            p = safe_lineage_confidence(component, connected=True)
            return ComponentDecision(STRATEGY_SPROUT, p, *shape)
        except UnsafeLineageError:
            pass

        try:
            p = self._budgeted_engine().probability(component)
            return ComponentDecision(STRATEGY_EXACT, p, *shape)
        except CostBudgetExceededError:
            pass

        result = approximate_confidence(
            component,
            self.registry,
            self.policy.epsilon,
            delta if delta is not None else self.policy.delta,
            self.rng,
        )
        return ComponentDecision(STRATEGY_MONTE_CARLO, result.estimate, *shape)
