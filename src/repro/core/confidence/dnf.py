"""Lineage DNFs.

The lineage of a (distinct) result tuple of a query over a U-relational
database is a DNF whose clauses are the conjunctive local conditions of
the tuple's duplicates.  ``conf`` is the probability that at least one
clause holds.  This module holds the DNF data structure shared by all
confidence engines, plus normalization (dropping inconsistent and
zero-probability clauses, absorbing subsumed clauses).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.core.conditions import Condition, TRUE_CONDITION
from repro.core.lineage import ClauseArena, Lineage
from repro.core.urelation import URelation
from repro.core.variables import VariableRegistry
from repro.errors import ConfidenceError

#: Inputs every confidence-engine entry point accepts: the shared lineage
#: IR or the legacy DNF container (coerced via :meth:`Lineage.of`).  One
#: definition, shared by exact/karp_luby/dklr/dispatch.
LineageLike = Union["DNF", Lineage]


class DNF:
    """A disjunction of conjunctive conditions over independent variables.

    Clauses are kept in insertion order (the Karp-Luby estimator's
    "smallest satisfied clause" tie-break needs a fixed order).  The empty
    DNF is identically false; a DNF containing the empty clause is
    identically true.
    """

    __slots__ = ("clauses",)

    def __init__(self, clauses: Iterable[Condition] = ()):
        self.clauses: List[Condition] = list(clauses)

    # -- constructors -------------------------------------------------------
    @staticmethod
    def from_urelation(
        urel: URelation, payload: Optional[tuple] = None
    ) -> "DNF":
        """Lineage of a payload tuple (or of the whole relation's event
        "at least one tuple present" when payload is None)."""
        clauses = []
        for row, condition in urel.rows_with_conditions():
            if condition is None:
                continue
            if payload is None or row == payload:
                clauses.append(condition)
        return DNF(clauses)

    # -- conversion ---------------------------------------------------------
    def to_lineage(
        self,
        registry: VariableRegistry,
        arena: Optional[ClauseArena] = None,
    ) -> Lineage:
        """This DNF as the shared lineage IR (clauses interned, not copied)."""
        return Lineage.from_clauses(self.clauses, registry, arena)

    # -- protocol -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.clauses)

    def __iter__(self) -> Iterator[Condition]:
        return iter(self.clauses)

    def __repr__(self) -> str:
        if not self.clauses:
            return "⊥"
        return " ∨ ".join(f"({c!r})" for c in self.clauses)

    # -- classification ---------------------------------------------------------
    @property
    def is_false(self) -> bool:
        return not self.clauses

    @property
    def is_true(self) -> bool:
        return any(clause.is_true for clause in self.clauses)

    def variables(self) -> FrozenSet[int]:
        out: Set[int] = set()
        for clause in self.clauses:
            out.update(clause.variables())
        return frozenset(out)

    def variable_count(self) -> int:
        return len(self.variables())

    def clause_count(self) -> int:
        return len(self.clauses)

    def variable_to_clause_ratio(self) -> float:
        """The paper's crossover statistic: #variables / #clauses."""
        if not self.clauses:
            raise ConfidenceError("ratio undefined for an empty DNF")
        return self.variable_count() / self.clause_count()

    def occurrence_counts(self) -> Dict[int, int]:
        """How many clauses each variable occurs in (elimination heuristic)."""
        counts: Dict[int, int] = {}
        for clause in self.clauses:
            for var in clause.variables():
                counts[var] = counts.get(var, 0) + 1
        return counts

    # -- normalization ----------------------------------------------------------
    #: Clauses wider than this fall back to a linear absorption scan;
    #: below it, enumerating the 2^k atom subsets is cheaper than scanning
    #: all previously kept clauses.
    _SUBSET_ENUMERATION_WIDTH = 12

    def normalized(self, registry: Optional[VariableRegistry] = None) -> "DNF":
        """Drop duplicate clauses and clauses absorbed by a weaker clause;
        with a registry, also drop clauses of probability zero.

        Absorption: if clause c ⊆ c' (as atom sets), then c' is redundant
        (whenever c' holds, c holds).  Processing in length order, a clause
        is absorbed iff some subset of its atoms was already kept -- checked
        by enumerating its 2^k atom subsets against a hash set, so the
        whole pass is near-linear in the clause count for the short clauses
        real lineage produces (wide clauses fall back to a linear scan).
        """
        import itertools

        kept: List[Condition] = []
        kept_keys: Set[Tuple] = set()
        for clause in sorted(self.clauses, key=len):
            if clause.atoms in kept_keys:
                continue
            if registry is not None and clause.probability(registry) <= 0.0:
                continue
            absorbed = False
            width = len(clause.atoms)
            if width <= self._SUBSET_ENUMERATION_WIDTH:
                for size in range(0, width):  # proper subsets only
                    for subset in itertools.combinations(clause.atoms, size):
                        if subset in kept_keys:
                            absorbed = True
                            break
                    if absorbed:
                        break
            else:
                absorbed = any(k.subsumes(clause) for k in kept)
            if absorbed:
                continue
            kept.append(clause)
            kept_keys.add(clause.atoms)
        return DNF(kept)

    # -- semantics ----------------------------------------------------------------
    def satisfied_by(self, assignment) -> bool:
        return any(clause.satisfied_by(assignment) for clause in self.clauses)

    def first_satisfied_clause(self, assignment) -> Optional[int]:
        """Index of the first clause the assignment satisfies (Karp-Luby's
        canonical-witness test), or None."""
        for i, clause in enumerate(self.clauses):
            if clause.satisfied_by(assignment):
                return i
        return None

    def clause_probabilities(self, registry: VariableRegistry) -> List[float]:
        return [clause.probability(registry) for clause in self.clauses]

    # -- operations used by the exact algorithm --------------------------------------
    def restrict(self, var: int, value: int) -> "DNF":
        """Condition the DNF on ``var = value``: clauses disagreeing on
        ``var`` disappear, agreeing atoms are consumed."""
        clauses = []
        for clause in self.clauses:
            restricted = clause.restrict(var, value)
            if restricted is not None:
                clauses.append(restricted)
        return DNF(clauses)

    def independent_components(self) -> List["DNF"]:
        """Partition clauses into groups sharing no variables (union-find).

        Clauses in different components are independent events, so the
        probability of the disjunction factorizes across components.
        Clauses with the empty condition each form their own component
        (they are independently always-true).
        """
        parent: Dict[int, int] = {}

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(a: int, b: int) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[rb] = ra

        for clause in self.clauses:
            for var in clause.variables():
                if var not in parent:
                    parent[var] = var

        for clause in self.clauses:
            vs = list(clause.variables())
            for other in vs[1:]:
                union(vs[0], other)

        components: Dict[Optional[int], List[Condition]] = {}
        trivial: List[Condition] = []
        for clause in self.clauses:
            vs = clause.variables()
            if not vs:
                trivial.append(clause)
                continue
            root = find(next(iter(vs)))
            components.setdefault(root, []).append(clause)

        out = [DNF(clauses) for _, clauses in sorted(components.items())]
        out.extend(DNF([c]) for c in trivial)
        return out

    def canonical_key(self) -> Tuple[Tuple[Tuple[int, int], ...], ...]:
        """A hashable canonical form (sorted clause atom tuples) for
        memoization in the exact engine."""
        return tuple(sorted(clause.atoms for clause in self.clauses))
