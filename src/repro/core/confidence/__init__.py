"""Confidence computation (Section 2.3).

Computing ``conf`` of a result tuple means computing the probability of a
DNF over independent finite random variables, where each clause is the
conjunctive local condition of one duplicate of the tuple.  This is
#P-hard in general; MayBMS ships several engines:

- :mod:`repro.core.confidence.naive` -- exponential oracles (enumeration,
  inclusion-exclusion) used for testing;
- :mod:`repro.core.confidence.exact` -- the Koch-Olteanu exact algorithm:
  variable elimination + decomposition into independent clause subsets,
  with cost-estimation heuristics [3];
- :mod:`repro.core.confidence.karp_luby` -- the Karp-Luby unbiased
  estimator adapted to confidence computation;
- :mod:`repro.core.confidence.dklr` -- the Dagum-Karp-Luby-Ross optimal
  Monte Carlo driver giving the ``aconf(ε,δ)`` guarantee [2];
- :mod:`repro.core.confidence.sprout` -- SPROUT-style safe (lazy/eager)
  plans for hierarchical queries on tuple-independent tables [5].
"""

from repro.core.confidence.dnf import DNF
from repro.core.confidence.exact import exact_confidence, ExactConfidenceEngine
from repro.core.confidence.karp_luby import KarpLubyEstimator
from repro.core.confidence.dklr import aconf, approximate_confidence
from repro.core.confidence.dispatch import (
    ConfidenceDispatcher,
    DispatchPolicy,
    trace_confidence,
)
from repro.core.confidence.naive import (
    confidence_by_enumeration,
    confidence_by_inclusion_exclusion,
)
from repro.core.confidence.sprout import safe_lineage_confidence

__all__ = [
    "DNF",
    "exact_confidence",
    "ExactConfidenceEngine",
    "KarpLubyEstimator",
    "aconf",
    "approximate_confidence",
    "ConfidenceDispatcher",
    "DispatchPolicy",
    "trace_confidence",
    "confidence_by_enumeration",
    "confidence_by_inclusion_exclusion",
    "safe_lineage_confidence",
]
