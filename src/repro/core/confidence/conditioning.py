"""Conditioning probabilistic databases (the extension from [3]).

Reference [3] (Koch & Olteanu, VLDB 2008) -- the paper behind MayBMS's
exact confidence engine -- is about *conditioning*: updating a
probabilistic database by declaring that some event (a constraint) is
known to hold, i.e. removing the worlds that violate it and renormalizing.
This module supplies that capability on top of the exact engine:

- :func:`conjoin_dnfs` -- the DNF of a conjunction of two DNF events
  (pairwise clause merge, contradictions dropped);
- :func:`conditional_confidence` -- P(E | F) = P(E ∧ F) / P(F), computed
  with two exact-engine calls (no world enumeration);
- :func:`restrict_variable` -- conditioning on a *local* event (a subset
  of one variable's domain).  Because the variables are independent, this
  preserves the U-relational representation exactly: only one variable's
  distribution renormalizes;
- :func:`posterior_worlds` -- the general case materialized: the explicit
  posterior world table given arbitrary DNF evidence.  Conditioning on a
  non-local event breaks variable independence (the posterior is not a
  product distribution), which is the fundamental finding of [3]; the
  explicit table is the faithful small-scale representation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.conditions import Condition
from repro.core.confidence.dnf import DNF
from repro.core.confidence.exact import ExactConfidenceEngine
from repro.core.variables import VariableRegistry
from repro.core.worlds import enumerate_worlds
from repro.errors import ConfidenceError, InvalidDistributionError, VariableError


def conjoin_dnfs(event: DNF, evidence: DNF) -> DNF:
    """The DNF of E ∧ F: pairwise conjunction of clauses.

    Distributivity: (⋁ᵢ cᵢ) ∧ (⋁ⱼ dⱼ) = ⋁ᵢⱼ (cᵢ ∧ dⱼ); contradictory
    merges represent no world and are dropped.  Quadratic in the clause
    counts, which matches how lineage for conjunctive conditions grows.
    """
    clauses: List[Condition] = []
    for c in event.clauses:
        for d in evidence.clauses:
            merged = c.conjoin(d)
            if merged is not None:
                clauses.append(merged)
    return DNF(clauses)


def conditional_confidence(
    event: DNF,
    evidence: DNF,
    registry: VariableRegistry,
    engine: Optional[ExactConfidenceEngine] = None,
) -> float:
    """P(event | evidence), exactly.

    Raises :class:`ConfidenceError` when the evidence has probability 0
    (conditioning on an impossible event).
    """
    engine = engine if engine is not None else ExactConfidenceEngine(registry)
    p_evidence = engine.probability(evidence)
    if p_evidence <= 0.0:
        raise ConfidenceError("cannot condition on an event of probability zero")
    p_joint = engine.probability(conjoin_dnfs(event, evidence))
    return p_joint / p_evidence


def restrict_variable(
    registry: VariableRegistry,
    variable: int,
    allowed_values: Iterable[int],
) -> VariableRegistry:
    """Condition the database on the local event ``variable ∈ allowed``.

    Returns a *new* registry (same variable ids) in which the variable's
    distribution is renormalized over the allowed values; all other
    variables are untouched -- independence is preserved, so every
    U-relation over the old registry remains a valid representation over
    the new one (tuples whose condition requires a disallowed value now
    simply have probability 0).
    """
    allowed = set(allowed_values)
    distribution = registry.distribution(variable)
    kept = {v: p for v, p in distribution.items() if v in allowed}
    total = sum(kept.values())
    if total <= 0.0:
        raise ConfidenceError(
            f"conditioning variable {variable} on {sorted(allowed)} leaves "
            "zero probability mass"
        )
    clone = registry.copy()
    # Rebuild the variable's distribution in place: disallowed values get
    # probability 0 (kept in the domain so stored conditions stay valid).
    new_distribution = {
        v: (p / total if v in allowed else 0.0) for v, p in distribution.items()
    }
    clone._distributions[variable] = new_distribution
    return clone


def posterior_worlds(
    registry: VariableRegistry,
    evidence: DNF,
    variables: Optional[Sequence[int]] = None,
) -> List[Tuple[Dict[int, int], float]]:
    """The explicit posterior world table given DNF evidence.

    Enumerates the worlds over ``variables`` (default: the evidence's
    variables), keeps those satisfying the evidence, and renormalizes.
    Exponential in the variable count by design -- [3]'s point is that the
    posterior of a non-local event admits no independent-variable
    representation, so small-scale materialization is the honest fallback
    (their ws-trees are the compressed variant).
    """
    if evidence.is_false:
        raise ConfidenceError("cannot condition on an event of probability zero")
    var_list = (
        list(variables) if variables is not None else sorted(evidence.variables())
    )
    survivors: List[Tuple[Dict[int, int], float]] = []
    total = 0.0
    for world, p in enumerate_worlds(registry, var_list):
        if evidence.satisfied_by(world):
            survivors.append((world, p))
            total += p
    if total <= 0.0:
        raise ConfidenceError("cannot condition on an event of probability zero")
    return [(world, p / total) for world, p in survivors]


def is_local_event(evidence: DNF) -> bool:
    """Does the evidence mention exactly one variable?

    Local events are the cheap case: :func:`restrict_variable` applies and
    the posterior stays a product distribution.
    """
    return len(evidence.variables()) == 1


def condition(
    registry: VariableRegistry, evidence: DNF
) -> Tuple[Optional[VariableRegistry], Optional[List[Tuple[Dict[int, int], float]]]]:
    """Condition the database on ``evidence``, choosing the representation.

    Returns ``(new_registry, None)`` when the evidence is local (product
    form preserved), or ``(None, posterior_world_table)`` when it is not.
    """
    if is_local_event(evidence):
        (variable,) = evidence.variables()
        allowed = set()
        for clause in evidence.clauses:
            value = clause.value_of(variable)
            if value is not None:
                allowed.add(value)
            else:  # an empty clause: the evidence is trivially true
                return registry.copy(), None
        return restrict_variable(registry, variable, allowed), None
    return None, posterior_worlds(registry, evidence)
