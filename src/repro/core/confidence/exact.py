"""Exact confidence computation: the Koch-Olteanu algorithm [3].

"Given a DNF (of which each clause is a conjunctive local condition), the
algorithm employs a combination of variable elimination and decomposition
of the DNF into independent subsets of clauses (i.e., subsets that do not
share variables), with cost-estimation heuristics for choosing whether to
use the former (and for which variable) or the latter."  (Section 2.3)

The two rules:

**Independence decomposition.**  If the clause set splits into components
C₁..C_k sharing no variables, the events are independent and

    P(⋁ clauses) = 1 − ∏ᵢ (1 − P(Cᵢ)).

**Variable elimination (Shannon expansion).**  Pick a variable x; the
worlds partition by x's value, so

    P(D) = Σ_{v ∈ dom(x)} P(x = v) · P(D | x = v),

where D | x = v drops clauses disagreeing on x and consumes agreeing
atoms.

The recursion terminates because every step either removes a variable or
splits the clause set.  The computation is recorded as a decomposition
tree (*ws-tree*) that callers can inspect; sub-DNF results are memoized on
the DNF's canonical form (two duplicates of a tuple often induce
overlapping sub-problems).

Heuristics: decomposition is applied whenever it makes progress (it only
multiplies independent results -- always beneficial).  Otherwise the
variable to eliminate is chosen by estimated cost: occurrence count first
(eliminating a variable present in many clauses shrinks the problem
fastest), then smaller domain, then lower id for determinism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.confidence.dnf import DNF, LineageLike
from repro.core.lineage import Lineage
from repro.core.lineage import group_lineages as _lineage_groups
from repro.core.variables import VariableRegistry
from repro.errors import ConfidenceError, CostBudgetExceededError


@dataclass
class WSTreeNode:
    """One node of the decomposition (ws-)tree.

    ``kind`` is one of:
    - ``"false"`` / ``"true"`` -- leaves (empty DNF / empty clause);
    - ``"clause"`` -- a single-clause leaf, probability = atom product;
    - ``"decompose"`` -- children are independent components;
    - ``"eliminate"`` -- children are the cofactors per domain value of
      the eliminated variable (``variable``/``branch_values``/
      ``branch_probabilities`` describe the split).
    """

    kind: str
    probability: float
    variable: Optional[int] = None
    branch_values: Tuple[int, ...] = ()
    branch_probabilities: Tuple[float, ...] = ()
    children: List["WSTreeNode"] = field(default_factory=list)

    def size(self) -> int:
        return 1 + sum(child.size() for child in self.children)

    def depth(self) -> int:
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def render(self, indent: int = 0) -> str:
        pad = "  " * indent
        label = self.kind
        if self.kind == "eliminate":
            label += f"(x{self.variable})"
        lines = [f"{pad}{label} p={self.probability:.6g}"]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)


@dataclass
class ExactStatistics:
    """Counters for benchmarking the engine's behaviour."""

    decompositions: int = 0
    eliminations: int = 0
    clause_leaves: int = 0
    memo_hits: int = 0
    subproblems: int = 0


#: Variable-elimination heuristics (for the ablation study, C-ABLATE):
#: - "frequency": most-occurring variable first (the cost-estimation
#:   heuristic described in [3]) -- the default;
#: - "min-domain": fewest branches first;
#: - "first": lowest variable id (no cost estimation at all).
VARIABLE_HEURISTICS = ("frequency", "min-domain", "first")


class ExactConfidenceEngine:
    """Reusable exact engine with memoization across calls.

    One engine per registry: memoized probabilities depend on the variable
    distributions.  ``variable_heuristic``/``memoize``/``decompose`` exist
    so the ablation benchmarks can quantify each design choice; production
    callers use the defaults.
    """

    def __init__(
        self,
        registry: VariableRegistry,
        build_tree: bool = False,
        variable_heuristic: str = "frequency",
        memoize: bool = True,
        decompose: bool = True,
        max_subproblems: Optional[int] = None,
    ):
        if variable_heuristic not in VARIABLE_HEURISTICS:
            raise ConfidenceError(
                f"unknown variable heuristic {variable_heuristic!r}; "
                f"expected one of {VARIABLE_HEURISTICS}"
            )
        self.registry = registry
        self.build_tree = build_tree
        self.variable_heuristic = variable_heuristic
        self.memoize = memoize
        self.decompose = decompose
        self.max_subproblems = max_subproblems
        self.statistics = ExactStatistics()
        self._memo: Dict[tuple, float] = {}
        self._budget_base = 0

    # -- public API ---------------------------------------------------------
    def probability(self, dnf: LineageLike) -> float:
        """P(dnf), exactly.

        Accepts the shared lineage IR or a legacy DNF.  An
        already-simplified lineage skips re-normalization (the IR did the
        zero-probability/duplicate/subsumption work once for all engines).
        Raises :class:`CostBudgetExceededError` when ``max_subproblems``
        is set and the decomposition exceeds it.
        """
        probability, _ = self._solve(self._prepare(dnf))
        return probability

    def probability_with_tree(self, dnf: LineageLike) -> Tuple[float, WSTreeNode]:
        """P(dnf) plus the decomposition tree (forces tree construction)."""
        saved = self.build_tree
        self.build_tree = True
        try:
            probability, tree = self._solve(self._prepare(dnf))
            assert tree is not None
            return probability, tree
        finally:
            self.build_tree = saved

    def _prepare(self, dnf: LineageLike) -> DNF:
        # The budget is per top-level call (the engine is reused across
        # groups for memo sharing, so the lifetime counter keeps growing).
        self._budget_base = self.statistics.subproblems
        if isinstance(dnf, Lineage):
            # Clauses are shared Condition objects; wrapping them in the
            # recursion's DNF container copies nothing.
            return DNF(dnf.simplified().clauses)
        return dnf.normalized(self.registry)

    # -- recursion ------------------------------------------------------------
    def _solve(self, dnf: DNF) -> Tuple[float, Optional[WSTreeNode]]:
        self.statistics.subproblems += 1
        if (
            self.max_subproblems is not None
            and self.statistics.subproblems - self._budget_base
            > self.max_subproblems
        ):
            raise CostBudgetExceededError(
                f"exact decomposition exceeded its budget of "
                f"{self.max_subproblems} subproblems"
            )

        if dnf.is_false:
            return 0.0, self._leaf("false", 0.0)
        if dnf.is_true:
            return 1.0, self._leaf("true", 1.0)

        key = dnf.canonical_key()
        if self.memoize and key in self._memo and not self.build_tree:
            self.statistics.memo_hits += 1
            return self._memo[key], None

        if len(dnf) == 1:
            self.statistics.clause_leaves += 1
            p = dnf.clauses[0].probability(self.registry)
            self._remember(key, p)
            return p, self._leaf("clause", p)

        components = dnf.independent_components() if self.decompose else [dnf]
        if len(components) > 1:
            self.statistics.decompositions += 1
            probability = 1.0
            children = []
            complement = 1.0
            for component in components:
                p, child = self._solve(component)
                complement *= 1.0 - p
                if child is not None:
                    children.append(child)
            probability = 1.0 - complement
            self._remember(key, probability)
            if self.build_tree:
                return probability, WSTreeNode("decompose", probability, children=children)
            return probability, None

        variable = self._choose_variable(dnf)
        self.statistics.eliminations += 1
        probability = 0.0
        values, value_probs, children = [], [], []
        for value, p_value in self.registry.distribution(variable).items():
            if p_value == 0.0:
                continue
            cofactor = dnf.restrict(variable, value)
            p_cofactor, child = self._solve(cofactor)
            probability += p_value * p_cofactor
            values.append(value)
            value_probs.append(p_value)
            if child is not None:
                children.append(child)
        self._remember(key, probability)
        if self.build_tree:
            return probability, WSTreeNode(
                "eliminate",
                probability,
                variable=variable,
                branch_values=tuple(values),
                branch_probabilities=tuple(value_probs),
                children=children,
            )
        return probability, None

    def _choose_variable(self, dnf: DNF) -> int:
        """Cost-estimation heuristic for the elimination variable.

        The default ("frequency") prefers the variable occurring in the
        most clauses: each branch of the expansion then touches (removes
        or shrinks) the most clauses, maximizing the chance that cofactors
        decompose.  Ties break toward smaller domains (fewer branches),
        then smaller ids (determinism).
        """
        counts = dnf.occurrence_counts()
        if not counts:
            raise ConfidenceError("cannot eliminate: DNF has no variables")
        if self.variable_heuristic == "first":
            return min(counts)
        if self.variable_heuristic == "min-domain":
            return min(
                counts,
                key=lambda var: (self.registry.domain_size(var), -counts[var], var),
            )
        return min(
            counts,
            key=lambda var: (-counts[var], self.registry.domain_size(var), var),
        )

    #: Memo-size safety valve.  The executor keeps one engine per session,
    #: so without a bound the memo would grow for the process lifetime;
    #: past this many entries the memo resets wholesale (crude epoch
    #: eviction -- losing it costs recomputation, never correctness).
    MAX_MEMO_ENTRIES = 1_000_000

    def _remember(self, key: tuple, probability: float) -> None:
        if self.memoize:
            if len(self._memo) >= self.MAX_MEMO_ENTRIES:
                self._memo.clear()
            self._memo[key] = probability

    def _leaf(self, kind: str, probability: float) -> Optional[WSTreeNode]:
        if not self.build_tree:
            return None
        return WSTreeNode(kind, probability)


def exact_confidence(
    dnf: LineageLike, registry: VariableRegistry
) -> float:
    """One-shot exact probability of a lineage (IR or DNF)."""
    return ExactConfidenceEngine(registry).probability(dnf)


def group_lineages(
    urel, row_groups: Sequence[Sequence[int]]
) -> List[Lineage]:
    """Per-group lineages read straight off a U-relation's condition
    columns -- a thin alias of :func:`repro.core.lineage.group_lineages`,
    kept here because the ``conf()`` aggregate historically imported it
    from the exact engine."""
    return _lineage_groups(urel, row_groups)


def group_probabilities(
    urel,
    row_groups: Sequence[Sequence[int]],
    engine: Optional[ExactConfidenceEngine] = None,
) -> List[float]:
    """Exact confidence per group of row indexes of a U-relation: the
    column-consuming entry point behind the forced-exact ``conf()`` path."""
    engine = engine if engine is not None else ExactConfidenceEngine(urel.registry)
    return [engine.probability(lineage) for lineage in group_lineages(urel, row_groups)]
