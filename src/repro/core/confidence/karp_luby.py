"""The Karp-Luby unbiased estimator, adapted to confidence computation.

Section 2.3: "The approximation algorithm used by MayBMS is a combination
of the Karp-Luby unbiased estimator for DNF counting in a modified version
adapted to confidence computation in probabilistic databases, and the
Dagum-Karp-Luby-Ross optimal algorithm for Monte Carlo estimation."

The classical estimator targets P(⋁ᵢ Cᵢ) for events Cᵢ with easily
computable probabilities pᵢ = P(Cᵢ) and easy conditional sampling.  For
confidence computation the Cᵢ are conjunctions of assignments of
independent finite random variables, so both are immediate:

- pᵢ is the product of the atom probabilities;
- sampling a world conditioned on Cᵢ fixes Cᵢ's atoms and samples every
  other variable of the DNF from its marginal distribution.

With U = Σᵢ pᵢ, sample a clause index i with probability pᵢ/U and then a
world θ ~ P(· | Cᵢ).  The Bernoulli variable

    Z = 1  iff  i is the *first* clause of the DNF satisfied by θ

has expectation P(⋁ᵢ Cᵢ) / U: each satisfying world θ is generated via
exactly one (clause, world) pair that counts -- its first satisfied
clause -- with probability P(θ)/U.  Therefore U·mean(Z) is an unbiased
estimator of the confidence, and Z ∈ {0,1} is exactly the [0,1]-valued
random variable the DKLR driver (:mod:`repro.core.confidence.dklr`)
expects.  Note μ_Z = p/U ≥ 1/m (m = clause count), so DKLR's stopping
rule terminates after O(m·ln(1/δ)/ε²) samples in the worst case.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.confidence.dnf import DNF, LineageLike
from repro.core.lineage import Lineage
from repro.core.variables import VariableRegistry
from repro.engine.columnar import HAVE_NUMPY, np
from repro.errors import ConfidenceError

#: Below this sample count the NumPy batch setup outweighs the win.
_VECTOR_MIN_SAMPLES = 64


class KarpLubyEstimator:
    """Sampler for the Karp-Luby Bernoulli variable of a lineage.

    Accepts the shared lineage IR or a legacy DNF; construction simplifies
    (drops inconsistent / zero-probability / subsumed clauses) unless the
    lineage is already simplified, and reads clause probabilities from the
    IR's interned-clause cache.  ``is_trivial`` reports lineages whose
    probability is 0 or 1 outright; callers must check it before sampling.
    """

    def __init__(
        self,
        dnf: LineageLike,
        registry: VariableRegistry,
        rng: Optional[random.Random] = None,
    ):
        self.registry = registry
        self.rng = rng if rng is not None else random.Random(0)
        self.lineage = Lineage.of(dnf, registry).simplified()
        self.clause_probabilities = self.lineage.clause_probabilities()
        self.total_weight = sum(self.clause_probabilities)  # U = Σ pᵢ
        self.variables = sorted(self.lineage.variables())
        self._cumulative = list(itertools.accumulate(self.clause_probabilities))
        self.samples_drawn = 0

    @property
    def dnf(self) -> DNF:
        """The simplified lineage as a DNF (kept for callers that predate
        the IR; the clause objects are shared, not copied)."""
        return DNF(self.lineage.clauses)

    # -- trivial cases ------------------------------------------------------
    @property
    def is_trivial(self) -> bool:
        return self.lineage.is_false or self.lineage.is_true

    @property
    def trivial_probability(self) -> float:
        if self.lineage.is_false:
            return 0.0
        if self.lineage.is_true:
            return 1.0
        raise ConfidenceError("DNF is not trivial")

    # -- sampling -------------------------------------------------------------
    def _sample_clause_index(self) -> int:
        u = self.rng.random() * self.total_weight
        # Linear scan with early exit; clause counts here are query-result
        # duplicate counts, typically small.  Bisect would also work.
        for i, acc in enumerate(self._cumulative):
            if u < acc:
                return i
        return len(self._cumulative) - 1

    def sample(self) -> int:
        """Draw one Bernoulli sample Z (see module docstring)."""
        if self.is_trivial:
            raise ConfidenceError("sampling a trivial DNF; use trivial_probability")
        self.samples_drawn += 1
        index = self._sample_clause_index()
        clause = self.lineage.clauses[index]
        fixed = {var: value for var, value in clause}
        world: Dict[int, int] = {}
        for var in self.variables:
            if var in fixed:
                world[var] = fixed[var]
            else:
                world[var] = self.registry.sample_value(var, self.rng)
        first = self.lineage.first_satisfied_clause(world)
        # ``clause`` is satisfied by construction, so first is not None and
        # first <= index.
        return 1 if first == index else 0

    def estimate(self, samples: int) -> float:
        """Fixed-sample-count estimate U · mean(Z) of the confidence.

        With NumPy available, sampling consumes the clause-probability and
        per-variable distribution *columns* in one vectorized block: all
        clause choices, all world draws, and all first-satisfied-clause
        tests happen array-at-a-time instead of per sample per variable.
        """
        if self.is_trivial:
            return self.trivial_probability
        return self.total_weight * self.sample_hits(samples) / samples

    def sample_hits(self, samples: int, seed: Optional[int] = None) -> int:
        """Integer hit count Σ Z over ``samples`` fresh Bernoulli draws.

        With ``seed`` the draws come from a private ``random.Random(seed)``
        stream instead of this estimator's rng, which is what makes a
        block of samples a pure function of (lineage, seed, count): the
        parallel aconf path hands each main-run block its own seed so any
        worker -- or the serial path -- reproduces the identical count.
        """
        if samples <= 0:
            raise ConfidenceError(f"need a positive sample count, got {samples}")
        rng = self.rng if seed is None else random.Random(seed)
        if HAVE_NUMPY and samples >= _VECTOR_MIN_SAMPLES and self.variables:
            return self._hits_vectorized(samples, rng)
        if seed is None:
            return sum(self.sample() for _ in range(samples))
        # Scalar fallback for the seeded path: route self.sample() through
        # the private stream so seeded counts never touch the session rng.
        saved = self.rng
        self.rng = rng
        try:
            return sum(self.sample() for _ in range(samples))
        finally:
            self.rng = saved

    def _hits_vectorized(self, samples: int, base_rng: random.Random) -> int:
        """NumPy block implementation of :meth:`sample_hits` (statistically
        identical: same estimator, a different deterministic stream seeded
        from ``base_rng``)."""
        rng = np.random.default_rng(base_rng.getrandbits(64))
        self.samples_drawn += samples
        variables = self.variables
        column_of = {var: j for j, var in enumerate(variables)}

        # Sample every variable's column from its marginal distribution.
        worlds = np.empty((samples, len(variables)), dtype=np.int64)
        for j, var in enumerate(variables):
            distribution = self.registry.distribution(var)
            values = np.fromiter(distribution.keys(), dtype=np.int64)
            cumulative = np.cumsum(np.fromiter(distribution.values(), dtype=np.float64))
            draws = np.searchsorted(cumulative, rng.random(samples), side="right")
            worlds[:, j] = values[np.minimum(draws, len(values) - 1)]

        # Choose a clause per sample with probability pᵢ/U and force its
        # atoms into those samples' worlds.
        cumulative_weight = np.cumsum(
            np.fromiter(self.clause_probabilities, dtype=np.float64)
        )
        chosen = np.searchsorted(
            cumulative_weight, rng.random(samples) * self.total_weight, side="right"
        )
        chosen = np.minimum(chosen, len(self.lineage.clauses) - 1)
        for clause_index, clause in enumerate(self.lineage.clauses):
            rows = chosen == clause_index
            if not rows.any():
                continue
            for var, value in clause:
                worlds[rows, column_of[var]] = value

        # First satisfied clause per sample; Z = (first == chosen).
        first = np.full(samples, -1, dtype=np.int64)
        for clause_index, clause in enumerate(self.lineage.clauses):
            satisfied = np.ones(samples, dtype=bool)
            for var, value in clause:
                satisfied &= worlds[:, column_of[var]] == value
            undecided = first < 0
            first[satisfied & undecided] = clause_index
        return int((first == chosen).sum())

    def mean_lower_bound(self) -> float:
        """μ_Z ≥ max pᵢ / U ≥ 1/m: guarantees estimator progress."""
        if not self.clause_probabilities:
            return 0.0
        return max(self.clause_probabilities) / self.total_weight


def karp_luby_confidence(
    dnf: LineageLike,
    registry: VariableRegistry,
    samples: int,
    rng: Optional[random.Random] = None,
) -> float:
    """Convenience wrapper: fixed-budget Karp-Luby estimate of P(dnf)."""
    estimator = KarpLubyEstimator(dnf, registry, rng)
    if estimator.is_trivial:
        return estimator.trivial_probability
    return estimator.estimate(samples)
