"""The Karp-Luby unbiased estimator, adapted to confidence computation.

Section 2.3: "The approximation algorithm used by MayBMS is a combination
of the Karp-Luby unbiased estimator for DNF counting in a modified version
adapted to confidence computation in probabilistic databases, and the
Dagum-Karp-Luby-Ross optimal algorithm for Monte Carlo estimation."

The classical estimator targets P(⋁ᵢ Cᵢ) for events Cᵢ with easily
computable probabilities pᵢ = P(Cᵢ) and easy conditional sampling.  For
confidence computation the Cᵢ are conjunctions of assignments of
independent finite random variables, so both are immediate:

- pᵢ is the product of the atom probabilities;
- sampling a world conditioned on Cᵢ fixes Cᵢ's atoms and samples every
  other variable of the DNF from its marginal distribution.

With U = Σᵢ pᵢ, sample a clause index i with probability pᵢ/U and then a
world θ ~ P(· | Cᵢ).  The Bernoulli variable

    Z = 1  iff  i is the *first* clause of the DNF satisfied by θ

has expectation P(⋁ᵢ Cᵢ) / U: each satisfying world θ is generated via
exactly one (clause, world) pair that counts -- its first satisfied
clause -- with probability P(θ)/U.  Therefore U·mean(Z) is an unbiased
estimator of the confidence, and Z ∈ {0,1} is exactly the [0,1]-valued
random variable the DKLR driver (:mod:`repro.core.confidence.dklr`)
expects.  Note μ_Z = p/U ≥ 1/m (m = clause count), so DKLR's stopping
rule terminates after O(m·ln(1/δ)/ε²) samples in the worst case.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.confidence.dnf import DNF
from repro.core.variables import VariableRegistry
from repro.errors import ConfidenceError


class KarpLubyEstimator:
    """Sampler for the Karp-Luby Bernoulli variable of a lineage DNF.

    Construction normalizes the DNF (drops inconsistent / zero-probability
    clauses).  ``is_trivial`` reports DNFs whose probability is 0 or 1
    outright; callers must check it before sampling.
    """

    def __init__(self, dnf: DNF, registry: VariableRegistry, rng: Optional[random.Random] = None):
        self.registry = registry
        self.rng = rng if rng is not None else random.Random()
        self.dnf = dnf.normalized(registry)
        self.clause_probabilities = self.dnf.clause_probabilities(registry)
        self.total_weight = sum(self.clause_probabilities)  # U = Σ pᵢ
        self.variables = sorted(self.dnf.variables())
        self._cumulative = list(itertools.accumulate(self.clause_probabilities))
        self.samples_drawn = 0

    # -- trivial cases ------------------------------------------------------
    @property
    def is_trivial(self) -> bool:
        return self.dnf.is_false or self.dnf.is_true

    @property
    def trivial_probability(self) -> float:
        if self.dnf.is_false:
            return 0.0
        if self.dnf.is_true:
            return 1.0
        raise ConfidenceError("DNF is not trivial")

    # -- sampling -------------------------------------------------------------
    def _sample_clause_index(self) -> int:
        u = self.rng.random() * self.total_weight
        # Linear scan with early exit; clause counts here are query-result
        # duplicate counts, typically small.  Bisect would also work.
        for i, acc in enumerate(self._cumulative):
            if u < acc:
                return i
        return len(self._cumulative) - 1

    def sample(self) -> int:
        """Draw one Bernoulli sample Z (see module docstring)."""
        if self.is_trivial:
            raise ConfidenceError("sampling a trivial DNF; use trivial_probability")
        self.samples_drawn += 1
        index = self._sample_clause_index()
        clause = self.dnf.clauses[index]
        fixed = {var: value for var, value in clause}
        world: Dict[int, int] = {}
        for var in self.variables:
            if var in fixed:
                world[var] = fixed[var]
            else:
                world[var] = self.registry.sample_value(var, self.rng)
        first = self.dnf.first_satisfied_clause(world)
        # ``clause`` is satisfied by construction, so first is not None and
        # first <= index.
        return 1 if first == index else 0

    def estimate(self, samples: int) -> float:
        """Fixed-sample-count estimate U · mean(Z) of the confidence."""
        if self.is_trivial:
            return self.trivial_probability
        if samples <= 0:
            raise ConfidenceError(f"need a positive sample count, got {samples}")
        hits = sum(self.sample() for _ in range(samples))
        return self.total_weight * hits / samples

    def mean_lower_bound(self) -> float:
        """μ_Z ≥ max pᵢ / U ≥ 1/m: guarantees estimator progress."""
        if not self.clause_probabilities:
            return 0.0
        return max(self.clause_probabilities) / self.total_weight


def karp_luby_confidence(
    dnf: DNF,
    registry: VariableRegistry,
    samples: int,
    rng: Optional[random.Random] = None,
) -> float:
    """Convenience wrapper: fixed-budget Karp-Luby estimate of P(dnf)."""
    estimator = KarpLubyEstimator(dnf, registry, rng)
    if estimator.is_trivial:
        return estimator.trivial_probability
    return estimator.estimate(samples)
