"""The probabilistic layer: MayBMS's primary contribution.

U-relational databases (Section 2.1), the uncertainty-aware query
constructs (Section 2.2), the parsimonious translation of positive
relational algebra (Section 2.3), and the confidence computation engines
(:mod:`repro.core.confidence`).
"""

from repro.core.variables import VariableRegistry, TOP_VARIABLE
from repro.core.conditions import Atom, Condition, TRUE_CONDITION
from repro.core.urelation import URelation
from repro.core.worlds import enumerate_worlds, world_probability
from repro.core.repair_key import repair_key
from repro.core.pick_tuples import pick_tuples

__all__ = [
    "VariableRegistry",
    "TOP_VARIABLE",
    "Atom",
    "Condition",
    "TRUE_CONDITION",
    "URelation",
    "enumerate_worlds",
    "world_probability",
    "repair_key",
    "pick_tuples",
]
