"""Exception hierarchy for the MayBMS reproduction.

All errors raised by the library derive from :class:`MayBMSError`, so a
caller can catch a single exception type at an API boundary.  The hierarchy
mirrors the stages of the system: catalog and storage errors come from the
relational substrate, parse/analysis errors from the SQL front-end, and
semantic errors from the probabilistic layer.
"""

from __future__ import annotations


class MayBMSError(Exception):
    """Base class for all errors raised by this library."""


class EngineError(MayBMSError):
    """Base class for errors raised by the relational engine substrate."""


class TypeMismatchError(EngineError):
    """An expression or comparison was applied to incompatible SQL types."""


class SchemaError(EngineError):
    """A schema is malformed, or a column reference cannot be resolved."""


class DuplicateColumnError(SchemaError):
    """Two columns in one schema share a (qualified) name."""


class UnknownColumnError(SchemaError):
    """A referenced column does not exist in the schema in scope."""


class AmbiguousColumnError(SchemaError):
    """An unqualified column name matches more than one column in scope."""


class CatalogError(EngineError):
    """A catalog operation failed (missing table, duplicate table, ...)."""


class TableNotFoundError(CatalogError):
    """The named table does not exist in the catalog."""


class TableExistsError(CatalogError):
    """A table with that name already exists in the catalog."""


class StorageError(EngineError):
    """A storage-level operation failed (bad tuple id, index violation)."""


class TransactionError(EngineError):
    """Illegal transaction state transition (commit without begin, ...)."""


class LockTimeout(TransactionError):
    """A table-lock (or store-gate) acquisition timed out.

    Subclasses :class:`TransactionError` so existing handlers keep
    working; raised distinctly so callers (and tests) can tell "a writer
    starved behind a long reader" apart from other transaction errors.
    MVCC read statements never hold table locks, so a saturated writer
    seeing this means writer-vs-writer contention, not analytics."""


class SanitizerError(EngineError):
    """The runtime concurrency sanitizer (``REPRO_SANITIZE=1``) detected a
    violation: a lock-order cycle, a lock held across fsync or a pool
    submit, or a pin/shared-memory leak.  Raised eagerly under pytest;
    outside tests violations only increment stats counters."""


class DurabilityError(EngineError):
    """The on-disk log or checkpoint could not be written or read."""


class RecoveryError(DurabilityError):
    """Crash recovery failed (corrupt checkpoint, malformed WAL record)."""


class DegradedError(DurabilityError):
    """The durable store entered read-only **degraded mode** after an
    unrecoverable write failure: ENOSPC (or any I/O error) while
    committing a checkpoint, or repeated WAL append failures that
    survived the bounded retry-with-backoff.  The store stays
    consistent -- the previous checkpoint plus the WAL chain recover
    everything acknowledged -- and reads keep working; writes and
    checkpoints raise this until the store is reopened.  Surfaced as
    ``degraded`` / ``degraded_reason`` in durability stats."""


class FaultInjected(DurabilityError):
    """A :mod:`repro.faults` failpoint fired with the generic ``fault``
    action.  Only ever raised when fault injection is armed (tests and
    torture runs); production paths never construct it."""


class ExpressionError(EngineError):
    """An expression could not be evaluated (bad function, arity, ...)."""


class PlanError(EngineError):
    """A logical plan is malformed or cannot be compiled to physical ops."""


class SqlError(MayBMSError):
    """Base class for SQL front-end errors."""


class LexerError(SqlError):
    """The input text contains a token the lexer does not recognize."""

    def __init__(self, message: str, position: int, line: int, column: int):
        super().__init__(f"{message} at line {line}, column {column}")
        self.position = position
        self.line = line
        self.column = column


class ParseError(SqlError):
    """The token stream does not match the MayBMS SQL grammar."""


class AnalysisError(SqlError):
    """The query is grammatical but semantically invalid."""


class UncertainAggregateError(AnalysisError):
    """A standard SQL aggregate (sum, count, ...) was applied to an
    uncertain relation.  The paper forbids this: the aggregate would have
    exponentially many distinct answers across the possible worlds
    (Section 2.2).  Use ``esum``/``ecount`` or confidence computation."""


class UncertainDistinctError(AnalysisError):
    """``SELECT DISTINCT`` was applied to an uncertain relation; the paper
    only supports duplicate elimination on uncertain data through the
    ``possible`` construct (Section 2.2)."""


class ServingError(MayBMSError):
    """Base class for errors in the client/server serving layer."""


class ProtocolError(ServingError):
    """A wire-protocol message was malformed, oversized, or truncated."""


class ServerBusyError(ServingError):
    """The server refused work because it is over capacity: too many
    concurrent connections, or too many statements in flight
    (:class:`~repro.server.server.MayBMSServer` backpressure caps).  The
    refusal is a clean wire error: a rejected connection is closed right
    after the error is sent; a rejected statement leaves the connection
    -- and its open transaction -- intact, so the client can retry."""


class StatementTimeout(ServingError):
    """The server aborted a statement that ran past the configured
    statement timeout (``REPRO_STATEMENT_TIMEOUT`` /
    ``--statement-timeout``).  The statement's effects are rolled back
    (statement-level atomicity) and the session -- including an open
    explicit transaction -- stays intact, so the client can retry or
    roll back; over the wire it arrives as a clean error with this
    class name."""


class ServerError(ServingError):
    """A statement failed server-side; carries the original error type.

    Raised by the client when a response reports ``ok: false``.  The
    server-side exception class name is in :attr:`error_type` so callers
    can distinguish, say, an :class:`AnalysisError` from a
    :class:`TransactionError` without sharing exception identity across
    the wire."""

    def __init__(self, error_type: str, message: str):
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type
        self.server_message = message


class ProbabilisticError(MayBMSError):
    """Base class for errors in the probabilistic layer."""


class VariableError(ProbabilisticError):
    """A random variable is undefined or its distribution is invalid."""


class InvalidDistributionError(VariableError):
    """Probabilities are negative, or do not sum to one."""


class ConditionError(ProbabilisticError):
    """A condition (conjunction of atoms) is malformed."""


class RepairKeyError(ProbabilisticError):
    """``repair key`` failed: bad weights or an all-zero weight group."""


class PickTuplesError(ProbabilisticError):
    """``pick tuples`` failed: probability outside [0, 1]."""


class ConfidenceError(ProbabilisticError):
    """Confidence computation failed."""


class NotTupleIndependentError(ConfidenceError):
    """A SPROUT plan was requested for data that is not tuple-independent."""


class UnsafeQueryError(ConfidenceError):
    """A SPROUT safe plan was requested for a non-hierarchical query."""


class UnsafeLineageError(UnsafeQueryError):
    """SPROUT-style safe evaluation was attempted on a lineage that is not
    hierarchical (some connected clause component has no root variable).
    The dispatcher catches this and falls back to the exact engine."""


class CostBudgetExceededError(ConfidenceError):
    """The exact engine exceeded its subproblem budget.  The dispatcher
    catches this and falls back to Monte Carlo estimation."""
