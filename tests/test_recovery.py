"""End-to-end durability tests through the MayBMS facade: close/reopen and
kill/reopen round trips, differential comparison of recovered vs. live
answers (certain and probabilistic), torn-tail truncation, CHECKPOINT as a
SQL statement, and the REPRO_DB_PATH environment knob."""

import glob
import os

import pytest

from repro import MayBMS
from repro.errors import DurabilityError, TransactionError

CONF_QUERY = "select k, v, conf() as p from maybe group by k, v order by k, v"


def crash(db):
    """Simulate a kill: drop the session without close() -- no final
    checkpoint, no flush beyond what commits already fsynced.  Releasing
    the file handles mirrors what process death does to the directory
    flock (single-writer exclusion)."""
    db.storage.close()
    return None


def manifests(path):
    """Checkpoint manifest files present in a database directory."""
    return sorted(glob.glob(os.path.join(path, "checkpoint.*.manifest")))


def segment_files(path):
    return sorted(glob.glob(os.path.join(path, "seg-*.seg")))


def populate(db):
    db.execute("create table r (k integer, v text, w float)")
    db.execute(
        "insert into r values (1, 'a', 1.0), (1, 'b', 3.0), "
        "(2, 'c', 2.0), (2, 'd', 2.0), (3, 'e', 5.0)"
    )
    db.execute(
        "create table maybe as select k, v from (repair key k in r weight by w) x"
    )
    db.execute("update r set w = w + 1 where k = 2")
    db.execute("delete from r where v = 'e'")


class TestCloseReopen:
    def test_bit_identical_answers_after_reopen(self, tmp_path):
        path = str(tmp_path / "db")
        db = MayBMS(path=path)
        populate(db)
        live_select = db.query("select k, v, w from r order by k, v").rows
        live_conf = db.query(CONF_QUERY).rows
        db.close()

        reopened = MayBMS(path=path)
        assert reopened.query("select k, v, w from r order by k, v").rows == live_select
        # Bit-identical, not approx: the registry's distributions round-trip
        # exactly through the checkpoint/WAL (repr-precision JSON floats).
        assert reopened.query(CONF_QUERY).rows == live_conf
        reopened.close()

    def test_context_manager_closes(self, tmp_path):
        path = str(tmp_path / "db")
        with MayBMS(path=path) as db:
            populate(db)
            expected = db.query(CONF_QUERY).rows
        with MayBMS(path=path) as again:
            assert again.query(CONF_QUERY).rows == expected

    def test_reopened_session_continues_writing(self, tmp_path):
        path = str(tmp_path / "db")
        with MayBMS(path=path) as db:
            db.execute("create table t (x integer)")
            db.execute("insert into t values (1)")
        with MayBMS(path=path) as db:
            db.execute("insert into t values (2)")
        with MayBMS(path=path) as db:
            assert sorted(db.query("select x from t").rows) == [(1,), (2,)]


class TestKillAfterCommit:
    """A 'killed' session never calls close(): no final checkpoint is
    written, so recovery runs purely off the WAL tail."""

    def test_wal_only_recovery(self, tmp_path):
        path = str(tmp_path / "db")
        db = MayBMS(path=path)
        populate(db)
        live_select = db.query("select k, v, w from r order by k, v").rows
        live_conf = db.query(CONF_QUERY).rows
        db = crash(db)  # crash: no close, no checkpoint

        reopened = MayBMS(path=path)
        assert reopened.query("select k, v, w from r order by k, v").rows == live_select
        assert reopened.query(CONF_QUERY).rows == live_conf

    def test_recovery_restores_variable_registry(self, tmp_path):
        path = str(tmp_path / "db")
        db = MayBMS(path=path)
        populate(db)
        variables = {
            var: db.registry.distribution(var) for var in db.registry.variables()
        }
        names = {var: db.registry.name(var) for var in variables}
        db = crash(db)

        reopened = MayBMS(path=path)
        for var, dist in variables.items():
            assert reopened.registry.distribution(var) == dist
            assert reopened.registry.name(var) == names[var]
        # Fresh variables after recovery must not collide with restored ids.
        new_var = reopened.registry.fresh({0: 1.0})
        assert new_var not in variables

    def test_torn_wal_tail_recovers_prefix(self, tmp_path):
        path = str(tmp_path / "db")
        db = MayBMS(path=path)
        db.execute("create table t (x integer)")
        db.execute("insert into t values (1)")
        db.wal.flush()
        db = crash(db)

        (wal_file,) = glob.glob(os.path.join(path, "wal.*.log"))
        with open(wal_file, "ab") as handle:
            handle.write(b"\xde\xad partial frame")

        reopened = MayBMS(path=path)
        assert reopened.query("select x from t").rows == [(1,)]

    def test_corrupt_mid_log_truncates_from_there(self, tmp_path):
        path = str(tmp_path / "db")
        db = MayBMS(path=path)
        db.execute("create table t (x integer)")
        db.execute("insert into t values (1)")
        size_before = None
        (wal_file,) = glob.glob(os.path.join(path, "wal.*.log"))
        size_before = os.path.getsize(wal_file)
        db.execute("insert into t values (2)")
        db = crash(db)

        # Corrupt the first byte written after the first insert's commit:
        # the second insert's unit fails its checksum and is dropped.
        with open(wal_file, "r+b") as handle:
            handle.seek(size_before)
            byte = handle.read(1)
            handle.seek(size_before)
            handle.write(bytes([byte[0] ^ 0xFF]))

        reopened = MayBMS(path=path)
        assert reopened.query("select x from t").rows == [(1,)]


class TestWalTailHygiene:
    """Recovery must truncate garbage tail bytes before the reopened
    session appends: commits written after garbage would be unreadable at
    the next recovery, and a valid-but-uncommitted tail would be
    resurrected by a later commit marker."""

    def test_commits_after_corrupt_tail_survive_second_recovery(self, tmp_path):
        path = str(tmp_path / "db")
        db = MayBMS(path=path)
        db.execute("create table t (x integer)")
        db.execute("insert into t values (1)")
        db = crash(db)
        (wal_file,) = glob.glob(os.path.join(path, "wal.*.log"))
        with open(wal_file, "ab") as handle:
            handle.write(b"\xba\xad torn tail")

        second = MayBMS(path=path)
        second.execute("insert into t values (2)")  # appended post-truncation
        second = crash(second)

        third = MayBMS(path=path)
        assert sorted(third.query("select x from t").rows) == [(1,), (2,)]

    def test_uncommitted_tail_never_resurrected(self, tmp_path):
        from repro.engine.durability import encode_frame

        path = str(tmp_path / "db")
        db = MayBMS(path=path)
        db.execute("create table t (x integer)")
        db.execute("insert into t values (1)")
        db = crash(db)
        # A crash mid-commit: valid frames, but no commit marker.
        (wal_file,) = glob.glob(os.path.join(path, "wal.*.log"))
        with open(wal_file, "ab") as handle:
            handle.write(encode_frame(("begin",)))
            handle.write(encode_frame(("insert", "t", 99, [99])))

        second = MayBMS(path=path)
        assert second.query("select x from t").rows == [(1,)]
        # This commit's marker must not legitimize the dangling tail.
        second.execute("insert into t values (2)")
        second = crash(second)

        third = MayBMS(path=path)
        assert sorted(third.query("select x from t").rows) == [(1,), (2,)]


class TestSingleWriter:
    def test_second_live_session_rejected(self, tmp_path):
        import fcntl  # noqa: F401 -- flock-based exclusion is POSIX-only

        from repro.errors import DurabilityError

        path = str(tmp_path / "db")
        db = MayBMS(path=path)
        with pytest.raises(DurabilityError, match="locked by another"):
            MayBMS(path=path)
        db.close()
        reopened = MayBMS(path=path)  # released lock is re-acquirable
        reopened.close()


class TestCheckpointStatement:
    def test_checkpoint_sql_writes_snapshot_and_rotates(self, tmp_path):
        path = str(tmp_path / "db")
        db = MayBMS(path=path)
        populate(db)
        expected = db.query(CONF_QUERY).rows
        first_wal = db.storage.wal_path
        db.execute("checkpoint")
        assert manifests(path)  # binary-columnar manifest, not checkpoint.json
        assert segment_files(path)
        assert not os.path.exists(first_wal)
        db = crash(db)  # crash right after checkpoint: WAL tail is empty

        reopened = MayBMS(path=path)
        assert reopened.query(CONF_QUERY).rows == expected

    def test_checkpoint_plus_tail(self, tmp_path):
        path = str(tmp_path / "db")
        db = MayBMS(path=path)
        populate(db)
        db.execute("checkpoint")
        db.execute("insert into r values (9, 'z', 1.0)")
        expected = db.query("select k, v from r order by k, v").rows
        db = crash(db)

        reopened = MayBMS(path=path)
        assert reopened.query("select k, v from r order by k, v").rows == expected

    def test_checkpoint_noop_in_memory(self):
        db = MayBMS()
        assert db.checkpoint() is False
        db.execute("checkpoint")  # must not raise

    def test_checkpoint_inside_transaction_rejected(self, tmp_path):
        db = MayBMS(path=str(tmp_path / "db"))
        db.begin()
        with pytest.raises(TransactionError):
            db.checkpoint()
        db.rollback()
        db.close()

    def test_auto_checkpoint_after_commit_threshold(self, tmp_path):
        path = str(tmp_path / "db")
        db = MayBMS(path=path, checkpoint_every=3)
        db.execute("create table t (x integer)")
        db.execute("insert into t values (1)")
        assert not manifests(path)
        db.execute("insert into t values (2)")  # third commit -> checkpoint
        assert manifests(path)
        assert db.storage.commits_since_checkpoint == 0
        db = crash(db)
        reopened = MayBMS(path=path)
        assert sorted(reopened.query("select x from t").rows) == [(1,), (2,)]


class TestTransactionsAndDurability:
    def test_rolled_back_sql_dml_not_recovered(self, tmp_path):
        path = str(tmp_path / "db")
        db = MayBMS(path=path)
        db.execute("create table t (x integer)")
        db.execute("insert into t values (1)")
        db.execute("begin")
        db.execute("insert into t values (99)")
        db.execute("rollback")
        assert db.query("select x from t").rows == [(1,)]  # undone live
        db = crash(db)

        reopened = MayBMS(path=path)
        assert reopened.query("select x from t").rows == [(1,)]

    def test_committed_transaction_durable_as_unit(self, tmp_path):
        path = str(tmp_path / "db")
        db = MayBMS(path=path)
        db.execute("create table t (x integer)")
        db.execute("begin")
        db.execute("insert into t values (1)")
        db.execute("insert into t values (2)")
        db.execute("commit")
        db = crash(db)
        reopened = MayBMS(path=path)
        assert sorted(reopened.query("select x from t").rows) == [(1,), (2,)]

    def test_duplicate_rows_replay_by_tid(self, tmp_path):
        """Value-matched replay diverges on duplicate rows; tid-addressed
        redo records keep the recovered tid assignment identical."""
        path = str(tmp_path / "db")
        db = MayBMS(path=path)
        db.execute("create table t (x integer)")
        db.execute("insert into t values (7), (7), (7)")
        db.execute("delete from t where x = 7")
        db.execute("insert into t values (7), (8)")
        live = list(db.catalog.table("t").items())
        db = crash(db)

        reopened = MayBMS(path=path)
        assert list(reopened.catalog.table("t").items()) == live


class TestEnvironmentKnob:
    def test_repro_db_path(self, tmp_path, monkeypatch):
        path = str(tmp_path / "envdb")
        monkeypatch.setenv("REPRO_DB_PATH", path)
        db = MayBMS()
        assert db.is_durable
        db.execute("create table t (x integer)")
        db.execute("insert into t values (5)")
        db.close()

        again = MayBMS()
        assert again.query("select x from t").rows == [(5,)]
        again.close()

    def test_recover_api_rejected_on_durable_sessions(self, tmp_path, monkeypatch):
        """recover() replays the in-memory WAL, which durable sessions
        truncate on flush -- it must raise, not hand back an empty db."""
        from repro.errors import DurabilityError

        monkeypatch.setenv("REPRO_DB_PATH", str(tmp_path / "envdb2"))
        db = MayBMS()
        db.execute("create table t (x integer)")
        with pytest.raises(DurabilityError, match="reopen MayBMS"):
            db.recover()
        db.close()


class TestCommitFailureAtomicity:
    def test_statement_after_close_leaves_no_partial_state(self, tmp_path):
        """A commit-time durability failure must roll the statement back in
        memory and must not leave its redo unit buffered for a later
        flush to resurrect."""
        from repro.errors import DurabilityError

        path = str(tmp_path / "db")
        db = MayBMS(path=path)
        db.execute("create table t (x integer)")
        db.execute("insert into t values (1)")
        db.storage.close()  # storage gone; next commit's flush fails
        with pytest.raises(DurabilityError):
            db.execute("insert into t values (2)")
        assert db.query("select x from t").rows == [(1,)]  # rolled back
        assert len(db.wal) == 0  # durable WAL drops flushed/failed units

        reopened = MayBMS(path=path)
        assert reopened.query("select x from t").rows == [(1,)]
        reopened.close()


class TestCloseCost:
    def test_read_only_close_skips_snapshot(self, tmp_path):
        path = str(tmp_path / "db")
        with MayBMS(path=path) as db:
            populate(db)

        def signature():
            return [
                (f, os.path.getmtime(f), os.path.getsize(f))
                for f in manifests(path) + segment_files(path)
            ]

        before = signature()
        assert before  # close() wrote a checkpoint

        with MayBMS(path=path) as reader:
            reader.query(CONF_QUERY)  # reads only
        assert signature() == before

        with MayBMS(path=path) as writer:
            writer.execute("insert into r values (8, 'y', 1.0)")
        assert signature() != before


class TestIncrementalCheckpointFacade:
    """End-to-end incremental-checkpoint behaviour through MayBMS."""

    def _many_tables(self, db, n=4, rows=6):
        for i in range(n):
            db.execute(f"create table t{i} (k integer, w float)")
            values = ", ".join(f"({j}, {j}.5)" for j in range(rows))
            db.execute(f"insert into t{i} values {values}")

    def test_one_dirty_table_writes_one_segment(self, tmp_path):
        path = str(tmp_path / "db")
        db = MayBMS(path=path, checkpoint_every=0)
        self._many_tables(db, n=4)
        db.checkpoint()
        full = db.durability_stats()
        assert full["tables_snapshotted"] == 4

        db.execute("insert into t2 values (99, 9.5)")
        db.checkpoint()
        stats = db.durability_stats()
        assert stats["tables_snapshotted"] == 1
        assert stats["segments_reused"] == 3
        assert stats["checkpoint_bytes"] < full["checkpoint_bytes"]
        db.close()

    def test_counters_survive_recovery(self, tmp_path):
        path = str(tmp_path / "db")
        with MayBMS(path=path) as db:
            self._many_tables(db, n=2)
        reopened = MayBMS(path=path)
        stats = reopened.durability_stats()
        assert stats["recovery_ms"] > 0
        assert reopened.recovery_stats["checkpoint_format"] == "columnar"
        reopened.close()

    def test_corrupt_segment_falls_back_to_previous_epoch(self, tmp_path):
        import json

        path = str(tmp_path / "db")
        db = MayBMS(path=path, checkpoint_every=0)
        self._many_tables(db, n=2)
        db.checkpoint()
        db.execute("insert into t0 values (77, 7.5)")
        db.checkpoint()
        db.execute("insert into t1 values (88, 8.5)")
        live = {
            name: db.query(f"select k, w from {name} order by k").rows
            for name in ("t0", "t1")
        }
        db = crash(db)

        newest = manifests(path)[-1]
        with open(newest, "rb") as handle:
            newest_doc = json.loads(handle.read())["manifest"]
        with open(manifests(path)[0], "rb") as handle:
            prev_doc = json.loads(handle.read())["manifest"]
        prev_refs = {s for _, s in prev_doc["tables"]}
        (unique,) = [
            s for _, s in newest_doc["tables"] if s not in prev_refs
        ]
        with open(os.path.join(path, unique), "r+b") as handle:
            handle.seek(50)
            byte = handle.read(1)
            handle.seek(50)
            handle.write(bytes([byte[0] ^ 0xFF]))

        reopened = MayBMS(path=path)
        assert reopened.recovery_stats["fallbacks"] == 1
        for name, rows in live.items():
            assert reopened.query(f"select k, w from {name} order by k").rows == rows
        reopened.close()

    def test_kill_during_checkpoint_recovers_bit_identically(self, tmp_path):
        """Simulated kill -9 between segment writes and the manifest
        rename: the previous epoch plus the WAL chain reproduce every
        committed statement exactly."""
        path = str(tmp_path / "db")
        db = MayBMS(path=path, checkpoint_every=0)
        populate(db)
        db.checkpoint()
        db.execute("insert into r values (42, 'q', 2.0)")
        live_select = db.query("select k, v, w from r order by k, v").rows
        live_conf = db.query(CONF_QUERY).rows

        # Run phase 1 (gate capture + WAL rotation), write the segments,
        # then die before the manifest rename -- the widest crash window.
        capture = db.storage.prepare_checkpoint(db.catalog, db.registry)
        original = db.storage._write_atomically
        calls = {"n": 0}

        def dies_at_manifest(target, data, fsync_dir=True, site=None):
            if target.endswith(".manifest"):
                raise OSError("simulated power loss at manifest rename")
            return original(target, data, fsync_dir, site=site)

        db.storage._write_atomically = dies_at_manifest
        with pytest.raises(DurabilityError):
            db.storage.commit_checkpoint(capture)
        db.storage._write_atomically = original
        # The failed commit flips the store read-only; a reopen recovers.
        assert db.storage.degraded
        db = crash(db)

        reopened = MayBMS(path=path)
        assert reopened.query("select k, v, w from r order by k, v").rows == live_select
        assert reopened.query(CONF_QUERY).rows == live_conf
        # And the store keeps working: the next checkpoint completes.
        reopened.execute("insert into r values (43, 'r', 1.0)")
        reopened.checkpoint()
        reopened.close()
        del calls


class TestLegacyFormatMigration:
    def test_legacy_json_store_opens_and_migrates(self, tmp_path, monkeypatch):
        path = str(tmp_path / "db")
        monkeypatch.setenv("REPRO_SNAPSHOT_FORMAT", "json")
        db = MayBMS(path=path, checkpoint_every=0)
        populate(db)
        db.checkpoint()
        db.execute("insert into r values (7, 'x', 1.5)")  # WAL tail
        live_select = db.query("select k, v, w from r order by k, v").rows
        live_conf = db.query(CONF_QUERY).rows
        db = crash(db)
        assert os.path.exists(os.path.join(path, "checkpoint.json"))
        assert not manifests(path)
        monkeypatch.delenv("REPRO_SNAPSHOT_FORMAT")

        reopened = MayBMS(path=path, checkpoint_every=0)
        assert reopened.recovery_stats["checkpoint_format"] == "json"
        assert reopened.query("select k, v, w from r order by k, v").rows == live_select
        assert reopened.query(CONF_QUERY).rows == live_conf

        # The next checkpoint migrates to the columnar format; the legacy
        # snapshot sticks around one epoch as the fallback, then is swept.
        reopened.checkpoint()
        assert manifests(path)
        assert os.path.exists(os.path.join(path, "checkpoint.json"))
        reopened.checkpoint()
        assert not os.path.exists(os.path.join(path, "checkpoint.json"))
        reopened = crash(reopened)

        final = MayBMS(path=path)
        assert final.recovery_stats["checkpoint_format"] == "columnar"
        assert final.query("select k, v, w from r order by k, v").rows == live_select
        assert final.query(CONF_QUERY).rows == live_conf
        final.close()

    def test_json_format_knob_still_writes_legacy(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SNAPSHOT_FORMAT", "json")
        path = str(tmp_path / "db")
        with MayBMS(path=path) as db:
            db.execute("create table t (x integer)")
            db.execute("insert into t values (1)")
        assert os.path.exists(os.path.join(path, "checkpoint.json"))
        assert not segment_files(path)
        with MayBMS(path=path) as again:
            assert again.query("select x from t").rows == [(1,)]

    def test_json_escape_hatch_supersedes_columnar_manifests(
        self, tmp_path, monkeypatch
    ):
        """Switching an existing columnar store back to the JSON format
        must not leave a stale manifest behind that every future recovery
        would prefer over the fresher checkpoint.json (pinning the WAL
        chain forever)."""
        path = str(tmp_path / "db")
        with MayBMS(path=path) as db:  # close() checkpoints in columnar
            db.execute("create table t (x integer)")
            db.execute("insert into t values (1)")
        assert manifests(path)

        monkeypatch.setenv("REPRO_SNAPSHOT_FORMAT", "json")
        with MayBMS(path=path) as db:
            db.execute("insert into t values (2)")
        assert os.path.exists(os.path.join(path, "checkpoint.json"))
        assert not manifests(path)  # superseded manifests swept
        assert not segment_files(path)

        reopened = MayBMS(path=path)
        assert reopened.recovery_stats["checkpoint_format"] == "json"
        assert sorted(reopened.query("select x from t").rows) == [(1,), (2,)]
        reopened.close()
