"""Runtime concurrency sanitizer tests.

The unit tests drive a standalone :class:`ConcurrencySanitizer` (never the
process singleton, so they cannot pollute the autouse ``_sanitizer_guard``
teardown).  The integration tests flip ``REPRO_SANITIZE=1`` for real engine
objects and reset the singleton afterwards.
"""

import threading

import pytest

from repro.db import MayBMS
from repro.engine.sanitizer import (
    ConcurrencySanitizer,
    SanitizedLock,
    get_sanitizer,
    reset_sanitizer,
    wrap_lock,
)
from repro.errors import SanitizerError


@pytest.fixture
def san():
    return ConcurrencySanitizer()


# -- lock-order cycle detection ------------------------------------------------


class TestCycleDetection:
    def test_inverted_two_lock_order_raises(self, san):
        """Two locks taken in deliberately inverted order: A->B then B->A."""
        lock_a = SanitizedLock("A", threading.Lock(), san)
        lock_b = SanitizedLock("B", threading.Lock(), san)
        with lock_a:
            with lock_b:
                pass
        with lock_b:
            with pytest.raises(SanitizerError, match="lock-order cycle"):
                lock_a.acquire()
            # the failed acquire rolled itself back: B is still cleanly held
        assert san.stats()["sanitizer_cycles"] == 1
        assert san.stats()["sanitizer_lock_nodes"] == 2

    def test_transitive_cycle_through_third_lock(self, san):
        # A->B and B->C observed; C->A closes a 3-cycle no pairwise check sees.
        san.note_acquired("A")
        san.note_acquired("B")
        san.note_released("B")
        san.note_released("A")
        san.note_acquired("B")
        san.note_acquired("C")
        san.note_released("C")
        san.note_released("B")
        san.note_acquired("C")
        message = san.note_acquired("A")
        assert message is not None and "C" in message and "A" in message

    def test_consistent_order_is_clean(self, san):
        for _ in range(3):
            san.note_acquired("A")
            san.note_acquired("B")
            san.note_released("B")
            san.note_released("A")
        assert san.note_acquired("A") is None
        assert san.note_acquired("B") is None
        san.note_released("B")
        san.note_released("A")
        assert san.stats()["sanitizer_cycles"] == 0

    def test_shared_holds_do_not_create_edges(self, san):
        # Writers hold the store gate *shared* while taking exclusive table
        # locks; a checkpoint takes the gate *exclusive* with no table locks.
        # Shared holds must not graph, or this legal pattern looks cyclic.
        san.note_acquired("lockmgr:__store_gate__", mode="shared")
        assert san.note_acquired("lockmgr:<table>") is None
        san.note_released("lockmgr:<table>")
        san.note_released("lockmgr:__store_gate__")
        san.note_acquired("lockmgr:<table>")
        assert san.note_acquired("lockmgr:__store_gate__", mode="shared") is None
        san.note_released("lockmgr:__store_gate__")
        san.note_released("lockmgr:<table>")
        assert san.stats()["sanitizer_cycles"] == 0

    def test_reentrant_acquire_is_not_an_edge(self, san):
        lock = SanitizedLock("R", threading.RLock(), san)
        with lock:
            with lock:
                pass
        assert san.stats()["sanitizer_cycles"] == 0

    def test_foreign_ident_release(self, san):
        # LockManager grants can be released by a different thread (commit
        # worker): balances are keyed by the owning ident, not the caller.
        san.note_acquired("lockmgr:<table>", ident=4242)
        san.note_released("lockmgr:<table>", ident=4242)
        san.note_acquired("lockmgr:<table>", ident=4242)
        san.note_released("lockmgr:<table>", ident=4242)
        san.assert_clean()


# -- blocking-region guards ----------------------------------------------------


class TestBlockingGuards:
    def test_fsync_under_ordinary_lock_flags(self, san):
        san.note_acquired("SnapshotManager._mutex")
        message = san.blocking("fsync")
        assert message is not None and "SnapshotManager._mutex" in message
        assert san.stats()["sanitizer_fsync_violations"] == 1

    def test_fsync_allowlist(self, san):
        san.note_acquired("DurabilityManager._file_mutex")
        san.note_acquired("DurabilityManager._checkpoint_lock")
        assert san.blocking("fsync") is None

    def test_fsync_under_shared_gate_allowed_exclusive_flagged(self, san):
        san.note_acquired("lockmgr:__store_gate__", mode="shared")
        assert san.blocking("fsync") is None
        san.note_released("lockmgr:__store_gate__")
        san.note_acquired("lockmgr:__store_gate__", mode="exclusive")
        assert san.blocking("fsync") is not None

    def test_pool_submit_under_logical_locks_allowed(self, san):
        san.note_acquired("lockmgr:<table>", mode="shared")
        assert san.blocking("pool-submit") is None
        san.note_acquired("ParallelExecutionPool._mutex")
        message = san.blocking("pool-submit")
        assert message is not None and "ParallelExecutionPool._mutex" in message

    def test_waiver_is_scoped_and_thread_local(self, san):
        san.note_acquired("SnapshotManager._mutex")
        with san.allowed("fsync"):
            assert san.blocking("fsync") is None
            # other kinds are still checked
            assert san.blocking("pool-submit") is not None
        assert san.blocking("fsync") is not None

        seen = []
        thread = threading.Thread(
            target=lambda: seen.append(san.blocking("fsync"))
        )
        with san.allowed("fsync"):
            thread.start()
            thread.join()
        # the other thread holds nothing, so clean -- but more importantly
        # the waiver never leaked to it (no KeyError/shared state)
        assert seen == [None]


# -- resource balances ---------------------------------------------------------


class TestBalances:
    def test_pin_leak_fails_assert_clean(self, san):
        san.note_pin()
        san.note_pin()
        san.note_unpin()
        with pytest.raises(SanitizerError, match="pinned snapshot"):
            san.assert_clean()
        # assert_clean resets the balance so the next check starts clean
        san.assert_clean()

    def test_unpin_underflow_is_a_violation(self, san):
        san.note_unpin()
        with pytest.raises(SanitizerError, match="without matching pin"):
            san.assert_clean()

    def test_shm_leak_fails_assert_clean(self, san):
        san.note_shm_created("psm_test_a")
        san.note_shm_created("psm_test_b")
        san.note_shm_unlinked("psm_test_a")
        with pytest.raises(SanitizerError, match="psm_test_b"):
            san.assert_clean()
        san.assert_clean()

    def test_balanced_usage_is_clean(self, san):
        san.note_pin(3)
        san.note_unpin(3)
        san.note_shm_created("psm_x")
        san.note_shm_unlinked("psm_x")
        san.assert_clean()
        assert san.stats()["sanitizer_violations_total"] == 0


# -- condition wrapping --------------------------------------------------------


class TestConditionWrapping:
    def test_wait_observed_as_release_and_reacquire(self, san):
        backing = SanitizedLock("cond", threading.Lock(), san, raise_inline=False)
        cond = threading.Condition(backing)
        released_during_wait = []

        def waker():
            with cond:
                # if wait() had not released, this acquire would deadlock;
                # record what the sanitizer thinks the waiter holds
                released_during_wait.append(san.stats()["sanitizer_lock_nodes"])
                cond.notify_all()

        with cond:
            threading.Thread(target=waker).start()
            assert cond.wait(timeout=5.0)
        assert released_during_wait  # the waker ran while we waited
        san.assert_clean()


# -- enablement plumbing -------------------------------------------------------


@pytest.fixture
def sanitized_env(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    reset_sanitizer()
    yield
    reset_sanitizer()


class TestEnablement:
    def test_disabled_returns_bare_primitives(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        reset_sanitizer()
        assert get_sanitizer() is None
        assert isinstance(wrap_lock("X"), type(threading.Lock()))

    def test_enabled_wraps_and_singleton_is_shared(self, sanitized_env):
        lock = wrap_lock("X")
        assert isinstance(lock, SanitizedLock)
        assert get_sanitizer() is get_sanitizer()

    def test_engine_end_to_end_clean_under_sanitizer(self, sanitized_env, tmp_path):
        """A durable store with MVCC reads, parallel execution, and a
        checkpoint runs clean: no cycles, no blocking violations, balanced
        pins and shared-memory segments."""
        db = MayBMS(
            path=str(tmp_path / "store"),
            seed=7,
            parallel_workers=2,
            parallel_min_rows=0,
        )
        try:
            assert isinstance(db._session_mutex, SanitizedLock)
            values = ", ".join(
                f"({g}, {k}, {1 + (g + k) % 3})" for g in range(4) for k in range(8)
            )
            db.execute_script(
                "create table t (g integer, k integer, w float);"
                f"insert into t values {values}"
            )
            rows = db.query(
                "select g, conf() as c from (repair key g, k in t weight by w) r"
                " group by g"
            ).rows
            assert len(rows) == 4
            db.checkpoint()
            stats = db.durability_stats()
            assert stats["sanitizer_violations_total"] == 0
            assert stats["sanitizer_pins_active"] == 0
            assert stats["sanitizer_shm_active"] == 0
            assert stats["sanitizer_lock_nodes"] > 0
            assert db.sanitizer_stats() == get_sanitizer().stats()
            get_sanitizer().assert_clean()
        finally:
            db.close()

    def test_sanitizer_group_served_over_the_wire(self, sanitized_env, tmp_path):
        from repro.client import Client
        from repro.server import MayBMSServer

        server = MayBMSServer(path=str(tmp_path / "store")).start()
        try:
            with Client("127.0.0.1", server.port) as client:
                client.execute("create table t (a integer, p float)")
                client.execute("insert into t values (1, 0.5), (2, 0.9)")
                groups = client.server_stats()
        finally:
            server.close()
        san = groups["sanitizer"]
        assert san["sanitizer_violations_total"] == 0
        assert san["sanitizer_pins_active"] == 0
        assert san["sanitizer_lock_nodes"] > 0

    def test_sanitizer_stats_none_when_disabled(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        reset_sanitizer()
        db = MayBMS(seed=3)
        try:
            assert db.sanitizer_stats() is None
            assert db.durability_stats() is None  # in-memory session
        finally:
            db.close()
