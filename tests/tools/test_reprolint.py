"""Fixture tests for the reprolint rule catalog (R001..R006).

Each rule gets at least one positive fixture (code shaped like the real
violation the rule was written for -- these fail the lint before the
corresponding fix/suppression) and a negative fixture (the fixed shape).
"""

import json
import os
import subprocess
import sys
import textwrap

import pytest

from tools.reprolint import all_rules, lint_paths, lint_source, load_manifest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def lint(source, codes, path="<fixture>", manifest=None):
    rules = {c: r for c, r in all_rules().items() if c in codes}
    return lint_source(
        textwrap.dedent(source),
        path=path,
        rules=rules,
        manifest=manifest if manifest is not None else {"ranks": {}},
    )


def codes_of(violations):
    return [v.code for v in violations]


# -- R001: paired lock release -------------------------------------------------


def test_r001_flags_acquire_without_release_on_all_paths():
    # The shape of the original group-commit leader: release mid-body,
    # re-acquire in a finally -- the acquire has no paired release.
    found = lint(
        """
        def leader(self):
            cond = self._gc_cond
            with cond:
                cond.release()
                try:
                    flush()
                finally:
                    cond.acquire()
        """,
        {"R001"},
    )
    assert codes_of(found) == ["R001"]


def test_r001_flags_release_only_in_except_handler():
    # Release on the error path only: the success path leaks the lock
    # (the two-phase checkpoint handoff -- needs an explicit suppression).
    found = lint(
        """
        def prepare(self):
            self._checkpoint_lock.acquire()
            try:
                capture()
            except BaseException:
                self._checkpoint_lock.release()
                raise
        """,
        {"R001"},
    )
    assert codes_of(found) == ["R001"]


def test_r001_accepts_release_in_finally():
    found = lint(
        """
        def slot(self):
            if not self._statement_gate.acquire(blocking=False):
                raise Busy()
            try:
                serve()
            finally:
                self._statement_gate.release()
        """,
        {"R001"},
    )
    assert found == []


def test_r001_accepts_with_statement():
    found = lint(
        """
        def work(self):
            with self._mutex:
                mutate()
        """,
        {"R001"},
    )
    assert found == []


def test_r001_inline_suppression():
    found = lint(
        """
        def reacquire(cond):
            cond.acquire()  # reprolint: disable=R001 -- scoped-release pair
        """,
        {"R001"},
    )
    assert found == []


def test_r001_ignores_non_lock_receivers():
    found = lint(
        """
        def work(self):
            self.resource.acquire()
        """,
        {"R001"},
    )
    assert found == []


# -- R002: lock hierarchy ------------------------------------------------------

_R002_MANIFEST = {"ranks": {"_outer_lock": 10, "_inner_lock": 20}}


def test_r002_flags_rank_inversion():
    found = lint(
        """
        def forwards(self):
            with self._outer_lock:
                with self._inner_lock:
                    pass

        def backwards(self):
            with self._inner_lock:
                with self._outer_lock:
                    pass
        """,
        {"R002"},
        path="fixtures/engine/bad.py",
        manifest=_R002_MANIFEST,
    )
    assert any("rank" in v.message for v in found)
    # the two opposite edges also form a cycle
    assert any("cycle" in v.message for v in found)


def test_r002_accepts_manifest_order():
    found = lint(
        """
        def forwards(self):
            with self._outer_lock:
                with self._inner_lock:
                    pass
        """,
        {"R002"},
        path="fixtures/engine/good.py",
        manifest=_R002_MANIFEST,
    )
    assert found == []


def test_r002_flags_unknown_lock_node():
    found = lint(
        """
        def work(self):
            with self._mystery_lock:
                pass
        """,
        {"R002"},
        path="fixtures/engine/unknown.py",
        manifest=_R002_MANIFEST,
    )
    assert len(found) == 1 and "manifest" in found[0].message


def test_r002_scoped_release_wrapper_removes_hold():
    # with _condition_released(cond): the condition is NOT held inside, so
    # no inner-lock edge (and no inversion) is recorded.
    found = lint(
        """
        def leader(self):
            cond = self._inner_lock
            with cond:
                with _condition_released(cond):
                    with self._outer_lock:
                        pass
        """,
        {"R002"},
        path="fixtures/engine/wrapper.py",
        manifest=_R002_MANIFEST,
    )
    assert found == []


def test_r002_alias_resolution():
    found = lint(
        """
        def work(self):
            inner = self._inner_lock
            with inner:
                with self._outer_lock:
                    pass
        """,
        {"R002"},
        path="fixtures/engine/alias.py",
        manifest=_R002_MANIFEST,
    )
    assert any("rank" in v.message for v in found)


def test_r002_ignores_files_outside_engine_and_db():
    found = lint(
        """
        def work(self):
            with self._mystery_lock:
                pass
        """,
        {"R002"},
        path="fixtures/client/other.py",
        manifest=_R002_MANIFEST,
    )
    assert found == []


def test_r002_lockmanager_calls_map_to_logical_nodes():
    manifest = {"ranks": {"lockmgr:__store_gate__": 10, "lockmgr:<table>": 20}}
    found = lint(
        """
        STORE_GATE = "__store_gate__"

        def backwards(self, name):
            self.locks.acquire_exclusive(name)
            self.locks.acquire_shared(STORE_GATE)
        """,
        {"R002"},
        path="fixtures/engine/lockmgr.py",
        manifest=manifest,
    )
    assert any("rank" in v.message for v in found)


# -- R003: determinism bans ----------------------------------------------------


def test_r003_flags_unseeded_rng_and_global_draws():
    found = lint(
        """
        import random

        def sample(self):
            rng = random.Random()
            return random.random()
        """,
        {"R003"},
        path="fixtures/core/confidence/bad.py",
    )
    assert codes_of(found) == ["R003", "R003"]


def test_r003_flags_time_and_id_seeds_and_set_iteration():
    found = lint(
        """
        import random, time

        def shard(self, groups):
            seed = fnv_mix(id(self.registry))
            t = time.time()
            for group in set(groups):
                assign(group)
            return seed, t
        """,
        {"R003"},
        path="fixtures/engine/parallel.py",
    )
    messages = " | ".join(v.message for v in found)
    assert "id()" in messages
    assert "time.time" in messages
    assert "unordered set" in messages


def test_r003_accepts_seeded_deterministic_code():
    found = lint(
        """
        import random, time

        def sample(self, seed, groups):
            rng = random.Random(seed)
            started = time.perf_counter()
            for group in sorted(set(groups)):
                assign(group)
            return rng, started
        """,
        {"R003"},
        path="fixtures/core/confidence/good.py",
    )
    assert found == []


def test_r003_only_applies_to_bit_identical_paths():
    found = lint(
        """
        import random

        def jitter():
            return random.random()
        """,
        {"R003"},
        path="fixtures/server/retry.py",
    )
    assert found == []


# -- R004: shared-memory cleanup -----------------------------------------------


def test_r004_flags_create_without_unlink():
    found = lint(
        """
        def publish(data, name):
            return shared_memory.SharedMemory(name=name, create=True, size=len(data))
        """,
        {"R004"},
    )
    assert codes_of(found) == ["R004"]


def test_r004_accepts_unlink_in_finally():
    found = lint(
        """
        def run(data, name):
            segment = shared_memory.SharedMemory(name=name, create=True, size=len(data))
            try:
                work(segment)
            finally:
                segment.close()
                segment.unlink()
        """,
        {"R004"},
    )
    assert found == []


def test_r004_accepts_unlink_in_shutdown_function():
    found = lint(
        """
        def publish(self, data, name):
            self.segment = shared_memory.SharedMemory(name=name, create=True, size=len(data))

        def shutdown(self):
            self.segment.unlink()
        """,
        {"R004"},
    )
    assert found == []


# -- R005: pin/unpin balance ---------------------------------------------------


def test_r005_flags_pin_without_cleanup_unpin():
    found = lint(
        """
        def capture(self, tables):
            pins = []
            for table in tables:
                pins.append(table.pin_snapshot())
            return pins
        """,
        {"R005"},
    )
    assert codes_of(found) == ["R005"]


def test_r005_accepts_unpin_in_error_handler():
    # The SnapshotManager.capture shape: pins hand over to the caller on
    # success, the except handler unpins on error exits.
    found = lint(
        """
        def capture(self, tables):
            pins = {}
            try:
                for name, table in tables:
                    pins[name] = table.pin_snapshot()
            except BaseException:
                for name, (version, _, _) in pins.items():
                    table.unpin_snapshot(version)
                raise
            return pins
        """,
        {"R005"},
    )
    assert found == []


def test_r005_accepts_unpin_in_finally():
    found = lint(
        """
        def read(self, table):
            version, relation, _ = table.pin_snapshot()
            try:
                return scan(relation)
            finally:
                table.unpin_snapshot(version)
        """,
        {"R005"},
    )
    assert found == []


# -- R006: swallowed failures --------------------------------------------------


def test_r006_flags_bare_except():
    found = lint(
        """
        def risky():
            try:
                work()
            except:
                pass
        """,
        {"R006"},
    )
    assert codes_of(found) == ["R006"]


def test_r006_flags_uncounted_broken_process_pool():
    found = lint(
        """
        def attempt(self):
            try:
                return self.pool.run()
            except BrokenProcessPool:
                return None
        """,
        {"R006"},
    )
    assert codes_of(found) == ["R006"]


def test_r006_accepts_counted_broken_process_pool():
    found = lint(
        """
        def attempt(self):
            try:
                return self.pool.run()
            except BrokenProcessPool:
                self._count(parallel_worker_crashes=1, parallel_fallbacks=1)
                return None
        """,
        {"R006"},
    )
    assert found == []


def test_r006_accepts_reraising_handler():
    found = lint(
        """
        def attempt(self):
            try:
                return self.pool.run()
            except BrokenProcessPool:
                raise
        """,
        {"R006"},
    )
    assert found == []


# -- engine-wide checks --------------------------------------------------------


def test_rule_catalog_has_at_least_six_rules():
    assert len(all_rules()) >= 6


def test_repository_src_tree_is_lint_clean():
    result = lint_paths([os.path.join(REPO_ROOT, "src")])
    assert result.violations == [], "\n".join(v.render() for v in result.violations)
    assert result.checked_files > 40


def test_committed_manifest_ranks_are_unique_and_documented():
    manifest = load_manifest()
    ranks = manifest["ranks"]
    assert len(set(ranks.values())) == len(ranks), "ranks must be strict"
    assert set(manifest["nodes"]) == set(ranks)


def test_file_level_suppression():
    found = lint(
        """
        # reprolint: disable-file=R006 -- fixture
        def risky():
            try:
                work()
            except:
                pass
        """,
        {"R006"},
    )
    assert found == []


# -- CLI -----------------------------------------------------------------------


def _run_cli(*args):
    return subprocess.run(
        [sys.executable, "-m", "tools.reprolint", *args],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )


def test_cli_exit_zero_and_json_on_clean_tree():
    proc = _run_cli("--format", "json", "src")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["violations"] == []
    assert payload["checked_files"] > 40


def test_cli_exit_one_on_violation(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def f():\n    try:\n        g()\n    except:\n        pass\n")
    proc = _run_cli(str(bad))
    assert proc.returncode == 1
    assert "R006" in proc.stdout


def test_cli_list_rules():
    proc = _run_cli("--list-rules")
    assert proc.returncode == 0
    for code in ("R001", "R002", "R003", "R004", "R005", "R006"):
        assert code in proc.stdout
