"""Deterministic fault injection: registry semantics and site coverage.

The second half is the failpoint *catalog audit*: every site listed in
:data:`repro.faults.SITES` must provably fire (or, for worker-side
sites, provably change behavior) under a real workload.  A site that is
compiled into the engine but never hit would let torture runs pass
vacuously, so ``test_catalog_is_fully_covered`` fails the suite whenever
a new site is added without coverage here.
"""

import errno
import os
import subprocess
import sys

import pytest

from repro import MayBMS, faults
from repro.client import Client
from repro.engine.catalog import Catalog
from repro.engine.durability import DurabilityManager
from repro.core.variables import VariableRegistry
from repro.errors import FaultInjected
from repro.faults import FaultRegistry, parse_spec
from repro.server.server import MayBMSServer


class TestSpecParsing:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown failpoint site"):
            parse_spec("wal.fsnyc=error")

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            parse_spec("wal.fsync=explode")

    def test_malformed_trigger_rejected(self):
        with pytest.raises(ValueError, match="not a number"):
            parse_spec("wal.fsync=error@soon")

    def test_invalid_operands_rejected(self):
        with pytest.raises(ValueError, match="@N"):
            parse_spec("wal.fsync=error@0")
        with pytest.raises(ValueError, match="/K"):
            parse_spec("wal.fsync=error/0")
        with pytest.raises(ValueError, match="P in"):
            parse_spec("wal.fsync=error%1.5")

    def test_describe_round_trips(self):
        spec = "wal.fsync=error@3,segment.write=enospc%0.25,wire.send=drop/2"
        registry = FaultRegistry()
        registry.arm(spec)
        assert registry.armed_sites() == {
            "wal.fsync": "error@3",
            "segment.write": "enospc%0.25",
            "wire.send": "drop/2",
        }

    def test_dict_arming(self):
        registry = FaultRegistry()
        registry.arm({"wal.fsync": "error@2", "segment.read": "corrupt"})
        assert set(registry.armed_sites()) == {"wal.fsync", "segment.read"}


class TestTriggers:
    def test_nth_fires_exactly_once(self):
        registry = FaultRegistry()
        registry.arm("wal.fsync=fault@3")
        assert registry.hit("wal.fsync") is None
        assert registry.hit("wal.fsync") is None
        with pytest.raises(FaultInjected):
            registry.hit("wal.fsync")
        for _ in range(5):
            assert registry.hit("wal.fsync") is None  # spent
        stats = registry.stats()
        assert stats["hits"]["wal.fsync"] == 8
        assert stats["fired"]["wal.fsync"] == 1

    def test_every_kth_fires_periodically(self):
        registry = FaultRegistry()
        registry.arm("wal.fsync=fault/3")
        fired = []
        for i in range(1, 10):
            try:
                registry.hit("wal.fsync")
            except FaultInjected:
                fired.append(i)
        assert fired == [3, 6, 9]

    def test_error_actions_carry_errno(self):
        registry = FaultRegistry()
        registry.arm("wal.fsync=error,segment.write=enospc")
        with pytest.raises(OSError) as eio:
            registry.hit("wal.fsync")
        assert eio.value.errno == errno.EIO
        with pytest.raises(OSError) as enospc:
            registry.hit("segment.write")
        assert enospc.value.errno == errno.ENOSPC

    def test_directives_returned_not_raised(self):
        registry = FaultRegistry()
        registry.arm("segment.read=corrupt,wire.send=drop@1")
        assert registry.hit("segment.read") == "corrupt"
        assert registry.hit("wire.send") == "drop"

    def test_delay_returns_quickly_for_zero(self):
        registry = FaultRegistry()
        registry.arm("wal.fsync=delay:0")
        assert registry.hit("wal.fsync") is None

    def test_probabilistic_trigger_replays_from_seed(self):
        def pattern(seed):
            registry = FaultRegistry(seed=seed)
            registry.arm("wal.fsync=fault%0.4")
            out = []
            for _ in range(64):
                try:
                    registry.hit("wal.fsync")
                    out.append(0)
                except FaultInjected:
                    out.append(1)
            return out

        assert pattern(42) == pattern(42)
        assert pattern(42) != pattern(43)  # astronomically unlikely to tie
        assert 1 in pattern(42)  # P=0.4 over 64 draws fires at least once

    def test_unarmed_site_counts_hits_only(self):
        registry = FaultRegistry()
        registry.arm("wal.fsync=fault@99")
        assert registry.hit("segment.read") is None
        assert registry.stats()["hits"]["segment.read"] == 1
        assert "segment.read" not in registry.stats()["fired"]


class TestModuleArming:
    def test_disarmed_failpoint_is_none(self):
        faults.disarm()
        assert faults.failpoint("wal.fsync") is None
        assert faults.stats() is None
        assert faults.active() is None

    def test_arm_then_disarm(self):
        faults.arm("wal.fsync=fault@1")
        with pytest.raises(FaultInjected):
            faults.failpoint("wal.fsync")
        assert faults.stats()["fired"]["wal.fsync"] == 1
        faults.disarm()
        assert faults.failpoint("wal.fsync") is None

    def test_arm_accumulates_sites(self):
        faults.arm("wal.fsync=fault@5")
        faults.arm("segment.read=corrupt")
        assert set(faults.active().armed_sites()) == {
            "wal.fsync", "segment.read",
        }
        faults.disarm()

    def test_environment_arms_spawned_interpreter(self):
        """REPRO_FAULTS is read at import time, which is exactly how
        spawned pool workers inherit armed faults."""
        env = dict(os.environ)
        env["REPRO_FAULTS"] = "wal.fsync=error@3"
        env["REPRO_FAULTS_SEED"] = "7"
        env["PYTHONPATH"] = "src"
        code = (
            "from repro import faults\n"
            "registry = faults.active()\n"
            "assert registry is not None, 'env did not arm'\n"
            "assert registry.armed_sites() == {'wal.fsync': 'error@3'}\n"
            "assert registry.seed == 7\n"
            "print('armed-ok')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env=env, capture_output=True, text=True, cwd="/root/repo",
        )
        assert proc.returncode == 0, proc.stderr
        assert "armed-ok" in proc.stdout

    def test_maybms_faults_parameter_arms(self, tmp_path):
        with MayBMS(path=str(tmp_path / "db"), faults="wal.fsync=fault@999") as db:
            db.execute("create table t (x integer)")
            stats = db.fault_stats()
            assert stats["armed"] == {"wal.fsync": "fault@999"}
            assert stats["hits"].get("wal.fsync", 0) >= 1
        faults.disarm()


# -- site coverage: every entry in faults.SITES must fire somewhere below --

DURABILITY_SITES = [
    "wal.open", "wal.write", "wal.fsync", "wal.rotate",
    "checkpoint.prepare", "checkpoint.prepared", "checkpoint.fsync",
    "checkpoint.manifest.write", "checkpoint.manifest.rename",
    "segment.write", "segment.read", "segment.decode",
    "recovery.manifest.read",
]
JSON_SITES = ["checkpoint.json.write", "checkpoint.json.rename"]
WIRE_SITES = ["wire.send", "wire.recv", "server.reply.delay"]
POOL_PARENT_SITES = ["parallel.submit", "parallel.shm.unlink"]
WORKER_SITES = ["parallel.worker"]


class TestSiteCoverage:
    def test_catalog_is_fully_covered(self):
        covered = set(
            DURABILITY_SITES + JSON_SITES + WIRE_SITES
            + POOL_PARENT_SITES + WORKER_SITES
        )
        assert covered == set(faults.SITES), (
            "failpoint catalog and coverage tests diverged: "
            f"uncovered={set(faults.SITES) - covered} "
            f"stale={covered - set(faults.SITES)}"
        )

    def test_durability_sites_fire(self, tmp_path):
        """A full durable life cycle (open, append, checkpoint, reopen)
        passes through every durability failpoint; delay:0 observes each
        hit without perturbing the run."""
        faults.arm({site: "delay:0" for site in DURABILITY_SITES})
        path = str(tmp_path / "db")
        db = MayBMS(path=path, checkpoint_every=0)
        db.execute("create table t (k integer, p float)")
        db.execute("insert into t values (1, 0.5), (2, 0.25)")
        db.checkpoint()
        db.execute("insert into t values (3, 0.75)")
        db.close()
        reopened = MayBMS(path=path)
        assert reopened.query("select k from t order by k").rows == [
            (1,), (2,), (3,)
        ]
        reopened.close()
        hits = faults.stats()["hits"]
        fired = faults.stats()["fired"]
        for site in DURABILITY_SITES:
            assert hits.get(site, 0) >= 1, f"site {site} never hit: {hits}"
            assert fired.get(site, 0) >= 1, f"site {site} never fired: {fired}"
        faults.disarm()

    def test_json_checkpoint_sites_fire(self, tmp_path):
        faults.arm({site: "delay:0" for site in JSON_SITES})
        manager = DurabilityManager(str(tmp_path / "db"), snapshot_format="json")
        manager.append([
            ("begin",),
            ("create_table", "t", [["x", "INTEGER"]], "standard", {}),
            ("commit",),
        ])
        manager.checkpoint(Catalog(), VariableRegistry())
        manager.close()
        hits = faults.stats()["hits"]
        for site in JSON_SITES:
            assert hits.get(site, 0) >= 1, f"site {site} never hit: {hits}"
        faults.disarm()

    def test_wire_sites_fire(self):
        faults.arm({site: "delay:0" for site in WIRE_SITES})
        server = MayBMSServer(port=0).start()
        try:
            with Client(server.host, server.port) as client:
                assert client.ping()
        finally:
            server.close()
        hits = faults.stats()["hits"]
        for site in WIRE_SITES:
            assert hits.get(site, 0) >= 1, f"site {site} never hit: {hits}"
        faults.disarm()

    def test_pool_parent_sites_fire(self):
        faults.arm({site: "delay:0" for site in POOL_PARENT_SITES})
        with MayBMS(seed=11, parallel_workers=2, parallel_min_rows=1) as db:
            db.execute("create table t (g integer, w float)")
            db.execute(
                "insert into t values "
                + ", ".join(f"({g}, 1.0)" for g in range(24))
            )
            db.execute("create table u as repair key g in t weight by w")
            db.execute("select g, conf() as p from u group by g order by g")
        hits = faults.stats()["hits"]
        for site in POOL_PARENT_SITES:
            assert hits.get(site, 0) >= 1, f"site {site} never hit: {hits}"
        faults.disarm()

    def test_worker_site_fires_in_spawned_worker(self, monkeypatch):
        """Worker processes arm their own registry from the inherited
        REPRO_FAULTS (import-time), so a worker-side fault surfaces as
        the query's error even though the parent registry stays empty."""
        monkeypatch.setenv("REPRO_FAULTS", "parallel.worker=fault")
        with MayBMS(seed=11, parallel_workers=2, parallel_min_rows=1) as db:
            db.execute("create table t (g integer, w float)")
            db.execute(
                "insert into t values "
                + ", ".join(f"({g}, 1.0)" for g in range(24))
            )
            db.execute("create table u as repair key g in t weight by w")
            with pytest.raises(FaultInjected, match="parallel.worker"):
                db.execute("select g, conf() as p from u group by g")
        assert faults.active() is None  # the parent was never armed

    def test_worker_crash_falls_back_to_serial(self, monkeypatch):
        """`exit` kills the worker mid-shard: the pool records the crash
        and the query still answers correctly via the serial fallback --
        the degradation contract for a broken pool."""
        monkeypatch.setenv("REPRO_FAULTS", "parallel.worker=exit@1")
        with MayBMS(seed=11, parallel_workers=2, parallel_min_rows=1) as db:
            db.execute("create table t (g integer, w float)")
            db.execute(
                "insert into t values "
                + ", ".join(f"({g}, 1.0)" for g in range(24))
            )
            db.execute("create table u as repair key g in t weight by w")
            rows = db.execute(
                "select g, conf() as p from u group by g order by g"
            ).relation.rows
            assert len(rows) == 24
            stats = db.parallel_stats()
            assert stats["parallel_worker_crashes"] >= 1, stats
            assert stats["parallel_fallbacks"] >= 1, stats
