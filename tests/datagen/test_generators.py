"""Tests for the workload generators (determinism and shape)."""

import random

import numpy as np
import pytest

from repro.core.confidence.dnf import DNF
from repro.datagen.markov import (
    FIGURE1_MATRIX,
    figure1_relation,
    matrix_power_distribution,
    random_stochastic_matrix,
    transition_relation,
)
from repro.datagen.nba import FITNESS_STATES, SKILLS, NBADataGenerator
from repro.datagen.random_dnf import random_dnf, random_registry, ratio_sweep_instances
from repro.datagen.tpch import TpchGenerator


class TestMarkov:
    def test_rows_are_stochastic(self):
        rng = random.Random(1)
        for _ in range(5):
            matrix = random_stochastic_matrix(4, rng)
            assert np.allclose(matrix.sum(axis=1), 1.0)
            assert (matrix >= 0).all()

    def test_sparsity_produces_zeros(self):
        rng = random.Random(2)
        matrix = random_stochastic_matrix(6, rng, sparsity=0.8)
        assert (matrix == 0.0).sum() > 0

    def test_transition_relation_omits_zeros(self):
        matrix = np.array([[0.5, 0.5], [1.0, 0.0]])
        relation = transition_relation({"p": matrix}, ["a", "b"])
        assert len(relation) == 3
        pairs = {(r[1], r[2]) for r in relation}
        assert ("b", "b") not in pairs

    def test_figure1_relation_has_eight_rows(self):
        assert len(figure1_relation()) == 8

    def test_matrix_power_distribution(self):
        dist = matrix_power_distribution(FIGURE1_MATRIX, 0, 1)
        assert dist["F"] == pytest.approx(0.8)
        assert sum(dist.values()) == pytest.approx(1.0)


class TestNBA:
    def test_deterministic_under_seed(self):
        a = NBADataGenerator(seed=3)
        b = NBADataGenerator(seed=3)
        assert a.roster_relation() == b.roster_relation()
        assert a.skills_relation() == b.skills_relation()

    def test_different_seeds_differ(self):
        a = NBADataGenerator(seed=3)
        b = NBADataGenerator(seed=4)
        assert a.roster_relation() != b.roster_relation()

    def test_roster_shape(self):
        gen = NBADataGenerator(seed=1, n_players=12)
        roster = gen.roster_relation()
        assert len(roster) == 12
        assert roster.schema.names == ["name", "salary", "status"]
        statuses = set(roster.column("status"))
        assert statuses <= {"fit", "slightly_injured", "seriously_injured"}

    def test_skills_valid(self):
        gen = NBADataGenerator(seed=1)
        for player, skill in gen.skills_relation():
            assert skill in SKILLS

    def test_fitness_matrices_stochastic(self):
        gen = NBADataGenerator(seed=1, n_players=5)
        for player in gen.players:
            assert np.allclose(player.fitness_matrix.sum(axis=1), 1.0)

    def test_transitions_relation_consistent_with_matrices(self):
        gen = NBADataGenerator(seed=1, n_players=3)
        relation = gen.fitness_transitions_relation()
        player = gen.players[0]
        rows = {
            (r[1], r[2]): r[3] for r in relation if r[0] == player.name
        }
        for i, init in enumerate(FITNESS_STATES):
            for j, final in enumerate(FITNESS_STATES):
                value = float(player.fitness_matrix[i, j])
                if value > 0:
                    assert rows[(init, final)] == pytest.approx(value)

    def test_recency_weights_normalized(self):
        gen = NBADataGenerator(seed=1)
        weights = gen.recency_weights_relation()
        assert sum(w for _, w in weights) == pytest.approx(1.0)
        values = [w for _, w in weights]
        assert values == sorted(values, reverse=True)  # more recent heavier

    def test_ground_truths_in_range(self):
        gen = NBADataGenerator(seed=1)
        for p in gen.skill_availability_ground_truth().values():
            assert 0.0 <= p <= 1.0
        for e in gen.expected_points_ground_truth().values():
            assert e >= 0.0


class TestRandomDnf:
    def test_shape(self):
        rng = random.Random(1)
        dnf, registry = random_dnf(8, 5, 3, rng)
        assert dnf.clause_count() == 5
        assert all(len(c) == 3 for c in dnf)
        assert dnf.variables() <= set(registry.variables())

    def test_width_clamped_to_pool(self):
        rng = random.Random(1)
        dnf, _ = random_dnf(2, 4, 5, rng)
        assert all(len(c) <= 2 for c in dnf)

    def test_registry_reuse(self):
        rng = random.Random(1)
        registry, variables = random_registry(5, rng)
        dnf, same = random_dnf(5, 3, 2, rng, registry=registry, variables=variables)
        assert same is registry

    def test_ratio_sweep(self):
        rng = random.Random(1)
        instances = ratio_sweep_instances(10, [0.2, 1.0, 3.0], 2, rng)
        assert len(instances) == 3
        for ratio, dnf, _ in instances:
            assert dnf.clause_count() == 10
            pool = max(2, int(round(ratio * 10)))
            assert dnf.variable_count() <= pool


class TestTpch:
    def test_deterministic(self):
        a = TpchGenerator(scale=0.1, seed=5)
        b = TpchGenerator(scale=0.1, seed=5)
        assert a.customers() == b.customers()
        assert a.orders() == b.orders()

    def test_scale_controls_size(self):
        small = TpchGenerator(scale=0.1, seed=1)
        large = TpchGenerator(scale=0.5, seed=1)
        assert len(large.orders()) > len(small.orders())
        assert len(small.customers()) == 15

    def test_foreign_keys_valid(self):
        gen = TpchGenerator(scale=0.05, seed=2)
        customer_keys = set(gen.customers().column("custkey"))
        for order in gen.orders():
            assert order[1] in customer_keys
        order_keys = set(gen.orders().column("orderkey"))
        for item in gen.lineitems():
            assert item[0] in order_keys

    def test_probabilistic_variants(self):
        gen = TpchGenerator(scale=0.05, seed=3)
        db = gen.tuple_independent_database()
        assert set(db) == {"customer", "orders", "lineitem"}
        for table in db.values():
            assert all(0.0 <= p <= 1.0 for p in table.probabilities)
            assert len(table.probabilities) == len(table.relation)

    def test_tables_cached(self):
        gen = TpchGenerator(scale=0.05, seed=4)
        assert gen.orders() is gen.orders()
