"""Repo-wide fixtures.

When the suite runs with ``REPRO_SANITIZE=1`` (the CI sanitizer job), every
test is followed by a cleanliness assertion: any violation the runtime
concurrency sanitizer recorded during the test -- lock-order cycles, locks
held across fsync/pool submits, pin or shared-memory leaks -- fails the
test even if the violating code path did not raise inline (logical
LockManager notes are record-only by design).
"""

import os

import pytest


@pytest.fixture(autouse=True)
def _sanitizer_guard():
    yield
    from repro.engine.sanitizer import get_sanitizer

    sanitizer = get_sanitizer()
    if sanitizer is not None:
        sanitizer.assert_clean()


@pytest.fixture(autouse=True)
def _faults_guard():
    """The fault registry is process-global; never let an armed failpoint
    leak from one test into the next (unless the whole run was armed via
    REPRO_FAULTS, which the chaos job does deliberately)."""
    yield
    if not os.environ.get("REPRO_FAULTS"):
        from repro import faults

        faults.disarm()
