"""Repo-wide fixtures.

When the suite runs with ``REPRO_SANITIZE=1`` (the CI sanitizer job), every
test is followed by a cleanliness assertion: any violation the runtime
concurrency sanitizer recorded during the test -- lock-order cycles, locks
held across fsync/pool submits, pin or shared-memory leaks -- fails the
test even if the violating code path did not raise inline (logical
LockManager notes are record-only by design).
"""

import pytest


@pytest.fixture(autouse=True)
def _sanitizer_guard():
    yield
    from repro.engine.sanitizer import get_sanitizer

    sanitizer = get_sanitizer()
    if sanitizer is not None:
        sanitizer.assert_clean()
