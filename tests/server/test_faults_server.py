"""Server-side robustness: statement timeouts, the ``faults`` wire op,
client auto-retry, and the named serving error counters.

The client, server, and fault registry share this test process, so a
``wire.*`` site armed through the wire op is hit by *both* peers'
protocol calls -- triggers below are chosen with that shared counting in
mind (e.g. ``drop@1`` armed client-side fires on the client's own next
send).
"""

import threading
import time

import pytest

from repro import faults
from repro.client import Client
from repro.errors import ServerError
from repro.server import MayBMSServer


@pytest.fixture
def server(tmp_path):
    server = MayBMSServer(path=str(tmp_path / "store")).start()
    yield server
    server.close()


class TestStatementTimeout:
    def test_runaway_statement_aborts_and_session_survives(self, tmp_path):
        server = MayBMSServer(
            path=str(tmp_path / "store"), statement_timeout=0.3
        ).start()
        try:
            with Client(server.host, server.port) as client:
                client.execute("create table t (k integer)")
                # Stall the next WAL write far past the deadline; the
                # delay is sliced so the watchdog's async abort can land.
                faults.arm("wal.write=delay:10000@1")
                began = time.monotonic()
                with pytest.raises(ServerError) as info:
                    client.execute("insert into t values (1)")
                elapsed = time.monotonic() - began
                faults.disarm()
                assert info.value.error_type == "StatementTimeout"
                assert elapsed < 5.0, "watchdog did not interrupt the delay"

                # The statement rolled back and the session keeps serving.
                assert client.query("select k from t").rows == []
                client.execute("insert into t values (2)")
                assert client.query("select k from t").rows == [(2,)]
                serving = client.server_stats()["serving"]
                assert serving["statements_timed_out"] == 1
                assert serving["statement_timeout"] == 0.3
        finally:
            faults.disarm()
            server.close()

    def test_fast_statements_unaffected(self, tmp_path):
        server = MayBMSServer(
            path=str(tmp_path / "store"), statement_timeout=5.0
        ).start()
        try:
            with Client(server.host, server.port) as client:
                client.execute("create table t (k integer)")
                client.execute("insert into t values (1)")
                serving = client.server_stats()["serving"]
                assert serving["statements_timed_out"] == 0
        finally:
            server.close()

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_STATEMENT_TIMEOUT", "2.5")
        server = MayBMSServer().start()
        try:
            assert server.statement_timeout == 2.5
        finally:
            server.close()

    def test_unset_reports_none(self, server):
        with Client(server.host, server.port) as client:
            assert client.server_stats()["serving"]["statement_timeout"] is None


class TestFaultsWireOp:
    def test_arm_stats_disarm_cycle(self, server):
        with Client(server.host, server.port) as client:
            state = client.arm_faults("wal.fsync=error@999", seed=13)
            assert state["armed"] == {"wal.fsync": "error@999"}
            assert state["seed"] == 13
            client.execute("create table t (k integer)")
            client.execute("insert into t values (1)")
            stats = client.fault_stats()
            assert stats["hits"]["wal.fsync"] >= 1
            assert stats["fired"] == {}
            client.disarm_faults()
            assert client.fault_stats() == {}
            assert faults.active() is None

    def test_bad_spec_reports_error_and_keeps_connection(self, server):
        with Client(server.host, server.port) as client:
            with pytest.raises(ServerError, match="unknown failpoint site"):
                client.arm_faults("no.such.site=error")
            assert client.ping()

    def test_unknown_action_rejected(self, server):
        with Client(server.host, server.port) as client:
            with pytest.raises(ServerError, match="unknown faults action"):
                client._request({"op": "faults", "action": "detonate"})
            assert client.ping()

    def test_stats_op_merges_fault_counters(self, server):
        with Client(server.host, server.port) as client:
            assert client.server_stats()["faults"] == {}  # disarmed
            client.arm_faults("wal.fsync=error@999")
            client.execute("create table t (k integer)")
            merged = client.server_stats()["faults"]
            assert merged["armed"] == {"wal.fsync": "error@999"}
            client.disarm_faults()


class TestClientRetry:
    def test_idempotent_statement_survives_dropped_connection(self, server):
        with Client(server.host, server.port, retries=3, backoff=0.01) as client:
            client.execute("create table t (k integer)")
            client.execute("insert into t values (1), (2)")
            # Fires on the client's own next send: the query's request
            # dies mid-flight and is transparently replayed on a fresh
            # connection (SELECT is idempotent).
            faults.arm("wire.send=drop@1")
            result = client.query("select k from t order by k")
            faults.disarm()
            assert result.rows == [(1,), (2,)]
            assert result.retries >= 1
            assert client.last_retries == result.retries

    def test_non_idempotent_statement_surfaces_the_drop(self, server):
        with Client(server.host, server.port, retries=3, backoff=0.01) as client:
            client.execute("create table t (k integer)")
            faults.arm("wire.send=drop@1")
            # The insert's fate would be unknown after a reconnect, so the
            # client must NOT replay it -- the failure surfaces instead.
            with pytest.raises(OSError):
                client.execute("insert into t values (1)")
            faults.disarm()

    def test_read_only_session_retries_everything(self, server):
        with Client(server.host, server.port) as writer:
            writer.execute("create table t (k integer)")
            writer.execute("insert into t values (7)")
        with Client(
            server.host, server.port, read_only=True, retries=3, backoff=0.01
        ) as reader:
            faults.arm("wire.send=drop@1")
            result = reader.query("select k from t")
            faults.disarm()
            assert result.rows == [(7,)]
            assert result.retries >= 1

    def test_zero_retries_surfaces_immediately(self, server):
        with Client(server.host, server.port) as client:
            client.execute("create table t (k integer)")
            faults.arm("wire.send=drop@1")
            with pytest.raises(OSError):
                client.query("select k from t")
            faults.disarm()

    def test_busy_refusal_retried_in_place(self, tmp_path):
        """ServerBusyError keeps the connection and transaction intact,
        so the client retries any statement after a backoff -- here until
        a deliberately stalled statement frees the single slot."""
        server = MayBMSServer(
            path=str(tmp_path / "store"), max_active_statements=1
        ).start()
        try:
            slow = Client(server.host, server.port)
            slow.execute("create table t (k integer)")
            faults.arm("wal.write=delay:1500@1")
            stalled = threading.Thread(
                target=slow.execute, args=("insert into t values (1)",)
            )
            stalled.start()
            time.sleep(0.3)  # let the stalled insert occupy the slot
            with Client(
                server.host, server.port, retries=10, backoff=0.05
            ) as fast:
                result = fast.query("select k from t")
                assert result.retries >= 1
                assert fast.read_only is False
            stalled.join()
            faults.disarm()
            slow.close()
        finally:
            faults.disarm()
            server.close()


class TestServingErrorCounters:
    def test_counters_start_at_zero(self, server):
        with Client(server.host, server.port) as client:
            serving = client.server_stats()["serving"]
            for name in (
                "accept_errors", "reject_errors", "recv_errors",
                "reply_errors", "statements_timed_out",
            ):
                assert serving[name] == 0, serving

    def test_injected_recv_drop_is_counted(self, server):
        with Client(server.host, server.port, retries=3, backoff=0.05) as client:
            client.execute("create table t (k integer)")
            # After the arm reply, the server's connection thread loops
            # straight into recv_message and fires the drop itself.
            client.arm_faults("wire.recv=drop@1")
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                stats = faults.stats()
                if stats and stats["fired"].get("wire.recv"):
                    break
                time.sleep(0.02)
            # The retrying client shrugs off its killed connection.
            assert client.query("select k from t").rows == []
            serving = client.server_stats()["serving"]
            assert serving["recv_errors"] >= 1, serving
            client.disarm_faults()
