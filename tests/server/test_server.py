"""The serving layer: wire protocol, concurrent clients, crash recovery.

Covers the acceptance criteria of the serving PR: ``maybms-server``
serves >= 8 concurrent client sessions over one durable store; with
group commit enabled the fsync count stays strictly below the commit
count under concurrent load; and ``kill -9`` of the server followed by a
restart recovers bit-identical SELECT / conf() answers.
"""

import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.client import Client, ClientResult
from repro.errors import ProtocolError, ServerError
from repro.server import MayBMSServer, protocol

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
SRC = os.path.join(REPO_ROOT, "src")


@pytest.fixture
def server(tmp_path):
    server = MayBMSServer(path=str(tmp_path / "store")).start()
    yield server
    server.close()


@pytest.fixture
def memory_server():
    server = MayBMSServer().start()
    yield server
    server.close()


class TestRoundTrips:
    def test_hello_and_ping(self, server):
        with Client(server.host, server.port) as client:
            assert client.server_info["server"] == "maybms"
            assert client.server_info["durable"] is True
            assert client.ping()

    def test_ddl_dml_query(self, server):
        with Client(server.host, server.port) as client:
            client.execute("create table t (a integer, p float)")
            result = client.execute("insert into t values (1, 0.4), (2, 0.6)")
            assert result.kind == "none" and result.row_count == 2
            rows = client.query("select a from t order by a").rows
            assert rows == [(1,), (2,)]
            assert client.tables() == ["t"]

    def test_conf_over_the_wire(self, server):
        with Client(server.host, server.port) as client:
            client.execute_script(
                "create table t (k integer, v integer, p float);"
                "insert into t values (1, 1, 0.4), (1, 2, 0.6);"
                "create table u as repair key k in t weight by p"
            )
            result = client.query("select v, conf() as c from u group by v")
            assert sorted((v, round(c, 9)) for v, c in result.rows) == [
                (1, 0.4),
                (2, 0.6),
            ]

    def test_urelation_result_carries_arities(self, server):
        with Client(server.host, server.port) as client:
            client.execute_script(
                "create table t (k integer, v integer, p float);"
                "insert into t values (1, 1, 0.4), (1, 2, 0.6);"
                "create table u as repair key k in t weight by p"
            )
            result = client.uncertain_query("select * from u")
            assert result.kind == "urelation"
            assert result.payload_arity == 3
            assert result.cond_arity == 1
            assert len(result.rows) == 2

    def test_statement_error_keeps_connection(self, server):
        with Client(server.host, server.port) as client:
            with pytest.raises(ServerError) as excinfo:
                client.execute("select * from missing")
            assert excinfo.value.error_type == "AnalysisError"
            assert client.ping()

    def test_transactions_per_connection(self, server):
        with Client(server.host, server.port) as writer:
            writer.execute("create table t (a integer)")
            writer.begin()
            writer.execute("insert into t values (1)")
            writer.rollback()
            assert writer.query("select count(*) as n from t").scalar() == 0
            writer.begin()
            writer.execute("insert into t values (2)")
            writer.commit()
            assert writer.query("select count(*) as n from t").scalar() == 1

    def test_disconnect_rolls_back_open_transaction(self, server):
        client = Client(server.host, server.port)
        client.execute("create table t (a integer)")
        client.begin()
        client.execute("insert into t values (1)")
        client.close()  # server rolls the transaction back
        with Client(server.host, server.port) as fresh:
            deadline = time.time() + 5
            while time.time() < deadline:
                if fresh.query("select count(*) as n from t").scalar() == 0:
                    break
                time.sleep(0.05)
            assert fresh.query("select count(*) as n from t").scalar() == 0

    def test_read_only_client(self, server):
        with Client(server.host, server.port) as writer:
            writer.execute("create table t (a integer)")
        with Client(server.host, server.port, read_only=True) as reader:
            assert reader.read_only
            assert reader.query("select count(*) as n from t").scalar() == 0
            with pytest.raises(ServerError) as excinfo:
                reader.execute("insert into t values (1)")
            assert excinfo.value.error_type == "TransactionError"

    def test_unknown_op_reports_protocol_error(self, memory_server):
        with Client(memory_server.host, memory_server.port) as client:
            with pytest.raises(ServerError) as excinfo:
                client._request({"op": "frobnicate"})
            assert excinfo.value.error_type == "ProtocolError"

    def test_oversized_message_rejected_client_side(self, memory_server):
        with Client(memory_server.host, memory_server.port) as client:
            with pytest.raises(ProtocolError):
                protocol.send_message(
                    client._sock,
                    {"op": "execute", "sql": "x" * (protocol.MAX_MESSAGE_BYTES + 1)},
                )

    def test_oversized_response_reports_error_and_keeps_connection(
        self, memory_server, monkeypatch
    ):
        with Client(memory_server.host, memory_server.port) as client:
            client.execute("create table t (a text)")
            filler = "y" * 200
            client.execute(f"insert into t values ('{filler}')")
            # Shrink the limit so the result (not the request) exceeds it.
            monkeypatch.setattr(protocol, "MAX_MESSAGE_BYTES", 128)
            with pytest.raises(ServerError) as excinfo:
                client.query("select * from t")
            assert excinfo.value.error_type == "ProtocolError"
            monkeypatch.setattr(protocol, "MAX_MESSAGE_BYTES", 64 * 1024 * 1024)
            # The connection (and session) survived.
            assert client.ping()
            assert client.query("select count(*) as n from t").scalar() == 1


class TestShutdown:
    def test_close_with_idle_clients_is_prompt(self, tmp_path):
        """Idle handler threads block in recv; close() must wake them by
        shutting their sockets down instead of waiting out join timeouts."""
        server = MayBMSServer(path=str(tmp_path / "store")).start()
        clients = [Client(server.host, server.port) for _ in range(3)]
        clients[0].execute("create table t (a integer)")
        started = time.time()
        server.close()
        assert time.time() - started < 3.0, "close() hung on idle clients"
        for client in clients:
            client._closed = True  # sockets are dead; skip the close handshake


class TestConcurrentClients:
    CLIENTS = 8

    def test_eight_concurrent_sessions(self, server):
        """>= 8 concurrent client sessions: each writes its own table and
        runs confidence queries; a shared reader watches throughout."""
        with Client(server.host, server.port) as setup:
            setup.execute_script(
                "create table base (k integer, v integer, p float);"
                "insert into base values (1, 1, 0.5), (1, 2, 0.5);"
                "create table u as repair key k in base weight by p"
            )
        errors = []

        def worker(index):
            try:
                with Client(server.host, server.port) as client:
                    client.execute(f"create table c{index} (a integer, p float)")
                    for j in range(8):
                        client.execute(f"insert into c{index} values ({j}, 0.5)")
                    conf = client.query(
                        f"select a, conf() as c from (pick tuples from c{index} "
                        "with probability p) r group by a"
                    )
                    assert len(conf.rows) == 8
                    shared = client.query(
                        "select v, conf() as c from u group by v"
                    )
                    assert sorted(
                        (v, round(c, 9)) for v, c in shared.rows
                    ) == [(1, 0.5), (2, 0.5)]
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append((index, exc))

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(self.CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors
        # All tables committed and visible.
        with Client(server.host, server.port) as check:
            names = check.tables()
            for i in range(self.CLIENTS):
                assert f"c{i}" in names

    def test_group_commit_amortizes_fsyncs(self, tmp_path):
        server = MayBMSServer(path=str(tmp_path / "store"), group_commit=True)
        server.start()
        try:
            with Client(server.host, server.port) as setup:
                for i in range(self.CLIENTS):
                    setup.execute(f"create table t{i} (a integer)")
            baseline_fsyncs = server.db.storage.fsync_count
            baseline_commits = server.db.storage.commit_count

            def writer(index, errors):
                try:
                    with Client(server.host, server.port) as client:
                        for j in range(10):
                            client.execute(f"insert into t{index} values ({j})")
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            errors = []
            threads = [
                threading.Thread(target=writer, args=(i, errors))
                for i in range(self.CLIENTS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not errors, errors
            commits = server.db.storage.commit_count - baseline_commits
            fsyncs = server.db.storage.fsync_count - baseline_fsyncs
            assert commits == self.CLIENTS * 10
            assert fsyncs < commits, (
                f"group commit never batched: {fsyncs} fsyncs for {commits} commits"
            )
        finally:
            server.close()


class TestKillMinusNine:
    """kill -9 the server process; restart must recover bit-identically."""

    def _start(self, path):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.server", "--path", path, "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            text=True,
        )
        line = process.stdout.readline()
        match = re.search(r"listening on ([\d.]+):(\d+)", line)
        assert match, f"unexpected server banner: {line!r}"
        return process, match.group(1), int(match.group(2))

    def test_kill_dash_nine_recovers_bit_identical(self, tmp_path):
        path = str(tmp_path / "store")
        process, host, port = self._start(path)
        try:
            with Client(host, port, connect_retries=20) as client:
                client.execute_script(
                    "create table t (k integer, v integer, p float);"
                    "insert into t values (1, 1, 0.3), (1, 2, 0.7), "
                    "(2, 1, 0.5), (2, 2, 0.5);"
                    "create table u as repair key k in t weight by p"
                )
                select_before = client.query("select * from t order by k, v").rows
                conf_before = sorted(
                    client.query("select k, v, conf() as c from u group by k, v").rows
                )
        finally:
            process.kill()  # SIGKILL: no checkpoint, no orderly close
            process.wait(timeout=30)

        process, host, port = self._start(path)
        try:
            with Client(host, port, connect_retries=20) as client:
                select_after = client.query("select * from t order by k, v").rows
                conf_after = sorted(
                    client.query("select k, v, conf() as c from u group by k, v").rows
                )
            assert select_after == select_before
            assert conf_after == conf_before
        finally:
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=30)

    def test_uncommitted_transaction_lost_on_kill(self, tmp_path):
        path = str(tmp_path / "store")
        process, host, port = self._start(path)
        try:
            client = Client(host, port, connect_retries=20)
            client.execute("create table t (a integer)")
            client.execute("insert into t values (1)")
            client.begin()
            client.execute("insert into t values (2)")
            # No commit: the WAL never saw the unit.
        finally:
            process.kill()
            process.wait(timeout=30)
        process, host, port = self._start(path)
        try:
            with Client(host, port, connect_retries=20) as fresh:
                assert fresh.query("select * from t").rows == [(1,)]
        finally:
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=30)


class TestBackpressure:
    def test_connections_beyond_cap_refused_cleanly(self):
        server = MayBMSServer(max_connections=2).start()
        try:
            a = Client(server.host, server.port)
            b = Client(server.host, server.port)
            with pytest.raises(ServerError) as excinfo:
                Client(server.host, server.port)
            assert excinfo.value.error_type == "ServerBusyError"
            # Admitted clients are unaffected by the refusal.
            a.execute("create table t (a integer)")
            assert b.ping()
            serving = a.server_stats()["serving"]
            assert serving["connections_active"] == 2
            assert serving["connections_rejected"] == 1
            a.close()
            # The freed slot admits a new client (the slot is released
            # just after the close ack, so retry briefly).
            deadline = time.time() + 5
            while True:
                try:
                    c = Client(server.host, server.port)
                    break
                except ServerError:
                    assert time.time() < deadline, "slot never freed"
                    time.sleep(0.05)
            c.close()
            b.close()
        finally:
            server.close()

    def test_statements_beyond_cap_refused_and_retryable(self):
        server = MayBMSServer(max_active_statements=1).start()
        try:
            with Client(server.host, server.port) as client:
                # Hold the only slot so the next statement finds the server
                # saturated -- deterministic, no timing games.
                assert server._statement_gate.acquire(blocking=False)
                with pytest.raises(ServerError) as excinfo:
                    client.execute("create table t (a integer)")
                assert excinfo.value.error_type == "ServerBusyError"
                server._statement_gate.release()
                # The connection (and a retry) survive the refusal.
                client.execute("create table t (a integer)")
                assert (
                    client.server_stats()["serving"]["statements_rejected"] == 1
                )
        finally:
            server.close()

    def test_statement_refusal_keeps_open_transaction(self):
        server = MayBMSServer(max_active_statements=1).start()
        try:
            with Client(server.host, server.port) as client:
                client.execute("create table t (a integer)")
                client.begin()
                client.execute("insert into t values (1)")
                assert server._statement_gate.acquire(blocking=False)
                with pytest.raises(ServerError):
                    client.execute("insert into t values (2)")
                server._statement_gate.release()
                client.execute("insert into t values (3)")
                client.commit()
                rows = client.query("select a from t order by a").rows
                assert rows == [(1,), (3,)]
        finally:
            server.close()

    def test_env_default_caps_connections(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVER_MAX_CONNECTIONS", "1")
        server = MayBMSServer().start()
        try:
            assert server.max_connections == 1
            with Client(server.host, server.port):
                with pytest.raises(ServerError) as excinfo:
                    Client(server.host, server.port)
                assert excinfo.value.error_type == "ServerBusyError"
        finally:
            server.close()


class TestParallelConfidenceOverTheWire:
    def test_server_shares_one_pool_across_sessions(self):
        server = MayBMSServer(parallel_workers=2).start()
        try:
            server.db.parallel_pool.min_rows = 1
            with Client(server.host, server.port) as setup:
                values = ", ".join(
                    f"({g}, {k}, {1 + (g + k) % 3})"
                    for g in range(8)
                    for k in range(10)
                )
                setup.execute_script(
                    "create table t (g integer, k integer, w float);"
                    f"insert into t values {values};"
                    "create table u as repair key g, k in t weight by w"
                )
            query = "select g, conf() as c from u group by g"
            with Client(server.host, server.port) as one:
                first = sorted(one.query(query).rows)
            with Client(server.host, server.port) as two:
                second = sorted(two.query(query).rows)
                parallel = two.server_stats()["parallel"]
            assert first == second
            # Both sessions ran over the same store-owned pool.
            assert parallel["parallel_workers"] == 2
            assert parallel["parallel_queries"] == 2, parallel
            assert parallel["parallel_segments_active"] == 0
        finally:
            server.close()
        assert server.db.parallel_pool._executor is None

    def test_serial_server_reports_empty_parallel_stats(self, memory_server):
        with Client(memory_server.host, memory_server.port) as client:
            assert client.server_stats()["parallel"] == {}

    def test_snapshot_counters_over_the_wire(self, memory_server):
        with Client(memory_server.host, memory_server.port) as client:
            client.execute("create table t (k integer, w float)")
            client.execute("insert into t values (1, 0.5), (2, 1.5)")
            client.query("select k from t")
            snapshots = client.server_stats()["snapshots"]
        assert snapshots["snapshot_captures"] >= 1
        assert snapshots["snapshot_pins_held"] == 0


class TestDurabilityStatsOp:
    def test_stats_over_the_wire(self, server):
        with Client(server.host, server.port) as client:
            client.execute("create table t (k integer, w float)")
            client.execute("insert into t values (1, 0.5), (2, 1.5)")
            client.execute("checkpoint")
            client.execute("insert into t values (3, 2.5)")
            client.execute("checkpoint")
            stats = client.stats()
        assert stats["checkpoints_total"] == 2
        assert stats["tables_snapshotted"] == 1  # only t was dirty
        assert stats["checkpoint_bytes"] > 0
        assert stats["checkpoint_ms"] >= 0
        assert stats["commit_count"] >= 3
        assert "recovery_ms" in stats and "segments_reused" in stats

    def test_stats_empty_for_memory_store(self, memory_server):
        with Client(memory_server.host, memory_server.port) as client:
            assert client.stats() == {}
