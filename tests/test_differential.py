"""Differential testing: the row and batch engines must agree.

Every query here runs twice through the full SQL stack -- parser,
analyzer, translation, confidence computation -- once with the planner
forced onto the row engine and once onto the batch engine, over two
identically-seeded MayBMS sessions.  Results must match exactly:
order-sensitively for ordered queries, as multisets otherwise (including
the wide U-relation encoding of uncertain results).

The table data is randomized per seed so the suite explores different
join fan-outs, NULL placements, and group sizes on every parametrization.
"""

import random

import pytest

from repro.core.urelation import URelation
from repro.db import MayBMS
from repro.engine import planner
from repro.engine.relation import Relation


def _build_session(seed):
    """A MayBMS session with randomized certain base tables."""
    rng = random.Random(seed)
    db = MayBMS(seed=seed)
    db.execute("create table orders (okey integer, ckey integer, total float, yr integer)")
    db.execute("create table customers (ckey integer, name text, tier integer)")
    db.execute("create table votes (cand text, src text, w float)")

    customers = []
    for ckey in range(rng.randint(8, 14)):
        customers.append(
            f"({ckey}, '{rng.choice(['ann', 'bob', 'cy', 'dee'])}{ckey}', "
            f"{rng.randint(1, 3)})"
        )
    db.execute("insert into customers values " + ", ".join(customers))

    orders = []
    for okey in range(rng.randint(30, 60)):
        total = round(rng.uniform(10.0, 500.0), 2)
        orders.append(
            f"({okey}, {rng.randrange(16)}, {total}, {rng.choice([2007, 2008, 2009])})"
        )
    db.execute("insert into orders values " + ", ".join(orders))

    votes = []
    for _ in range(rng.randint(9, 15)):
        votes.append(
            f"('{rng.choice(['x', 'y', 'z'])}', '{rng.choice(['s1', 's2', 's3'])}', "
            f"{round(rng.uniform(0.1, 1.0), 3)})"
        )
    db.execute("insert into votes values " + ", ".join(votes))
    return db


#: The randomized query suite: joins, aggregation, ordering, uncertainty
#: constructs (repair key / pick tuples), confidence computation, and
#: expectation aggregates.
QUERIES = [
    "select okey, total from orders where total > 120.0 order by total desc, okey limit 9",
    "select distinct ckey from orders where yr = 2008 order by ckey",
    "select c.name, o.total from orders o, customers c "
    "where o.ckey = c.ckey and o.total > 200.0 order by o.total, c.name",
    "select yr, count(*) as n, sum(total) as s, avg(total) as m from orders "
    "group by yr having count(*) > 2 order by yr",
    "select tier, min(name) as lo, max(name) as hi from customers group by tier order by tier",
    "select okey from orders where ckey in (select ckey from customers where tier = 2) order by okey",
    "select okey from orders where total between 50.0 and 300.0 "
    "union all select ckey from customers",
    "select cand, conf() as p from (repair key src in votes weight by w) r group by cand",
    "select possible cand from (repair key src in votes weight by w) r",
    "select cand, ecount() as n, esum(w) as ws "
    "from (pick tuples from votes with probability w) p group by cand",
    "select cand, src, tconf() as p from (pick tuples from votes with probability 0.7) p",
    "select o.yr, c.tier, count(*) as n from orders o, customers c "
    "where o.ckey = c.ckey group by o.yr, c.tier order by o.yr, c.tier",
    "select case when total > 250.0 then 'big' else 'small' end as bucket, "
    "count(*) as n from orders group by "
    "case when total > 250.0 then 'big' else 'small' end order by bucket",
]

ORDERED = [q for q in QUERIES if "order by" in q]


def _canonical(output):
    """A comparable form: (schema names, rows) with rows sorted unless the
    query fixed an order (the caller decides which to use)."""
    if isinstance(output, URelation):
        return (
            [c.name.lower() for c in output.relation.schema],
            sorted(map(repr, output.relation.rows)),
        )
    assert isinstance(output, Relation)
    return (
        [c.name.lower() for c in output.schema],
        sorted(map(repr, output.rows)),
    )


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_row_and_batch_engines_agree(seed):
    with planner.forced_engine("row"):
        row_db = _build_session(seed)
        row_results = [row_db.execute(q).output for q in QUERIES]
    with planner.forced_engine("batch"):
        batch_db = _build_session(seed)
        batch_results = [batch_db.execute(q).output for q in QUERIES]

    for query, row_output, batch_output in zip(QUERIES, row_results, batch_results):
        assert _canonical(row_output) == _canonical(batch_output), query
        if "order by" in query and isinstance(row_output, Relation):
            # Ordered results must agree row for row, not just as multisets.
            assert row_output.rows == batch_output.rows, query


@pytest.mark.parametrize("seed", [0, 5])
def test_uncertain_worlds_agree(seed):
    """Beyond the encoding: the *possible worlds* semantics of an
    uncertain result must coincide (same payloads at the same marginal
    probabilities), guarding against condition-column mixups that a pure
    row comparison could miss."""
    sql = (
        "select cand, src from (repair key src in votes weight by w) r "
        "where w > 0.2"
    )
    with planner.forced_engine("row"):
        row_urel = _build_session(seed).execute(sql).urelation
        row_probs = row_urel.condition_probabilities()
    with planner.forced_engine("batch"):
        batch_urel = _build_session(seed).execute(sql).urelation
        batch_probs = batch_urel.condition_probabilities()
    row_summary = sorted(
        (row[: row_urel.payload_arity], round(p, 12))
        for row, p in zip(row_urel.relation, row_probs)
    )
    batch_summary = sorted(
        (row[: batch_urel.payload_arity], round(p, 12))
        for row, p in zip(batch_urel.relation, batch_probs)
    )
    assert row_summary == batch_summary


def test_explain_reports_engine_choice():
    db = _build_session(0)
    result = db.query("explain select okey from orders where total > 100.0")
    text = "\n".join(row[0] for row in result.rows)
    assert "engine=batch" in text or "engine=row" in text
    assert "Scan" in text
