"""A bounded, fixed-seed slice of the crash-torture harness.

The full harness (``python -m tools.torture``) runs hundreds of lives;
this keeps CI honest with a handful covering every life mode.  The seed
is fixed, so a failure here replays bit-identically with::

    python -m tools.torture --path /tmp/t --iterations 6 --seed 1234 \
        --ops-per-life 20
"""

import os

from tools.torture import (
    CRASH_SITES,
    choose_life,
    inserts_to_ops,
    op_statement,
    torture,
)
import random

from repro import faults

SEED = 1234


class TestWorkloadDeterminism:
    def test_op_stream_is_pure(self):
        assert [op_statement(i) for i in range(40)] == [
            op_statement(i) for i in range(40)
        ]

    def test_inserts_to_ops_inverts_the_stream(self):
        inserts = 0
        for index in range(120):
            if op_statement(index).startswith("insert"):
                inserts += 1
                # inserts_to_ops maps a prefix's insert count back to
                # the next op index (checkpoint ops insert nothing).
        assert inserts_to_ops(inserts) == 120 or op_statement(
            inserts_to_ops(inserts)
        ).startswith("checkpoint")
        assert inserts_to_ops(0) == 0

    def test_crash_specs_use_cataloged_sites(self):
        assert set(CRASH_SITES) <= set(faults.SITES)

    def test_life_plan_replays_from_seed(self):
        plan = [choose_life(random.Random(SEED)) for _ in range(3)]
        assert plan[0] == plan[1] == plan[2]


class TestBoundedTorture:
    def test_fixed_seed_run_recovers_every_life(self, tmp_path):
        path = str(tmp_path / "store")
        log = str(tmp_path / "torture.jsonl")
        code = torture(
            path, iterations=6, seed=SEED, ops_per_life=20, log_path=log
        )
        assert code == 0
        assert os.path.getsize(log) > 0
