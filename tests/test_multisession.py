"""Multi-session serving over one shared store.

One :class:`MayBMS` store spawns many :class:`Session` facades sharing
the catalog, variable registry, lock manager, and write-ahead log.
These tests cover the session API (read-only enforcement, per-session
transactions, lock retention) and run a multithreaded stress test:
reader sessions computing ``conf()`` concurrently with a writer session,
asserting no errors and monotonically consistent snapshots.
"""

import threading
import time

import pytest

from repro.db import MayBMS
from repro.errors import AnalysisError, LockTimeout, TransactionError


@pytest.fixture
def store():
    store = MayBMS(seed=11)
    store.execute("create table t (k integer, v integer, p float)")
    store.execute(
        "insert into t values (1, 1, 0.5), (1, 2, 0.5), (2, 1, 0.25), (2, 2, 0.75)"
    )
    store.execute("create table u as repair key k in t weight by p")
    yield store
    store.close()


class TestSessionFacade:
    def test_sessions_share_catalog_and_registry(self, store):
        session = store.session()
        assert session.tables() == store.tables()
        session.execute("create table extra (a integer)")
        assert "extra" in store.tables()
        conf = session.query("select v, conf() as c from u where k = 1 group by v")
        assert sorted(round(c, 9) for _, c in conf.rows) == [0.5, 0.5]

    def test_read_only_session_rejects_writes(self, store):
        reader = store.session(read_only=True)
        assert sorted(
            reader.query("select v, conf() as c from u where k = 1 group by v").rows
        )
        with pytest.raises(TransactionError):
            reader.execute("insert into t values (9, 9, 1.0)")
        with pytest.raises(TransactionError):
            reader.execute("create table nope (a integer)")
        with pytest.raises(TransactionError):
            reader.execute("checkpoint")
        with pytest.raises(TransactionError):
            reader.begin()
        with pytest.raises(TransactionError):
            reader.create_table_from_relation("nope", store.table("t"))

    def test_read_only_session_rejects_variable_creation(self, store):
        """repair key / pick tuples mint durable shared registry state,
        so a read-only session must reject them even inside SELECT."""
        reader = store.session(read_only=True)
        variables_before = len(store.registry)
        with pytest.raises(TransactionError):
            reader.execute(
                "select a, conf() as c from "
                "(repair key k in t weight by p) r group by a"
            )
        with pytest.raises(TransactionError):
            reader.execute("select * from pick tuples from t with probability p r")
        assert len(store.registry) == variables_before
        # Reading a *stored* U-relation stays fine.
        assert reader.query("select v, conf() as c from u where k = 1 group by v")

    def test_per_session_transactions_are_independent(self, store):
        a = store.session()
        b = store.session()
        a.begin()
        assert a.in_transaction and not b.in_transaction
        a.rollback()

    def test_closed_session_rejects_statements(self, store):
        session = store.session()
        session.close()
        with pytest.raises(TransactionError):
            session.execute("select * from t")
        assert session not in store.sessions()

    def test_store_close_closes_sessions(self):
        store = MayBMS()
        store.execute("create table t (a integer)")
        session = store.session()
        store.close()
        assert session._closed

    def test_session_rollback_unregisters_variables(self, store):
        session = store.session()
        variables_before = len(store.registry)
        session.begin()
        session.execute("create table u2 as repair key k in t weight by p")
        assert len(store.registry) > variables_before
        session.rollback()
        assert len(store.registry) == variables_before

    def test_uncommitted_writes_block_other_writers(self, store):
        writer = store.session()
        other = store.session()
        other.lock_timeout = 0.2
        started = threading.Event()
        release = threading.Event()

        def run_txn():
            writer.begin()
            writer.execute("insert into t values (7, 7, 1.0)")
            started.set()
            release.wait(timeout=10)
            writer.rollback()

        thread = threading.Thread(target=run_txn)
        thread.start()
        started.wait(timeout=10)
        try:
            with pytest.raises(TransactionError):
                other.execute("insert into t values (8, 8, 1.0)")
            with pytest.raises(TransactionError):
                other.query("select count(*) as n from t")
        finally:
            release.set()
            thread.join()
        # After rollback both proceed.
        assert other.query("select count(*) as n from t").rows == [(4,)]


class TestMultithreadedStress:
    READERS = 8
    WRITER_BATCHES = 30

    def test_readers_with_concurrent_writer(self, store):
        """N reader sessions run conf() queries while a writer session
        appends monotonically; snapshots must be error-free and
        monotonically consistent (counts never go backwards, conf over
        the stable U-relation never changes)."""
        expected_conf = sorted(
            store.query("select v, conf() as c from u where k = 1 group by v").rows
        )
        stop = threading.Event()
        errors = []
        monotonic_violations = []

        def reader_loop(session):
            last_count = 0
            try:
                while not stop.is_set():
                    conf = sorted(
                        session.query(
                            "select v, conf() as c from u where k = 1 group by v"
                        ).rows
                    )
                    if conf != expected_conf:
                        monotonic_violations.append(("conf", conf))
                    count = session.query(
                        "select count(*) as n from grow"
                    ).rows[0][0]
                    if count < last_count:
                        monotonic_violations.append(("count", last_count, count))
                    last_count = count
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        writer = store.session()
        writer.execute("create table grow (i integer, v integer)")
        readers = [store.session(read_only=True) for _ in range(self.READERS)]
        threads = [
            threading.Thread(target=reader_loop, args=(session,))
            for session in readers
        ]
        for thread in threads:
            thread.start()
        try:
            for i in range(self.WRITER_BATCHES):
                writer.execute(f"insert into grow values ({i}, {i * i})")
                if i % 10 == 0:
                    # Interleave an explicit transaction with rollback: its
                    # effects must never be visible to any reader snapshot.
                    writer.begin()
                    writer.execute(f"insert into grow values (-1, -1)")
                    writer.rollback()
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        assert not errors, errors
        assert not monotonic_violations, monotonic_violations
        final = writer.query("select count(*) as n from grow").rows[0][0]
        assert final == self.WRITER_BATCHES
        # No rolled-back row ever committed.
        assert writer.query("select count(*) as n from grow where i = -1").rows == [
            (0,)
        ]

    def test_concurrent_writers_distinct_tables(self, store):
        """Writers on distinct tables proceed in parallel without errors."""
        errors = []

        def writer_loop(index):
            try:
                session = store.session()
                session.execute(f"create table w{index} (a integer, p float)")
                for j in range(10):
                    session.execute(
                        f"insert into w{index} values ({j}, 0.5)"
                    )
                conf = session.query(
                    f"select a, conf() as c from "
                    f"(pick tuples from w{index} with probability p) r group by a"
                )
                assert len(conf.rows) == 10
                session.close()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=writer_loop, args=(i,)) for i in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        assert len(store.registry) >= 60  # 6 writers x 10 pick-tuples variables


class TestCheckpointGate:
    def test_same_thread_writer_session_blocks_checkpoint(self, tmp_path):
        """The LockManager keys ownership by thread, so a writer session
        on the checkpointing thread would not block the gate's exclusive
        acquire -- the checkpoint must detect it and refuse, or the
        snapshot would durably capture uncommitted (later rolled back)
        writes."""
        path = str(tmp_path / "store")
        store = MayBMS(path=path)
        store.execute("create table t (a integer)")
        session = store.session()
        session.begin()
        session.execute("insert into t values (42)")
        with pytest.raises(TransactionError):
            store.checkpoint()
        session.rollback()
        # After rollback the checkpoint proceeds and the row is gone.
        assert store.checkpoint()
        store.close()
        with MayBMS(path=path) as reopened:
            assert reopened.query("select * from t").rows == []

    def test_cross_thread_writer_session_blocks_checkpoint(self, tmp_path):
        path = str(tmp_path / "store")
        store = MayBMS(path=path)
        store.lock_timeout = 0.2
        store.execute("create table t (a integer)")
        session = store.session()
        started = threading.Event()
        release = threading.Event()

        def run_txn():
            session.begin()
            session.execute("insert into t values (42)")
            started.set()
            release.wait(timeout=10)
            session.rollback()

        thread = threading.Thread(target=run_txn)
        thread.start()
        started.wait(timeout=10)
        try:
            with pytest.raises(TransactionError):
                store.checkpoint()
        finally:
            release.set()
            thread.join()
        assert store.checkpoint()
        store.close()
        with MayBMS(path=path) as reopened:
            assert reopened.query("select * from t").rows == []

    def test_programmatic_transaction_blocks_checkpoint(self, tmp_path):
        """db.begin() + db.transaction.insert(...) never touches the
        statement locks, so the gate alone cannot see it; the checkpoint
        must still refuse to snapshot its uncommitted writes."""
        path = str(tmp_path / "store")
        store = MayBMS(path=path)
        store.execute("create table t (a integer)")
        store.execute("insert into t values (1)")
        session = store.session()
        session.begin()
        session.transaction.insert("t", (999,))
        with pytest.raises(TransactionError):
            store.checkpoint()
        session.rollback()
        assert store.checkpoint()
        store.close()
        with MayBMS(path=path) as reopened:
            assert reopened.query("select * from t").rows == [(1,)]


class TestDurableMultiSession:
    def test_group_commit_batches_under_concurrency(self, tmp_path):
        path = str(tmp_path / "store")
        store = MayBMS(path=path, group_commit=True)
        sessions = [store.session() for _ in range(8)]
        for i, session in enumerate(sessions):
            session.execute(f"create table t{i} (a integer)")

        def writer(session, i):
            for j in range(10):
                session.execute(f"insert into t{i} values ({j})")

        threads = [
            threading.Thread(target=writer, args=(session, i))
            for i, session in enumerate(sessions)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert store.storage is not None
        commits = store.storage.commit_count
        fsyncs = store.storage.fsync_count
        assert commits == 8 + 8 * 10
        # Group commit must have batched at least once under 8 writers.
        assert fsyncs < commits, (fsyncs, commits)
        store.close()
        # Everything recovered.
        with MayBMS(path=path) as reopened:
            for i in range(8):
                assert reopened.query(
                    f"select count(*) as n from t{i}"
                ).rows == [(10,)]

    def test_sessions_over_durable_store_recover(self, tmp_path):
        path = str(tmp_path / "store")
        store = MayBMS(path=path)
        writer = store.session()
        writer.execute("create table t (k integer, a integer, p float)")
        writer.execute("insert into t values (1, 1, 0.3), (1, 2, 0.7)")
        writer.execute("create table u as repair key k in t weight by p")
        before = sorted(
            writer.query("select a, conf() as c from u group by a").rows
        )
        store.close()
        with MayBMS(path=path) as reopened:
            after = sorted(
                reopened.query("select a, conf() as c from u group by a").rows
            )
        assert after == before


class TestCheckpointFairness:
    def test_checkpoint_not_starved_by_write_stream(self, tmp_path):
        """A saturating stream of writers each holds the store gate shared
        for its statement; without writer preference an explicit
        CHECKPOINT's exclusive gate acquisition can starve indefinitely.
        The LockManager queues new writers behind the waiting
        checkpointer, so the gate drains within a couple of statements."""
        store = MayBMS(path=str(tmp_path / "db"), checkpoint_every=0)
        store.execute("create table t (k integer, v integer)")
        stop = threading.Event()
        errors = []

        def write_loop(session):
            i = 0
            while not stop.is_set():
                try:
                    session.execute(f"insert into t values ({i}, {i})")
                except Exception as exc:  # pragma: no cover - fail the test
                    errors.append(exc)
                    return
                i += 1

        sessions = [store.session() for _ in range(4)]
        threads = [
            threading.Thread(target=write_loop, args=(s,), daemon=True)
            for s in sessions
        ]
        for thread in threads:
            thread.start()
        try:
            time.sleep(0.3)  # let the write stream saturate the gate
            started = time.monotonic()
            assert store.checkpoint() is True
            elapsed = time.monotonic() - started
            # Generous bound: the checkpointer only needs in-flight
            # statements to finish, not a lucky gap in the stream.
            assert elapsed < 10.0
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=5)
        assert not errors
        assert store.durability_stats()["checkpoints_total"] >= 1
        for session in sessions:
            session.close()
        store.close()


class TestMvccWriterLatency:
    def test_long_conf_never_times_out_writers(self):
        """The lock-free read guarantee, end to end: a reader session
        loops a multi-statement conf() workload while writer sessions
        commit on a *short* lock timeout.  Pre-MVCC, each read held
        shared table locks for its whole duration and a slow conf()
        would push writers into LockTimeout; with pinned snapshot reads
        the only contention left is the capture's brief gate flip, so
        no statement on either side may time out."""
        store = MayBMS(seed=23, lock_timeout=1.0)
        values = ", ".join(
            f"({g}, {k}, {1 + (g + k) % 5})"
            for g in range(40)
            for k in range(25)
        )
        store.execute_script(
            "create table big (g integer, k integer, w float);"
            f"insert into big values {values}"
        )
        stop = threading.Event()
        errors = []

        def reader_loop(session):
            try:
                while not stop.is_set():
                    session.query(
                        "select g, conf() as c from "
                        "(repair key g, k in big weight by w) r group by g"
                    )
            except Exception as exc:  # pragma: no cover - fail the test
                errors.append(exc)

        reader = store.session()
        writers = [store.session() for _ in range(3)]
        reader_thread = threading.Thread(
            target=reader_loop, args=(reader,), daemon=True
        )
        reader_thread.start()
        committed = 0
        try:
            deadline = time.monotonic() + 4.0
            i = 0
            while time.monotonic() < deadline:
                for writer in writers:
                    writer.execute(
                        f"insert into big values (1000, {i}, 1.0)"
                    )
                    committed += 1
                    i += 1
        except LockTimeout as exc:  # pragma: no cover - the regression
            pytest.fail(f"writer timed out behind a lock-free reader: {exc}")
        finally:
            stop.set()
            reader_thread.join(timeout=30)
        assert not errors, errors
        assert committed > 0
        stats = store.snapshot_stats()
        assert stats["snapshot_captures"] >= 1
        assert stats["snapshot_pins_held"] == 0
        for session in [reader] + writers:
            session.close()
        store.close()
