"""MVCC snapshot reads: pinned version sets across storage and sessions.

Read statements execute against an immutable pinned version set captured
by the store's :class:`~repro.engine.storage.SnapshotManager` -- zero
table locks.  These tests drive the one nondeterministic window
deterministically: ``SnapshotManager.on_capture`` fires after the pins
are taken and the store gate is released, *before* the statement
executes, so a test can commit a concurrent write exactly between the
pin and the read and assert the reader still sees the pinned version
bit-identically -- serial or parallel, batch or row engine.
"""

import pytest

from repro.db import MayBMS
from repro.engine import planner
from repro.errors import AnalysisError, MayBMSError

ENGINES = ["batch", "row"]

SELECT_QUERY = "select g, k, w from t where k < 7"
CONF_QUERY = (
    "select g, conf() as c from (repair key g, k in t weight by w) r group by g"
)


def build_store(**kwargs):
    kwargs.setdefault("seed", 13)
    db = MayBMS(**kwargs)
    values = ", ".join(
        f"({g}, {k}, {1 + (g + k) % 3})" for g in range(6) for k in range(10)
    )
    db.execute_script(
        "create table t (g integer, k integer, w float);"
        f"insert into t values {values}"
    )
    return db


def arm_one_shot(db, action):
    """Install an on_capture hook that runs ``action`` on the first
    capture only, then disarms itself (later statements in the test --
    including the verification reads -- must not retrigger it)."""

    def hook(pinned):
        db.snapshots.on_capture = None
        action(pinned)

    db.snapshots.on_capture = hook


class TestSnapshotIsolation:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("parallel", [False, True])
    def test_select_isolated_from_concurrent_commit(self, engine, parallel):
        kwargs = {"parallel_workers": 2, "parallel_min_rows": 0} if parallel else {}
        db = build_store(**kwargs)
        try:
            with planner.forced_engine(engine):
                expected = sorted(db.query(SELECT_QUERY).rows)
                writer = db.session()
                arm_one_shot(
                    db,
                    lambda pinned: writer.execute(
                        "insert into t values (99, 1, 1.0), (99, 2, 2.0)"
                    ),
                )
                during = sorted(db.query(SELECT_QUERY).rows)
                after = sorted(db.query(SELECT_QUERY).rows)
            # The read that overlapped the commit saw the pinned version,
            # bit-identical to the pre-write result ...
            assert during == expected
            # ... and the next statement pins the new version.
            assert len(after) == len(expected) + 2
        finally:
            db.close()

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("parallel", [False, True])
    def test_conf_isolated_from_concurrent_commit(self, engine, parallel):
        kwargs = {"parallel_workers": 2, "parallel_min_rows": 0} if parallel else {}
        db = build_store(**kwargs)
        try:
            with planner.forced_engine(engine):
                expected = sorted(db.query(CONF_QUERY).rows)
                writer = db.session()
                arm_one_shot(
                    db,
                    lambda pinned: writer.execute("delete from t where g = 0"),
                )
                during = sorted(db.query(CONF_QUERY).rows)
                after = sorted(db.query(CONF_QUERY).rows)
            assert during == expected
            assert len(after) == len(expected) - 1
        finally:
            db.close()

    def test_interleaved_writer_stream_never_tears_a_read(self):
        # A read pinned at version N must not see a *mix* of versions:
        # the invariant column (every row of one statement's insert
        # shares one g) would tear if a scan combined versions.
        db = build_store()
        try:
            writer = db.session()

            def commit_two_statements(pinned):
                writer.execute("insert into t values (50, 0, 1.0)")
                writer.execute("delete from t where g = 50")

            arm_one_shot(db, commit_two_statements)
            during = sorted(db.query("select g from t where g = 50").rows)
            assert during == []  # pinned before both writes
        finally:
            db.close()


class TestVersionChainReclamation:
    def test_release_reclaims_superseded_version(self):
        db = build_store()
        try:
            writer = db.session()
            arm_one_shot(
                db, lambda pinned: writer.execute("insert into t values (7, 7, 1.0)")
            )
            db.query(SELECT_QUERY)
            stats = db.snapshot_stats()
            # The pinned version was superseded mid-statement; releasing
            # the last pin reclaimed it from the chain.
            assert stats["snapshot_pins_held"] == 0
            assert stats["snapshot_versions_retained"] == 0
            assert stats["snapshot_versions_reclaimed"] >= 1
            assert db.catalog.retained_snapshot_versions() == 0
        finally:
            db.close()

    def test_killed_reader_releases_pins(self):
        # A statement that dies after capture (here: analysis rejects it,
        # which runs inside the executor, after the pins are taken) must
        # release its pins on the error path, reclaiming any version a
        # concurrent commit superseded meanwhile.
        db = build_store()
        try:
            writer = db.session()
            arm_one_shot(
                db, lambda pinned: writer.execute("insert into t values (8, 8, 1.0)")
            )
            with pytest.raises(MayBMSError):
                db.query("select no_such_column from t")
            stats = db.snapshot_stats()
            assert stats["snapshot_pins_held"] == 0
            assert stats["snapshot_versions_retained"] == 0
            assert stats["snapshot_versions_reclaimed"] >= 1
            assert db.catalog.retained_snapshot_versions() == 0
        finally:
            db.close()

    def test_failing_capture_hook_leaks_no_pins(self):
        db = build_store()
        try:
            arm_one_shot(db, lambda pinned: (_ for _ in ()).throw(RuntimeError("boom")))
            with pytest.raises(RuntimeError):
                db.query(SELECT_QUERY)
            assert db.snapshot_stats()["snapshot_pins_held"] == 0
            assert db.catalog.retained_snapshot_versions() == 0
        finally:
            db.close()


class TestLockFreeReads:
    def test_reader_holds_no_table_locks(self):
        # Between the capture and the read the statement holds nothing:
        # an exclusive acquisition of every referenced table (and the
        # store gate) succeeds instantly while the read is in flight.
        db = build_store()
        try:
            observed = {}

            def probe(pinned):
                db.locks.acquire_exclusive("t", timeout=0.1)
                db.locks.release_exclusive("t")
                db.locks.acquire_exclusive(db.snapshots.gate, timeout=0.1)
                db.locks.release_exclusive(db.snapshots.gate)
                observed["lock_free"] = True

            arm_one_shot(db, probe)
            db.query(SELECT_QUERY)
            assert observed.get("lock_free") is True
            assert db._held_locks == {}
        finally:
            db.close()

    def test_mvcc_off_reads_take_shared_locks(self):
        # The locked-mode baseline still exists: with mvcc off, no
        # capture happens and reads go through shared 2PL.
        db = build_store(mvcc=False)
        try:
            db.snapshots.on_capture = lambda pinned: pytest.fail(
                "mvcc=False must not capture snapshots"
            )
            db.query(SELECT_QUERY)
            assert db.snapshot_stats()["snapshot_captures"] == 0
        finally:
            db.close()


class TestDifferentialLockedVsMvcc:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_results_identical_mvcc_on_off(self, engine):
        mvcc_db = build_store(mvcc=True)
        locked_db = build_store(mvcc=False)
        try:
            with planner.forced_engine(engine):
                for query in (SELECT_QUERY, CONF_QUERY):
                    assert sorted(mvcc_db.query(query).rows) == sorted(
                        locked_db.query(query).rows
                    )
        finally:
            mvcc_db.close()
            locked_db.close()


class TestPinnedVersionSet:
    def test_repeated_pins_share_one_relation_object(self):
        # Pin-stable relation identity is the cache-reuse contract:
        # grouped-lineage and parallel-payload caches live on the
        # relation, so two statements pinned to the same version share
        # them for free.
        db = build_store()
        try:
            first = db.snapshots.capture(["t"])
            second = db.snapshots.capture(["t"])
            assert first.lookup("t")[1] is second.lookup("t")[1]
            assert first.versions == second.versions
            db.snapshots.release(first)
            db.snapshots.release(second)
            assert db.catalog.retained_snapshot_versions() == 0
        finally:
            db.close()

    def test_capture_skips_missing_tables(self):
        db = build_store()
        try:
            pinned = db.snapshots.capture(["t", "no_such"])
            assert len(pinned) == 1
            assert pinned.lookup("no_such") is None
            db.snapshots.release(pinned)
        finally:
            db.close()


class TestExplainSnapshots:
    def test_explain_reports_pinned_versions(self):
        db = build_store()
        try:
            explain = "\n".join(
                row[0] for row in db.query("explain " + SELECT_QUERY)
            )
            assert "snapshot: mvcc pinned t@v" in explain
        finally:
            db.close()

    def test_explain_omits_snapshot_line_when_locked(self):
        db = build_store(mvcc=False)
        try:
            explain = "\n".join(
                row[0] for row in db.query("explain " + SELECT_QUERY)
            )
            assert "snapshot: mvcc pinned" not in explain
        finally:
            db.close()


class TestSnapshotCountersOverSessions:
    def test_counters_flow_through_session_and_durability_stats(self, tmp_path):
        db = MayBMS(path=str(tmp_path / "store"))
        try:
            db.execute_script(
                "create table t (a integer); insert into t values (1), (2)"
            )
            session = db.session(read_only=True)
            session.query("select a from t")
            stats = session.snapshot_stats()
            assert stats["snapshot_captures"] >= 1
            durable = db.durability_stats()
            assert durable is not None
            assert durable["snapshot_captures"] == stats["snapshot_captures"]
        finally:
            db.close()
