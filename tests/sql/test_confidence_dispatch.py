"""SQL-level tests of the confidence dispatcher: EXPLAIN strategy
reporting, the facade tuning knobs, aconf argument validation, seeded
Monte-Carlo determinism, and the grouped-lineage cache."""

import random

import pytest

from repro.core import aggregates as agg
from repro.core.confidence.dispatch import ConfidenceDispatcher, DispatchPolicy
from repro.db import MayBMS
from repro.errors import AnalysisError, SqlError
from repro.sql.parser import parse_statement


@pytest.fixture
def db():
    session = MayBMS(seed=7)
    session.execute("create table ft (player text, init text, final text, p float)")
    session.execute(
        "insert into ft values "
        "('Bryant', 'F', 'F', 0.8), ('Bryant', 'F', 'M', 0.2), "
        "('Duncan', 'F', 'F', 0.7), ('Duncan', 'F', 'M', 0.3), "
        "('Nowitzki', 'M', 'M', 0.9), ('Nowitzki', 'M', 'F', 0.1)"
    )
    return session


CONF_QUERY = """
    select player, final, conf() as p
    from (repair key player, init in ft weight by p) r
    group by player, final
"""


def explain_text(db, sql):
    return "\n".join(row[0] for row in db.execute("explain " + sql).relation.rows)


class TestExplainStrategies:
    def test_grouped_conf_reports_strategy(self, db):
        text = explain_text(db, CONF_QUERY)
        assert "confidence fragment 1 [strategy=auto]:" in text
        assert "conf:" in text
        # Single-variable repair-key lineages are exact and cheap; they
        # must not fall back to Monte Carlo.
        assert "monte-carlo" not in text

    def test_aconf_reports_parameters(self, db):
        text = explain_text(
            db,
            CONF_QUERY.replace("conf()", "aconf(0.1, 0.05)"),
        )
        assert "aconf:" in text
        assert "epsilon=0.1" in text
        assert "delta=0.05" in text

    def test_tconf_reports_marginals(self, db):
        text = explain_text(db, "select player, tconf() as p from ft")
        assert "tconf:" in text
        assert "marginal" in text

    def test_forced_strategy_shows_in_explain(self, db):
        db.set_confidence_strategy("exact")
        text = explain_text(db, CONF_QUERY)
        assert "[strategy=exact]:" in text
        assert "exact" in text


class TestFacadeKnobs:
    def test_default_policy_is_auto(self, db):
        assert db.confidence_policy.strategy == "auto"

    def test_set_confidence_strategy(self, db):
        db.set_confidence_strategy("exact", exact_budget=123)
        assert db.confidence_policy.strategy == "exact"
        assert db.confidence_policy.exact_budget == 123
        # Results are unchanged: exact and auto agree on exact lineages.
        rows = dict(
            (row[0] + "/" + row[1], row[2]) for row in db.query(CONF_QUERY)
        )
        db.set_confidence_strategy("auto")
        rows_auto = dict(
            (row[0] + "/" + row[1], row[2]) for row in db.query(CONF_QUERY)
        )
        for key, value in rows.items():
            assert rows_auto[key] == pytest.approx(value)

    def test_budget_kept_unless_given_and_none_means_unbounded(self, db):
        db.set_confidence_strategy("auto", exact_budget=77)
        db.set_confidence_strategy("exact")  # budget untouched
        assert db.confidence_policy.exact_budget == 77
        db.set_confidence_strategy("auto", exact_budget=None)  # never degrade
        assert db.confidence_policy.exact_budget is None

    def test_env_strategy(self, monkeypatch):
        monkeypatch.setenv("REPRO_CONF_STRATEGY", "exact")
        session = MayBMS()
        assert session.confidence_policy.strategy == "exact"

    def test_invalid_strategy_rejected(self, db):
        from repro.errors import ConfidenceError

        with pytest.raises(ConfidenceError):
            db.set_confidence_strategy("nope")


class TestAconfValidation:
    @pytest.mark.parametrize(
        "call",
        [
            "aconf(0.0, 0.05)",
            "aconf(1.0, 0.05)",
            "aconf(0.1, 0)",
            "aconf(0.1, 1.5)",
            "aconf(-0.1, 0.05)",
            "aconf(p, 0.05)",
            "aconf('a', 0.05)",
        ],
    )
    def test_bad_parameters_rejected_at_analysis(self, db, call):
        sql = CONF_QUERY.replace("conf()", call)
        with pytest.raises(AnalysisError):
            db.executor.analyzer.analyze_statement(parse_statement(sql))
        with pytest.raises(SqlError):
            db.execute(sql)

    def test_valid_parameters_accepted(self, db):
        sql = CONF_QUERY.replace("conf()", "aconf(0.25, 0.1)")
        result = db.query(sql)
        assert len(result) > 0

    def test_signed_literal_accepted(self, db):
        # A redundant unary plus is still a literal.
        sql = CONF_QUERY.replace("conf()", "aconf(+0.25, 0.1)")
        assert len(db.query(sql)) > 0


class TestSeededDeterminism:
    def _aconf_rows(self, seed):
        session = MayBMS(seed=seed, confidence_strategy="monte-carlo")
        session.execute("create table t (k integer, v integer, w float)")
        rows = ", ".join(
            f"({i % 4}, {i}, {0.1 + (i % 7) * 0.1:.1f})" for i in range(16)
        )
        session.execute(f"insert into t values {rows}")
        return session.query(
            """
            select k, aconf(0.2, 0.1) as p
            from (repair key v in t weight by w) r
            group by k
            """
        ).rows

    def test_same_seed_reproduces_aconf(self):
        assert self._aconf_rows(123) == self._aconf_rows(123)

    def test_repro_seed_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEED", "55")
        assert MayBMS().seed == 55
        monkeypatch.delenv("REPRO_SEED")
        assert MayBMS().seed == 0
        assert MayBMS(seed=9).seed == 9


class TestLineageCache:
    def test_repeated_conf_hits_cache(self, db):
        urel = db.uncertain_query(
            "select * from (repair key player, init in ft weight by p) r"
        )
        first = agg.conf(urel, ["player"])
        cache = urel.relation._lineage_cache
        # One grouping entry (shared with the parallel path) plus one
        # lineage entry for this grouping.
        assert cache is not None and len(cache) == 2
        entries = list(cache.values())
        second = agg.conf(urel, ["player"])
        # Same cache entry objects: grouping and lineages were reused.
        after = list(urel.relation._lineage_cache.values())
        assert len(after) == len(entries)
        assert all(a is b for a, b in zip(after, entries))
        assert sorted(first.rows) == sorted(second.rows)

    def test_distinct_groupings_get_distinct_entries(self, db):
        urel = db.uncertain_query(
            "select * from (repair key player, init in ft weight by p) r"
        )
        agg.conf(urel, ["player"])
        agg.conf(urel, ["player", "final"])
        lineage_keys = [
            key
            for key in urel.relation._lineage_cache
            if key[0] != "groups"
        ]
        assert len(lineage_keys) == 2

    def test_stored_urelation_snapshot_caches_across_reads(self, db):
        db.execute(
            "create table picks as "
            "select * from (repair key player, init in ft weight by p) r"
        )
        first = db.urelation("picks")
        agg.conf(first, ["player"])
        again = db.urelation("picks")
        # Unchanged table -> same snapshot object -> cache carried over.
        assert again.relation is first.relation
        assert again.relation._lineage_cache

    def test_mutation_invalidates_via_fresh_snapshot(self, db):
        db.execute(
            "create table picks2 as "
            "select * from (repair key player, init in ft weight by p) r"
        )
        first = db.urelation("picks2")
        agg.conf(first, ["player"])
        db.execute("delete from picks2 where player = 'Bryant'")
        fresh = db.urelation("picks2")
        assert fresh.relation is not first.relation
        assert fresh.relation._lineage_cache is None


class TestDispatcherSharedAcrossQueries:
    def test_executor_dispatcher_reused(self, db):
        dispatcher = db.executor.dispatcher
        db.query(CONF_QUERY)
        assert db.executor.dispatcher is dispatcher
        assert isinstance(dispatcher, ConfidenceDispatcher)

    def test_conf_equals_forced_exact(self, db):
        auto = {(r[0], r[1]): r[2] for r in db.query(CONF_QUERY)}
        db.set_confidence_strategy("exact")
        exact = {(r[0], r[1]): r[2] for r in db.query(CONF_QUERY)}
        assert set(auto) == set(exact)
        for key in auto:
            assert auto[key] == pytest.approx(exact[key], abs=1e-12)
