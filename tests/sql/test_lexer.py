"""Tests for the SQL tokenizer."""

import pytest

from repro.errors import LexerError
from repro.sql.lexer import (
    END,
    FLOAT_LITERAL,
    IDENTIFIER,
    INTEGER_LITERAL,
    KEYWORD,
    OPERATOR,
    PUNCTUATION,
    STRING_LITERAL,
    tokenize,
)


def kinds(sql):
    return [t.kind for t in tokenize(sql)[:-1]]


def texts(sql):
    return [t.text for t in tokenize(sql)[:-1]]


class TestBasicTokens:
    def test_keywords_fold_case(self):
        tokens = tokenize("SELECT Select select")
        assert all(t.kind == KEYWORD and t.text == "select" for t in tokens[:-1])

    def test_identifiers_fold_case(self):
        assert texts("Player FT2") == ["player", "ft2"]
        assert kinds("Player FT2") == [IDENTIFIER, IDENTIFIER]

    def test_quoted_identifier_preserves_case(self):
        tokens = tokenize('"WeIrD Name"')
        assert tokens[0].kind == IDENTIFIER
        assert tokens[0].text == "WeIrD Name"

    def test_integer_and_float(self):
        assert kinds("42 3.14 .5 1e-3 2E+4") == [
            INTEGER_LITERAL,
            FLOAT_LITERAL,
            FLOAT_LITERAL,
            FLOAT_LITERAL,
            FLOAT_LITERAL,
        ]

    def test_number_then_dot_identifier(self):
        # "1.e" must not swallow the identifier: "1." is a float, e is ident...
        # our lexer reads 1. as FLOAT then e as IDENTIFIER.
        tokens = tokenize("r1.player")
        assert [t.kind for t in tokens[:-1]] == [IDENTIFIER, PUNCTUATION, IDENTIFIER]

    def test_string_literal(self):
        tokens = tokenize("'Bryant'")
        assert tokens[0].kind == STRING_LITERAL
        assert tokens[0].text == "Bryant"

    def test_string_escape_doubled_quote(self):
        assert tokenize("'it''s'")[0].text == "it's"

    def test_string_preserves_case(self):
        assert tokenize("'MixedCase'")[0].text == "MixedCase"

    def test_operators(self):
        assert texts("<= >= <> != = < > + - * / %") == [
            "<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/", "%",
        ]

    def test_punctuation(self):
        assert kinds("( ) , . ;") == [PUNCTUATION] * 5

    def test_end_token(self):
        assert tokenize("x")[-1].kind == END


class TestCommentsAndWhitespace:
    def test_line_comment(self):
        assert texts("select -- comment here\n 1") == ["select", "1"]

    def test_block_comment(self):
        assert texts("select /* anything \n multiline */ 1") == ["select", "1"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexerError):
            tokenize("/* forever")

    def test_unterminated_string(self):
        with pytest.raises(LexerError):
            tokenize("'oops")


class TestPositions:
    def test_line_numbers(self):
        tokens = tokenize("select\nfrom\nwhere")
        assert [t.line for t in tokens[:-1]] == [1, 2, 3]

    def test_column_numbers(self):
        tokens = tokenize("ab cd")
        assert tokens[0].column == 1
        assert tokens[1].column == 4

    def test_error_reports_position(self):
        with pytest.raises(LexerError) as exc:
            tokenize("select @")
        assert "line 1" in str(exc.value)


class TestUncertaintyKeywords:
    def test_repair_key_tokens(self):
        assert texts("repair key weight by") == ["repair", "key", "weight", "by"]
        assert kinds("repair key weight by") == [KEYWORD] * 4

    def test_pick_tuples_tokens(self):
        text = "pick tuples from t independently with probability 0.5"
        assert kinds(text) == (
            [KEYWORD] * 3 + [IDENTIFIER] + [KEYWORD] * 3 + [FLOAT_LITERAL]
        )

    def test_possible_is_keyword(self):
        assert kinds("possible") == [KEYWORD]

    def test_conf_is_identifier(self):
        # conf/aconf/tconf/esum/ecount are function names, not keywords.
        assert kinds("conf aconf tconf esum ecount argmax") == [IDENTIFIER] * 6
