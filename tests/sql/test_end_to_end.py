"""End-to-end reproduction tests: the paper's own queries and scenarios.

- Figure 1: the U-relation encoding of a 1-step random walk;
- Section 3 "Fitness prediction": the two verbatim SQL statements, checked
  against numpy matrix powers;
- Section 3 "Team management": skill availability probabilities;
- Section 3 "Performance prediction": recency-weighted expected points.
"""

import numpy as np
import pytest

from repro import MayBMS
from repro.datagen.markov import (
    FIGURE1_MATRIX,
    FIGURE1_STATES,
    figure1_relation,
    matrix_power_distribution,
)
from repro.datagen.nba import NBADataGenerator


@pytest.fixture
def db():
    session = MayBMS()
    session.create_table_from_relation("ft", figure1_relation())
    session.execute("create table states (player text, state text)")
    session.execute("insert into states values ('Bryant', 'F')")
    return session


class TestFigure1:
    def test_ft_relation_matches_figure(self, db):
        ft = db.table("ft")
        rows = {(r[1], r[2]): r[3] for r in ft}
        # The eight positive entries of the matrix (SL->SE is 0, omitted).
        assert len(ft) == 8
        assert rows[("F", "F")] == pytest.approx(0.8)
        assert rows[("SE", "SL")] == pytest.approx(0.3)
        assert ("SL", "SE") not in rows

    def test_one_step_walk_u_relation(self, db):
        """R2 of Figure 1: repair key on (Player, Init) produces one
        variable per Init group with the matrix row as its distribution."""
        urel = db.uncertain_query(
            "select * from (repair key player, init in ft weight by p) r2"
        )
        assert len(urel) == 8
        assert urel.cond_arity == 1
        # Three variables (one per Init state), as in the figure's x, y, z.
        variables = set()
        for _, condition in urel.rows_with_conditions():
            variables.update(condition.variables())
        assert len(variables) == 3
        # Marginals equal the matrix entries.
        for payload, condition in urel.rows_with_conditions():
            assert condition.probability(urel.registry) == pytest.approx(payload[3])

    def test_per_group_exclusivity(self, db):
        urel = db.uncertain_query(
            "select * from (repair key player, init in ft weight by p) r2"
        )
        by_init = {}
        for payload, condition in urel.rows_with_conditions():
            by_init.setdefault(payload[1], set()).update(condition.variables())
        # Same variable within a group, different across groups.
        assert all(len(vs) == 1 for vs in by_init.values())
        assert len(set.union(*by_init.values())) == 3


class TestSection3FitnessPrediction:
    def test_verbatim_queries_equal_matrix_cube(self, db):
        db.execute(
            """
            create table FT2 as
            select R1.Player, R1.Init, R2.Final, conf() as p from
            (repair key Player, Init in FT weight by p) R1,
            (repair key Player, Init in FT weight by p) R2, States S
            where R1.Player = S.Player and R1.Init = S.State
            and R1.Final = R2.Init and R1.Player = R2.Player
            group by R1.Player, R1.Init, R2.Final
            """
        )
        ft2 = db.table("ft2")
        m2 = FIGURE1_MATRIX @ FIGURE1_MATRIX
        index = {s: i for i, s in enumerate(FIGURE1_STATES)}
        assert len(ft2) == 3  # one row per Final, Init fixed to F by States
        for _, init, final, p in ft2:
            assert init == "F"
            assert p == pytest.approx(m2[index[init], index[final]])

        out = db.query(
            """
            select R1.Player, R2.Final as State, conf() as p from
            (repair key Player, Init in FT2 weight by p) R1,
            (repair key Player, Init in FT weight by p) R2
            where R1.Final = R2.Init and R1.Player = R2.Player
            group by R1.player, R2.Final
            """
        )
        expected = matrix_power_distribution(FIGURE1_MATRIX, 0, 3, FIGURE1_STATES)
        assert len(out) == 3
        for _, state, p in out:
            assert p == pytest.approx(expected[state], abs=1e-12)

    def test_walk_distribution_sums_to_one(self, db):
        db.execute(
            """
            create table ft2 as
            select R1.Player, R1.Init, R2.Final, conf() as p from
            (repair key Player, Init in FT weight by p) R1,
            (repair key Player, Init in FT weight by p) R2, States S
            where R1.Player = S.Player and R1.Init = S.State
            and R1.Final = R2.Init and R1.Player = R2.Player
            group by R1.Player, R1.Init, R2.Final
            """
        )
        total = sum(r[3] for r in db.table("ft2"))
        assert total == pytest.approx(1.0)

    @pytest.mark.parametrize("steps", [2, 3, 4])
    def test_multi_player_walks(self, steps):
        """Random walks for a whole synthetic roster at once."""
        gen = NBADataGenerator(seed=7, n_players=4)
        db = MayBMS()
        db.create_table_from_relation("ft", gen.fitness_transitions_relation())
        db.create_table_from_relation("states", gen.initial_states_relation())

        db.execute(
            """
            create table walk as
            select R1.Player, R1.Init, R2.Final, conf() as p from
            (repair key Player, Init in FT weight by p) R1,
            (repair key Player, Init in FT weight by p) R2, States S
            where R1.Player = S.Player and R1.Init = S.State
            and R1.Final = R2.Init and R1.Player = R2.Player
            group by R1.Player, R1.Init, R2.Final
            """
        )
        for _ in range(steps - 2):
            db.execute(
                """
                create table walk_next as
                select R1.Player, R1.Init, R2.Final, conf() as p from
                (repair key Player, Init in walk weight by p) R1,
                (repair key Player, Init in FT weight by p) R2
                where R1.Final = R2.Init and R1.Player = R2.Player
                group by R1.Player, R1.Init, R2.Final
                """
            )
            db.execute("drop table walk")
            db.execute("create table walk as select * from walk_next")
            db.execute("drop table walk_next")

        result = db.table("walk")
        for player in gen.players:
            truth = gen.fitness_ground_truth(player, steps)
            rows = {r[2]: r[3] for r in result if r[0] == player.name}
            for state, probability in rows.items():
                assert probability == pytest.approx(truth[state], abs=1e-9)


class TestSection3TeamManagement:
    @pytest.fixture
    def team_db(self):
        gen = NBADataGenerator(seed=2009, n_players=10)
        db = MayBMS()
        db.create_table_from_relation("availability", gen.availability_relation())
        db.create_table_from_relation("skills", gen.skills_relation())
        return db, gen

    def test_skill_availability_probabilities(self, team_db):
        """P(some available player has skill s), per skill -- computed with
        pick tuples + join + conf, checked against the closed form."""
        db, gen = team_db
        result = db.query(
            """
            select s.skill, conf() as p
            from (pick tuples from availability independently
                  with probability p) a, skills s
            where a.player = s.player
            group by s.skill
            """
        )
        truth = gen.skill_availability_ground_truth()
        assert len(result) > 0
        for skill, p in result:
            assert p == pytest.approx(truth[skill], abs=1e-9)

    def test_layoff_what_if(self, team_db):
        """Lay off the most expensive player; skill availability must be
        recomputable on the reduced roster (the manager's what-if)."""
        db, gen = team_db
        expensive = max(gen.players, key=lambda p: p.salary_millions).name
        db.execute(f"delete from availability where player = '{expensive}'")
        result = db.query(
            """
            select s.skill, conf() as p
            from (pick tuples from availability independently
                  with probability p) a, skills s
            where a.player = s.player
            group by s.skill
            """
        )
        for skill, p in result:
            assert 0.0 <= p <= 1.0


class TestSection3PerformancePrediction:
    def test_recency_weighted_expected_points(self):
        gen = NBADataGenerator(seed=5, n_players=6)
        db = MayBMS()
        db.create_table_from_relation("points", gen.recent_points_relation())
        db.create_table_from_relation("weights", gen.recency_weights_relation())
        # Hypothesis space: which game's performance repeats? weight by
        # recency; predicted points = esum over the weighted choice.
        result = db.query(
            """
            select r.player, esum(r.points * w.w) as predicted
            from points r, weights w
            where r.game = w.game
            group by r.player
            """
        )
        truth = gen.expected_points_ground_truth()
        for player, predicted in result:
            assert predicted == pytest.approx(truth[player], rel=1e-9)

    def test_prediction_as_repair_key_expectation(self):
        """Alternative encoding: ``repair key player`` over the weighted
        join picks one recent game per player (weight = recency), and
        ``esum(points)`` of that choice is the same weighted average."""
        gen = NBADataGenerator(seed=5, n_players=4)
        db = MayBMS()
        db.create_table_from_relation("points", gen.recent_points_relation())
        db.create_table_from_relation("weights", gen.recency_weights_relation())
        result = db.query(
            """
            select r.player, esum(r.points) as predicted from
            (repair key player in
               (select p.player, p.points, w.w
                from points p, weights w where p.game = w.game)
               weight by w) r
            group by r.player
            """
        )
        truth = gen.expected_points_ground_truth()
        assert len(result) == 4
        for player, predicted in result:
            assert predicted == pytest.approx(truth[player], rel=1e-9)
