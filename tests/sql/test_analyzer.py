"""Tests for semantic analysis: certainty inference and Section 2.2's
restrictions."""

import pytest

from repro import MayBMS
from repro.errors import (
    AnalysisError,
    UncertainAggregateError,
    UncertainDistinctError,
)
from repro.sql.analyzer import Analyzer, aggregate_kind
from repro.sql.parser import parse_statement


@pytest.fixture
def db():
    session = MayBMS()
    session.execute("create table certain_t (a integer, w float)")
    session.execute("insert into certain_t values (1, 1.0), (2, 3.0)")
    session.execute(
        "create table uncertain_t as "
        "select * from (repair key in certain_t weight by w) r"
    )
    return session


def analyze(db, sql):
    analyzer = Analyzer(db.catalog)
    statement = parse_statement(sql)
    analyzer.analyze_statement(statement)
    return analyzer, statement


def is_certain(db, sql):
    analyzer = Analyzer(db.catalog)
    return analyzer.query_is_certain(parse_statement(sql))


class TestCertaintyInference:
    def test_plain_table_certain(self, db):
        assert is_certain(db, "select a from certain_t")

    def test_urelation_table_uncertain(self, db):
        assert not is_certain(db, "select a from uncertain_t")

    def test_repair_key_uncertain(self, db):
        assert not is_certain(db, "repair key a in certain_t")

    def test_conf_makes_certain(self, db):
        assert is_certain(db, "select a, conf() as p from uncertain_t group by a")

    def test_possible_makes_certain(self, db):
        assert is_certain(db, "select possible a from uncertain_t")

    def test_esum_makes_certain(self, db):
        assert is_certain(db, "select esum(a) as e from uncertain_t")

    def test_tconf_makes_certain(self, db):
        assert is_certain(db, "select a, tconf() as p from uncertain_t")

    def test_union_propagates(self, db):
        assert not is_certain(
            db, "select a from certain_t union all select a from uncertain_t"
        )
        assert is_certain(
            db, "select a from certain_t union all select a from certain_t"
        )

    def test_subquery_propagates(self, db):
        assert not is_certain(db, "select a from (select a from uncertain_t) s")

    def test_uncertain_in_subquery_propagates(self, db):
        assert not is_certain(
            db,
            "select a from certain_t where a in (select a from uncertain_t)",
        )


class TestRestrictions:
    def test_sum_on_uncertain_rejected(self, db):
        with pytest.raises(UncertainAggregateError):
            analyze(db, "select sum(a) as s from uncertain_t")

    def test_count_on_uncertain_rejected(self, db):
        with pytest.raises(UncertainAggregateError):
            analyze(db, "select count(*) as n from uncertain_t")

    def test_sum_on_certain_allowed(self, db):
        analyze(db, "select sum(a) as s from certain_t")

    def test_esum_on_uncertain_allowed(self, db):
        analyze(db, "select esum(a) as e from uncertain_t")

    def test_distinct_on_uncertain_rejected(self, db):
        with pytest.raises(UncertainDistinctError):
            analyze(db, "select distinct a from uncertain_t")

    def test_distinct_on_certain_allowed(self, db):
        analyze(db, "select distinct a from certain_t")

    def test_union_dedup_on_uncertain_rejected(self, db):
        with pytest.raises(UncertainDistinctError):
            analyze(
                db,
                "select a from uncertain_t union select a from uncertain_t",
            )

    def test_union_all_on_uncertain_allowed(self, db):
        analyze(
            db, "select a from uncertain_t union all select a from uncertain_t"
        )

    def test_repair_key_on_urelation_rejected(self, db):
        with pytest.raises(AnalysisError):
            analyze(db, "repair key a in uncertain_t")

    def test_pick_tuples_on_urelation_rejected(self, db):
        with pytest.raises(AnalysisError):
            analyze(db, "select * from (pick tuples from uncertain_t) s")

    def test_repair_key_on_uncertain_subquery_rejected(self, db):
        with pytest.raises(AnalysisError):
            analyze(db, "repair key a in (select a from uncertain_t)")

    def test_negative_uncertain_in_subquery_rejected(self, db):
        with pytest.raises(AnalysisError):
            analyze(
                db,
                "select a from certain_t where a not in (select a from uncertain_t)",
            )

    def test_not_wrapped_uncertain_in_rejected(self, db):
        with pytest.raises(AnalysisError):
            analyze(
                db,
                "select a from certain_t where not (a in (select a from uncertain_t))",
            )

    def test_double_negation_is_positive(self, db):
        analyze(
            db,
            "select a from certain_t where not (a not in (select a from uncertain_t))",
        )

    def test_certain_not_in_allowed(self, db):
        analyze(
            db,
            "select a from certain_t where a not in (select a from certain_t)",
        )

    def test_order_by_on_uncertain_rejected(self, db):
        with pytest.raises(AnalysisError):
            analyze(db, "select a from uncertain_t order by a")

    def test_order_by_on_conf_result_allowed(self, db):
        analyze(
            db,
            "select a, conf() as p from uncertain_t group by a order by p desc",
        )

    def test_mixing_aggregate_kinds_rejected(self, db):
        with pytest.raises(AnalysisError):
            analyze(db, "select sum(a) as s, conf() as p from certain_t")

    def test_tconf_with_group_by_rejected(self, db):
        with pytest.raises(AnalysisError):
            analyze(db, "select a, tconf() as p from uncertain_t group by a")

    def test_non_grouped_select_item_rejected(self, db):
        with pytest.raises(AnalysisError):
            analyze(db, "select a, w, conf() as p from uncertain_t group by a")

    def test_aggregate_in_where_rejected(self, db):
        with pytest.raises(AnalysisError):
            analyze(db, "select a from certain_t where sum(a) > 1")

    def test_having_without_group_by_rejected(self, db):
        with pytest.raises(AnalysisError):
            analyze(db, "select a from certain_t having a > 1")

    def test_unknown_function_rejected(self, db):
        with pytest.raises(AnalysisError):
            analyze(db, "select frobnicate(a) as x from certain_t")

    def test_unknown_table_rejected(self, db):
        with pytest.raises(AnalysisError):
            analyze(db, "select a from nonexistent")

    def test_nested_aggregate_rejected(self, db):
        with pytest.raises(AnalysisError):
            analyze(db, "select sum(count(*)) as x from certain_t group by a")


class TestAggregateArity:
    @pytest.mark.parametrize(
        "sql",
        [
            "select conf(a) as p from uncertain_t group by a",
            "select aconf(0.1) as p from uncertain_t group by a",
            "select esum() as e from uncertain_t",
            "select argmax(a) as m from certain_t",
            "select sum(a, w) as s from certain_t",
        ],
    )
    def test_bad_arity_rejected(self, db, sql):
        with pytest.raises(AnalysisError):
            analyze(db, sql)

    def test_aggregate_kind_classification(self):
        assert aggregate_kind("sum") == "standard"
        assert aggregate_kind("CONF") == "uncertain"
        assert aggregate_kind("esum") == "uncertain"
        assert aggregate_kind("abs") is None
