"""Tests for the EXPLAIN statement (parser -> analyzer -> executor)."""

import pytest

from repro.db import MayBMS
from repro.engine import planner
from repro.errors import AnalysisError
from repro.sql import ast_nodes as ast
from repro.sql.parser import parse_statement


@pytest.fixture
def db():
    session = MayBMS()
    session.execute("create table t (a integer, b float)")
    session.execute("insert into t values (1, 0.5), (2, 0.25), (3, 0.75)")
    return session


class TestParsing:
    def test_explain_select(self):
        statement = parse_statement("explain select a from t")
        assert isinstance(statement, ast.Explain)
        assert isinstance(statement.query, ast.SelectQuery)

    def test_explain_repair_key(self):
        statement = parse_statement("explain repair key a in t weight by b")
        assert isinstance(statement, ast.Explain)
        assert isinstance(statement.query, ast.RepairKeyRef)

    def test_explain_still_a_table_name(self, db):
        # "explain" is a reserved keyword now; a table of that name must be
        # quoted, but ordinary statements are unaffected.
        assert len(db.query("select a from t")) == 3


class TestExecution:
    def test_explain_returns_plan_relation(self, db):
        result = db.execute("explain select a from t where b > 0.3")
        relation = result.relation
        assert relation.schema.names == ["plan"]
        text = "\n".join(row[0] for row in relation.rows)
        assert "Select[" in text
        assert "Scan(" in text
        assert "fragment 1" in text

    def test_explain_reports_default_engine(self, db):
        text = "\n".join(
            row[0] for row in db.execute("explain select a from t").relation.rows
        )
        assert f"default engine: {planner.get_default_engine()}" in text

    def test_explain_reports_forced_engine(self, db):
        with planner.forced_engine("row"):
            text = "\n".join(
                row[0]
                for row in db.execute("explain select a from t").relation.rows
            )
        assert "[engine=row]" in text

    def test_explain_uncertain_query(self, db):
        result = db.execute(
            "explain select a, conf() as p from (repair key a in t weight by b) r "
            "group by a"
        )
        text = "\n".join(row[0] for row in result.relation.rows)
        assert "result: relation" in text
        assert "fragment" in text

    def test_explain_pipeline_fragments_in_execution_order(self, db):
        result = db.execute(
            "explain select a from t where b > 0.1 order by a desc limit 2"
        )
        text = "\n".join(row[0] for row in result.relation.rows)
        # Filter runs before the final projection and sort fragments.
        assert text.index("Select[") < text.index("Project[")

    def test_explain_analyzes_the_query(self, db):
        with pytest.raises(AnalysisError):
            db.execute("explain select a from no_such_table")

    def test_explain_join_shows_join_node(self, db):
        db.execute("create table u (a integer, label text)")
        db.execute("insert into u values (1, 'one'), (2, 'two')")
        result = db.execute(
            "explain select t.a, u.label from t, u where t.a = u.a"
        )
        text = "\n".join(row[0] for row in result.relation.rows)
        assert "Join" in text
