"""Regressions for aliased self-joins.

``SELECT x.a, y.a FROM t AS x, t AS y WHERE x.a = y.a`` used to raise
``DuplicateColumnError: duplicate column 'a' in schema`` even with fully
qualified columns -- the output schema dropped the table aliases.  The
paper's example queries are self-joins over U-relations, so every select
shape (plain projection, star expansion, standard aggregation,
conf/tconf aggregation, ordering) must handle colliding output names on
both engines by qualifying the output columns with their table alias.
"""

import pytest

from repro.db import MayBMS
from repro.engine import planner
from repro.errors import DuplicateColumnError


@pytest.fixture(params=["row", "batch"])
def engine(request):
    with planner.forced_engine(request.param):
        yield request.param


@pytest.fixture
def db(engine):
    db = MayBMS(seed=7)
    db.execute("create table t (a integer, b integer)")
    db.execute("insert into t values (1, 10), (2, 20), (1, 30)")
    db.execute("create table w (k integer, v integer, p float)")
    db.execute(
        "insert into w values (1, 1, 0.4), (1, 2, 0.6), (2, 1, 0.5), (2, 2, 0.5)"
    )
    db.execute("create table u as repair key k in w weight by p")
    return db


class TestCertainSelfJoin:
    def test_qualified_projection(self, db):
        result = db.query(
            "select x.a, y.a from t as x, t as y where x.a = y.a"
        )
        assert sorted(result.rows) == [(1, 1), (1, 1), (1, 1), (1, 1), (2, 2)]
        assert [c.qualified_name for c in result.schema] == ["x.a", "y.a"]
        # Bare names survive for display/consumers that use .names.
        assert result.schema.names == ["a", "a"]

    def test_star_expansion(self, db):
        result = db.query(
            "select * from t as x, t as y where x.a = y.a and x.b < y.b"
        )
        assert [c.qualified_name for c in result.schema] == [
            "x.a",
            "x.b",
            "y.a",
            "y.b",
        ]
        assert sorted(result.rows) == [(1, 10, 1, 30)]

    def test_qualified_star(self, db):
        result = db.query(
            "select x.*, y.b from t as x, t as y where x.a = y.a and x.b < y.b"
        )
        assert result.schema.names == ["a", "b", "b"]
        assert sorted(result.rows) == [(1, 10, 30)]

    def test_aliases_keep_unqualified_outputs(self, db):
        result = db.query(
            "select x.a as left_a, y.a as right_a from t x, t y "
            "where x.a = y.a and x.b < y.b"
        )
        assert [c.qualified_name for c in result.schema] == ["left_a", "right_a"]

    def test_order_by_qualified(self, db):
        result = db.query(
            "select x.a, y.a from t x, t y where x.b < y.b "
            "order by x.a desc, y.a"
        )
        assert result.rows == [(2, 1), (1, 1), (1, 2)]

    def test_standard_aggregation(self, db):
        result = db.query(
            "select x.a, y.a, count(*) as n from t x, t y "
            "where x.a = y.a group by x.a, y.a"
        )
        assert sorted(result.rows) == [(1, 1, 4), (2, 2, 1)]
        assert [c.qualified_name for c in result.schema] == ["x.a", "y.a", "n"]

    def test_distinct(self, db):
        result = db.query(
            "select distinct x.a, y.a from t x, t y where x.a = y.a"
        )
        assert sorted(result.rows) == [(1, 1), (2, 2)]

    def test_same_side_duplicate_still_rejected(self, db):
        # select x.a, x.a collides even with qualifiers -- the schema
        # cannot hold two x.a columns; the historical error stands.
        with pytest.raises(DuplicateColumnError):
            db.query("select x.a, x.a from t x")


class TestUncertainSelfJoin:
    def test_conf_over_self_join(self, db):
        result = db.query(
            "select x.v, y.v, conf() as c from u x, u y "
            "where x.k = 1 and y.k = 2 group by x.v, y.v"
        )
        rows = sorted((a, b, round(c, 9)) for a, b, c in result.rows)
        assert rows == [
            (1, 1, 0.2),
            (1, 2, 0.2),
            (2, 1, 0.3),
            (2, 2, 0.3),
        ]
        assert [c.qualified_name for c in result.schema] == ["x.v", "y.v", "c"]

    def test_tconf_over_self_join(self, db):
        result = db.query(
            "select x.v, y.v, tconf() as c from u x, u y "
            "where x.k = 1 and y.k = 2"
        )
        rows = sorted((a, b, round(c, 9)) for a, b, c in result.rows)
        assert rows == [(1, 1, 0.2), (1, 2, 0.2), (2, 1, 0.3), (2, 2, 0.3)]

    def test_projection_without_aggregate(self, db):
        urel = db.uncertain_query(
            "select x.v, y.v from u x, u y where x.k = 1 and y.k = 2"
        )
        assert urel.payload_arity == 2
        assert [c.qualified_name for c in urel.payload_schema] == ["x.v", "y.v"]
        # Consistent condition combinations: 2 x 2 alternatives.
        assert len(urel.relation) == 4

    def test_possible_over_self_join(self, db):
        result = db.query(
            "select possible x.v, y.v from u x, u y where x.k = 1 and y.k = 2"
        )
        assert sorted(result.rows) == [(1, 1), (1, 2), (2, 1), (2, 2)]

    def test_inconsistent_worlds_filtered(self, db):
        # Joining u with itself on the same key: only consistent variable
        # assignments survive (x.v = y.v within one world).
        result = db.query(
            "select x.v, y.v, conf() as c from u x, u y "
            "where x.k = 1 and y.k = 1 group by x.v, y.v"
        )
        rows = sorted((a, b, round(c, 9)) for a, b, c in result.rows)
        assert rows == [(1, 1, 0.4), (2, 2, 0.6)]


class TestRowBatchAgreement:
    """The fix must behave identically on both engines."""

    QUERIES = [
        "select x.a, y.a from t x, t y where x.a = y.a",
        "select * from t x, t y where x.a = y.a and x.b < y.b",
        "select x.a, y.a, count(*) as n from t x, t y where x.a = y.a "
        "group by x.a, y.a",
        "select x.v, y.v, conf() as c from u x, u y where x.k = 1 and y.k = 2 "
        "group by x.v, y.v",
    ]

    @pytest.mark.parametrize("sql", QUERIES)
    def test_agreement(self, sql):
        outputs = []
        for engine_name in ("row", "batch"):
            with planner.forced_engine(engine_name):
                db = MayBMS(seed=3)
                db.execute("create table t (a integer, b integer)")
                db.execute("insert into t values (1, 10), (2, 20), (1, 30)")
                db.execute("create table w (k integer, v integer, p float)")
                db.execute(
                    "insert into w values (1, 1, 0.4), (1, 2, 0.6), "
                    "(2, 1, 0.5), (2, 2, 0.5)"
                )
                db.execute("create table u as repair key k in w weight by p")
                result = db.query(sql)
                outputs.append(
                    (sorted(result.rows), [c.qualified_name for c in result.schema])
                )
        assert outputs[0] == outputs[1]
