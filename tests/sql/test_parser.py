"""Tests for the SQL parser (AST shapes, including the paper's syntax)."""

import pytest

from repro.errors import ParseError
from repro.sql import ast_nodes as ast
from repro.sql.parser import parse_statement, parse_statements


class TestSelectCore:
    def test_simple_select(self):
        q = parse_statement("select a, b from t")
        assert isinstance(q, ast.SelectQuery)
        assert len(q.items) == 2
        assert q.from_items == (ast.TableRef("t"),)

    def test_select_star(self):
        q = parse_statement("select * from t")
        assert isinstance(q.items[0].expr, ast.SqlStar)

    def test_select_qualified_star(self):
        q = parse_statement("select r.* from t r")
        assert q.items[0].expr == ast.SqlStar("r")

    def test_aliases(self):
        q = parse_statement("select a as x, b y from t as u")
        assert q.items[0].alias == "x"
        assert q.items[1].alias == "y"
        assert q.from_items[0].alias == "u"

    def test_where_group_order_limit(self):
        q = parse_statement(
            "select a from t where a > 1 group by a having count(*) > 2 "
            "order by a desc limit 10 offset 5"
        )
        assert q.where is not None
        assert len(q.group_by) == 1
        assert q.having is not None
        assert q.order_by[0][1] is False  # descending
        assert q.limit == 10 and q.offset == 5

    def test_distinct_and_possible(self):
        assert parse_statement("select distinct a from t").distinct
        assert parse_statement("select possible a from t").possible

    def test_subquery_in_from_requires_alias(self):
        with pytest.raises(ParseError):
            parse_statement("select a from (select a from t)")

    def test_subquery_with_alias(self):
        q = parse_statement("select a from (select a from t) s")
        assert isinstance(q.from_items[0], ast.SubqueryRef)
        assert q.from_items[0].alias == "s"

    def test_union(self):
        q = parse_statement("select a from t union all select b from u")
        assert isinstance(q, ast.UnionQuery)
        assert q.all

    def test_union_distinct(self):
        q = parse_statement("select a from t union select b from u")
        assert not q.all

    def test_select_without_from(self):
        q = parse_statement("select 1 + 1 as two")
        assert q.from_items == ()


class TestExpressions:
    def parse_expr(self, text):
        return parse_statement(f"select {text} from t").items[0].expr

    def test_precedence_arithmetic(self):
        e = self.parse_expr("1 + 2 * 3")
        assert isinstance(e, ast.SqlBinary) and e.op == "+"
        assert isinstance(e.right, ast.SqlBinary) and e.right.op == "*"

    def test_precedence_bool(self):
        q = parse_statement("select a from t where x = 1 or y = 2 and z = 3")
        e = q.where
        assert e.op == "or"
        assert e.right.op == "and"

    def test_not_binds_tighter_than_and(self):
        q = parse_statement("select a from t where not x = 1 and y = 2")
        assert q.where.op == "and"
        assert isinstance(q.where.left, ast.SqlUnary)

    def test_parenthesized(self):
        e = self.parse_expr("(1 + 2) * 3")
        assert e.op == "*"
        assert e.left.op == "+"

    def test_unary_minus(self):
        e = self.parse_expr("-a")
        assert isinstance(e, ast.SqlUnary) and e.op == "-"

    def test_is_null(self):
        q = parse_statement("select a from t where a is null")
        assert isinstance(q.where, ast.SqlIsNull) and not q.where.negated
        q2 = parse_statement("select a from t where a is not null")
        assert q2.where.negated

    def test_in_list(self):
        q = parse_statement("select a from t where a in (1, 2, 3)")
        assert isinstance(q.where, ast.SqlInList)
        assert len(q.where.items) == 3

    def test_not_in(self):
        q = parse_statement("select a from t where a not in (1)")
        assert q.where.negated

    def test_in_subquery(self):
        q = parse_statement("select a from t where a in (select b from u)")
        assert isinstance(q.where, ast.SqlInQuery)

    def test_between(self):
        q = parse_statement("select a from t where a between 1 and 10")
        assert isinstance(q.where, ast.SqlBetween)

    def test_case(self):
        e = self.parse_expr("case when a > 0 then 'pos' else 'neg' end")
        assert isinstance(e, ast.SqlCase)
        assert len(e.branches) == 1 and e.default is not None

    def test_cast(self):
        e = self.parse_expr("cast(a as float)")
        assert isinstance(e, ast.SqlCast) and e.type_name == "float"

    def test_literals(self):
        assert self.parse_expr("null") == ast.SqlLiteral(None)
        assert self.parse_expr("true") == ast.SqlLiteral(True)
        assert self.parse_expr("3.5") == ast.SqlLiteral(3.5)
        assert self.parse_expr("'txt'") == ast.SqlLiteral("txt")

    def test_function_calls(self):
        e = self.parse_expr("conf()")
        assert isinstance(e, ast.SqlFunction) and e.name == "conf" and e.args == ()
        e2 = self.parse_expr("aconf(0.1, 0.05)")
        assert len(e2.args) == 2
        e3 = self.parse_expr("count(*)")
        assert e3.star
        e4 = self.parse_expr("count(distinct a)")
        assert e4.distinct
        e5 = self.parse_expr("argmax(player, score)")
        assert len(e5.args) == 2

    def test_string_concat(self):
        e = self.parse_expr("a || b")
        assert e.op == "||"


class TestUncertaintyConstructs:
    def test_repair_key_from_item(self):
        q = parse_statement(
            "select * from (repair key player, init in ft weight by p) r1"
        )
        item = q.from_items[0]
        assert isinstance(item, ast.RepairKeyRef)
        assert [c.name for c in item.key_columns] == ["player", "init"]
        assert item.alias == "r1"
        assert item.weight == ast.SqlColumn("p")
        assert item.source == ast.TableRef("ft")

    def test_repair_key_empty_key(self):
        q = parse_statement("select * from (repair key in t weight by w) r")
        assert q.from_items[0].key_columns == ()

    def test_repair_key_no_weight(self):
        q = parse_statement("select * from (repair key k in t) r")
        assert q.from_items[0].weight is None

    def test_repair_key_subquery_source(self):
        q = parse_statement(
            "select * from (repair key k in (select k from t where k > 0)) r"
        )
        assert isinstance(q.from_items[0].source, ast.SelectQuery)

    def test_repair_key_standalone_statement(self):
        q = parse_statement("repair key k in t weight by w")
        assert isinstance(q, ast.RepairKeyRef)

    def test_pick_tuples(self):
        q = parse_statement(
            "select * from (pick tuples from t independently with probability 0.3) s"
        )
        item = q.from_items[0]
        assert isinstance(item, ast.PickTuplesRef)
        assert item.independently
        assert item.probability == ast.SqlLiteral(0.3)
        assert item.alias == "s"

    def test_pick_tuples_defaults(self):
        q = parse_statement("select * from (pick tuples from t) s")
        item = q.from_items[0]
        assert not item.independently and item.probability is None

    def test_paper_ft2_query_parses(self):
        """The exact first statement of Section 3."""
        stmt = parse_statement(
            """
            create table FT2 as
            select R1.Player, R1.Init, R2.Final, conf() as p from
            (repair key Player, Init in FT weight by p) R1,
            (repair key Player, Init in FT weight by p) R2, States S
            where R1.Player = S.Player and R1.Init = S.State
            and R1.Final = R2.Init and R1.Player = R2.Player
            group by R1.Player, R1.Init, R2.Final
            """
        )
        assert isinstance(stmt, ast.CreateTableAs)
        query = stmt.query
        assert len(query.from_items) == 3
        assert isinstance(query.from_items[0], ast.RepairKeyRef)
        assert isinstance(query.from_items[2], ast.TableRef)
        assert len(query.group_by) == 3

    def test_mixed_case_group_by(self):
        """The paper writes "group by R1.player" with lowercase p."""
        q = parse_statement(
            "select R1.Player from t R1 group by R1.player"
        )
        assert q.group_by[0] == ast.SqlColumn("player", "r1")


class TestStatements:
    def test_create_table(self):
        s = parse_statement("create table t (a integer, b text, p float)")
        assert isinstance(s, ast.CreateTable)
        assert s.columns == (("a", "integer"), ("b", "text"), ("p", "float"))

    def test_create_table_if_not_exists(self):
        s = parse_statement("create table if not exists t (a int)")
        assert s.if_not_exists

    def test_create_table_varchar_size_swallowed(self):
        s = parse_statement("create table t (a varchar(30))")
        assert s.columns[0][1] == "varchar"

    def test_drop_table(self):
        s = parse_statement("drop table if exists t")
        assert isinstance(s, ast.DropTable) and s.if_exists

    def test_insert_values(self):
        s = parse_statement("insert into t values (1, 'x'), (2, 'y')")
        assert isinstance(s, ast.InsertValues)
        assert len(s.rows) == 2

    def test_insert_with_columns(self):
        s = parse_statement("insert into t (a, b) values (1, 2)")
        assert s.columns == ("a", "b")

    def test_insert_query(self):
        s = parse_statement("insert into t select * from u")
        assert isinstance(s, ast.InsertQuery)

    def test_update(self):
        s = parse_statement("update t set a = 1, b = b + 1 where c = 'x'")
        assert isinstance(s, ast.Update)
        assert len(s.assignments) == 2
        assert s.where is not None

    def test_delete(self):
        s = parse_statement("delete from t where a < 0")
        assert isinstance(s, ast.Delete)

    def test_transactions(self):
        for action in ("begin", "commit", "rollback"):
            s = parse_statement(action)
            assert isinstance(s, ast.TransactionStatement)
            assert s.action == action

    def test_statement_batch(self):
        statements = parse_statements(
            "create table t (a int); insert into t values (1); select a from t;"
        )
        assert len(statements) == 3

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("select 1 from t bogus extra tokens ,")

    def test_empty_case_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("select case end from t")

    def test_nonreserved_keywords_as_names(self):
        s = parse_statement("create table t (weight float, key int, probability float)")
        assert [c[0] for c in s.columns] == ["weight", "key", "probability"]
        q = parse_statement("select weight, key from t where probability > 0.5")
        assert q.items[0].expr == ast.SqlColumn("weight")
