"""Tests for statement execution: DDL, DML, queries of every shape."""

import pytest

from repro import MayBMS
from repro.core.urelation import URelation
from repro.engine.relation import Relation
from repro.engine.types import NULL
from repro.errors import (
    AnalysisError,
    MayBMSError,
    SchemaError,
    TableExistsError,
    TableNotFoundError,
    TransactionError,
)


@pytest.fixture
def db():
    session = MayBMS()
    session.execute("create table items (name text, qty integer, price float)")
    session.execute(
        "insert into items values "
        "('apple', 3, 1.5), ('banana', 5, 0.5), ('cherry', 2, 4.0), "
        "('apple', 1, 1.6)"
    )
    return session


class TestDDL:
    def test_create_and_drop(self, db):
        db.execute("create table t2 (x integer)")
        assert "t2" in db.tables()
        db.execute("drop table t2")
        assert "t2" not in db.tables()

    def test_create_duplicate_rejected(self, db):
        with pytest.raises(TableExistsError):
            db.execute("create table items (x integer)")

    def test_create_if_not_exists(self, db):
        db.execute("create table if not exists items (x integer)")
        assert db.table("items").schema.names == ["name", "qty", "price"]

    def test_drop_missing(self, db):
        with pytest.raises(TableNotFoundError):
            db.execute("drop table ghost")
        db.execute("drop table if exists ghost")

    def test_create_table_as_certain(self, db):
        db.execute("create table expensive as select name from items where price > 1.0")
        assert len(db.table("expensive")) == 3
        assert not db.catalog.entry("expensive").is_urelation

    def test_create_table_as_uncertain(self, db):
        db.execute(
            "create table maybe as select * from (pick tuples from items) s"
        )
        entry = db.catalog.entry("maybe")
        assert entry.is_urelation
        assert entry.properties["cond_arity"] == 1
        urel = db.urelation("maybe")
        assert len(urel) == 4


class TestDML:
    def test_insert_values_count(self, db):
        result = db.execute("insert into items values ('date', 1, 9.0)")
        assert result.row_count == 1
        assert len(db.table("items")) == 5

    def test_insert_partial_columns(self, db):
        db.execute("insert into items (name) values ('kiwi')")
        rows = [r for r in db.table("items") if r[0] == "kiwi"]
        assert rows[0][1] is NULL

    def test_insert_expression_values(self, db):
        db.execute("insert into items values ('calc', 2 + 3, 1.5 * 2)")
        rows = [r for r in db.table("items") if r[0] == "calc"]
        assert rows[0] == ("calc", 5, 3.0)

    def test_insert_from_query(self, db):
        db.execute("create table copies (name text, qty integer, price float)")
        result = db.execute("insert into copies select * from items")
        assert result.row_count == 4

    def test_insert_arity_mismatch(self, db):
        with pytest.raises(SchemaError):
            db.execute("insert into items values (1)")

    def test_update(self, db):
        result = db.execute("update items set qty = qty + 10 where name = 'apple'")
        assert result.row_count == 2
        quantities = sorted(r[1] for r in db.table("items") if r[0] == "apple")
        assert quantities == [11, 13]

    def test_update_all_rows(self, db):
        assert db.execute("update items set qty = 0").row_count == 4

    def test_delete_where(self, db):
        assert db.execute("delete from items where qty < 3").row_count == 2
        assert len(db.table("items")) == 2

    def test_delete_all(self, db):
        assert db.execute("delete from items").row_count == 4
        assert len(db.table("items")) == 0


class TestBasicQueries:
    def test_projection_and_alias(self, db):
        result = db.query("select name as n, price * 2 as double_price from items")
        assert result.schema.names == ["n", "double_price"]
        assert ("banana", 1.0) in result.rows

    def test_star(self, db):
        assert len(db.query("select * from items").schema) == 3

    def test_qualified_star(self, db):
        result = db.query("select i.* from items i")
        assert len(result.schema) == 3

    def test_where(self, db):
        result = db.query("select name from items where price between 1.0 and 2.0")
        assert sorted(r[0] for r in result) == ["apple", "apple"]

    def test_where_in_list(self, db):
        result = db.query("select name from items where name in ('apple', 'cherry')")
        assert len(result) == 3

    def test_in_subquery_certain(self, db):
        db.execute("create table wanted (n text)")
        db.execute("insert into wanted values ('banana'), ('cherry')")
        result = db.query(
            "select name from items where name in (select n from wanted)"
        )
        assert sorted(r[0] for r in result) == ["banana", "cherry"]

    def test_join_two_tables(self, db):
        db.execute("create table colors (fruit text, color text)")
        db.execute(
            "insert into colors values ('apple', 'red'), ('banana', 'yellow')"
        )
        result = db.query(
            "select i.name, c.color from items i, colors c where i.name = c.fruit"
        )
        assert len(result) == 3  # apple x2, banana x1

    def test_self_join_with_aliases(self, db):
        result = db.query(
            "select a.name from items a, items b "
            "where a.name = b.name and a.qty < b.qty"
        )
        assert [r[0] for r in result] == ["apple"]

    def test_order_by_limit_offset(self, db):
        result = db.query("select name, qty from items order by qty desc limit 2")
        assert [r[0] for r in result] == ["banana", "apple"]
        result2 = db.query(
            "select name, qty from items order by qty desc limit 2 offset 1"
        )
        assert [r[1] for r in result2] == [3, 2]

    def test_distinct(self, db):
        assert len(db.query("select distinct name from items")) == 3

    def test_union_all_and_distinct(self, db):
        both = db.query(
            "select name from items union all select name from items"
        )
        assert len(both) == 8
        deduped = db.query("select name from items union select name from items")
        assert len(deduped) == 3

    def test_select_without_from(self, db):
        result = db.query("select 2 + 3 as five")
        assert result.single_value() == 5

    def test_case_expression(self, db):
        result = db.query(
            "select name, case when qty > 2 then 'many' else 'few' end as amount "
            "from items order by name, qty"
        )
        amounts = dict((r[0], r[1]) for r in result.rows if r[0] != "apple")
        assert amounts == {"banana": "many", "cherry": "few"}

    def test_scalar_functions(self, db):
        result = db.query("select upper(name) as u from items where qty = 5")
        assert result.single_value() == "BANANA"


class TestStandardAggregation:
    def test_group_by_aggregates(self, db):
        result = db.query(
            "select name, count(*) as n, sum(qty) as total "
            "from items group by name order by name"
        )
        assert result.rows[0] == ("apple", 2, 4)

    def test_scalar_aggregates(self, db):
        result = db.query(
            "select count(*) as n, min(price) as lo, max(price) as hi, "
            "avg(qty) as mean from items"
        )
        assert result.rows[0] == (4, 0.5, 4.0, 2.75)

    def test_having(self, db):
        result = db.query(
            "select name, count(*) as n from items group by name "
            "having count(*) > 1"
        )
        assert result.rows == [("apple", 2)]

    def test_having_with_new_aggregate(self, db):
        result = db.query(
            "select name from items group by name having sum(qty) >= 4 order by name"
        )
        assert [r[0] for r in result] == ["apple", "banana"]

    def test_argmax(self, db):
        result = db.query(
            "select argmax(name, price) as priciest from items"
        )
        assert result.single_value() == "cherry"

    def test_argmax_group_emits_all_ties(self, db):
        db.execute("insert into items values ('cherry2', 9, 4.0)")
        result = db.query("select argmax(name, price) as m from items")
        assert sorted(r[0] for r in result) == ["cherry", "cherry2"]

    def test_expression_over_aggregate(self, db):
        result = db.query(
            "select name, sum(qty) * 2 as double_total from items "
            "group by name order by name"
        )
        assert result.rows[0] == ("apple", 8)

    def test_count_distinct(self, db):
        result = db.query("select count(distinct name) as n from items")
        assert result.single_value() == 3


class TestUncertainQueries:
    def test_pick_tuples_tconf(self, db):
        result = db.query(
            "select name, tconf() as p from "
            "(pick tuples from items with probability 0.25) s"
        )
        assert len(result) == 4
        assert all(row[1] == pytest.approx(0.25) for row in result)

    def test_repair_key_conf_roundtrip(self, db):
        result = db.query(
            "select name, conf() as p from "
            "(repair key name in items weight by qty) r group by name"
        )
        # Every name group's chosen tuple is present with probability 1
        # (repair key always keeps one tuple per group).
        assert all(row[1] == pytest.approx(1.0) for row in result)

    def test_repair_key_weighted_probabilities(self, db):
        result = db.query(
            "select name, qty, conf() as p from "
            "(repair key name in items weight by qty) r group by name, qty"
        )
        by_row = {(r[0], r[1]): r[2] for r in result}
        assert by_row[("apple", 3)] == pytest.approx(0.75)
        assert by_row[("apple", 1)] == pytest.approx(0.25)

    def test_possible(self, db):
        result = db.query(
            "select possible name from (pick tuples from items) s"
        )
        assert len(result) == 3  # deduplicated

    def test_esum_ecount(self, db):
        result = db.query(
            "select esum(qty) as e, ecount() as c from "
            "(pick tuples from items with probability 0.5) s"
        )
        e, c = result.rows[0]
        assert e == pytest.approx(0.5 * (3 + 5 + 2 + 1))
        assert c == pytest.approx(2.0)

    def test_esum_grouped(self, db):
        result = db.query(
            "select name, esum(qty) as e from "
            "(pick tuples from items with probability 0.5) s group by name"
        )
        by_name = {r[0]: r[1] for r in result}
        assert by_name["apple"] == pytest.approx(2.0)

    def test_aconf_close_to_conf(self, db):
        exact = db.query(
            "select name, conf() as p from "
            "(pick tuples from items with probability 0.5) s group by name"
        )
        approx = db.query(
            "select name, aconf(0.05, 0.05) as p from "
            "(pick tuples from items with probability 0.5) s group by name"
        )
        exact_by = {r[0]: r[1] for r in exact}
        for name, p in approx.rows:
            assert p == pytest.approx(exact_by[name], rel=0.15)

    def test_uncertain_query_returns_urelation(self, db):
        urel = db.uncertain_query("select name from (pick tuples from items) s")
        assert isinstance(urel, URelation)
        assert urel.payload_schema.names == ["name"]

    def test_query_on_uncertain_raises(self, db):
        with pytest.raises(AnalysisError):
            db.query("select name from (pick tuples from items) s")

    def test_uncertain_in_subquery_join_semantics(self, db):
        """x IN (uncertain) keeps the outer tuple exactly when some matching
        inner tuple is present; confidence combines the alternatives."""
        db.execute(
            "create table maybe_names as "
            "select name from (pick tuples from items with probability 0.5) s"
        )
        result = db.query(
            "select name, conf() as p from items "
            "where name in (select name from maybe_names) group by name"
        )
        by_name = {r[0]: r[1] for r in result}
        # apple appears twice in maybe_names (two independent pickings of
        # the two apple rows): 1 - 0.25 = 0.75
        assert by_name["apple"] == pytest.approx(0.75)
        assert by_name["banana"] == pytest.approx(0.5)

    def test_stored_urelation_requeried(self, db):
        db.execute(
            "create table half as select * from "
            "(pick tuples from items with probability 0.5) s"
        )
        result = db.query(
            "select name, conf() as p from half group by name order by name"
        )
        assert result.rows[0][0] == "apple"
        assert result.rows[0][1] == pytest.approx(0.75)

    def test_union_all_of_uncertain(self, db):
        result = db.query(
            "select ecount() as c from ("
            "select name from (pick tuples from items with probability 0.5) a "
            "union all "
            "select name from (pick tuples from items with probability 0.5) b"
            ") u"
        )
        assert result.single_value() == pytest.approx(4.0)


class TestTransactionsThroughSql:
    def test_begin_rollback(self, db):
        db.execute("begin")
        assert db.in_transaction
        db.transaction.insert("items", ("temp", 1, 1.0))
        assert len(db.table("items")) == 5
        db.execute("rollback")
        assert len(db.table("items")) == 4

    def test_begin_commit(self, db):
        db.execute("begin")
        db.transaction.insert("items", ("kept", 1, 1.0))
        db.execute("commit")
        assert len(db.table("items")) == 5

    def test_nested_begin_rejected(self, db):
        db.execute("begin")
        with pytest.raises(TransactionError):
            db.execute("begin")
        db.execute("rollback")

    def test_commit_without_begin_rejected(self, db):
        with pytest.raises(TransactionError):
            db.execute("commit")

    def test_sql_dml_rolls_back(self, db):
        """SQL DML inside an explicit transaction joins its undo journal:
        ROLLBACK undoes it (it used to bypass the transaction entirely)."""
        db.execute("begin")
        db.execute("insert into items values ('temp', 1, 1.0)")
        assert len(db.table("items")) == 5
        db.execute("rollback")
        assert len(db.table("items")) == 4

    def test_sql_ddl_rolls_back(self, db):
        db.execute("begin")
        db.execute("create table scratch (x integer)")
        db.execute("insert into scratch values (1)")
        db.execute("rollback")
        assert "scratch" not in db.tables()

    def test_sql_dml_commit_survives(self, db):
        db.execute("begin")
        db.execute("insert into items values ('kept', 1, 1.0)")
        db.execute("commit")
        assert len(db.table("items")) == 5

    def test_failing_update_is_atomic(self, db):
        """An error mid-UPDATE rolls back the rows already transformed
        (each statement outside a transaction auto-commits atomically)."""
        db.execute("create table nums (x integer)")
        db.execute("insert into nums values (5), (0), (7)")
        before = sorted(db.query("select x from nums").rows)
        with pytest.raises(MayBMSError):
            db.execute("update nums set x = 10 / x")
        assert sorted(db.query("select x from nums").rows) == before

    def test_failing_statement_inside_transaction_rolls_back_to_savepoint(self, db):
        """Inside BEGIN, a failing statement rolls back to its own
        savepoint: earlier statements keep their effects and COMMIT must
        not persist the failed statement's partial updates."""
        db.execute("create table nums (x integer)")
        db.execute("insert into nums values (5), (0), (7)")
        db.execute("begin")
        db.execute("insert into nums values (11)")
        with pytest.raises(MayBMSError):
            db.execute("update nums set x = 10 / x")
        db.execute("commit")
        assert sorted(db.query("select x from nums").rows) == [
            (0,), (5,), (7,), (11,),
        ]


class TestIntrospection:
    def test_sys_tables(self, db):
        db.execute(
            "create table u as select * from (pick tuples from items) s"
        )
        rows = {r[0]: r for r in db.sys_tables()}
        assert rows["items"][1] == "standard"
        assert rows["u"][1] == "urelation"

    def test_execute_script(self, db):
        results = db.execute_script(
            "create table s1 (x integer); insert into s1 values (1); "
            "select x from s1;"
        )
        assert len(results) == 3
        assert results[2].relation.single_value() == 1
