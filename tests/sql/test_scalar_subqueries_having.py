"""Tests for scalar subqueries in conditions and HAVING over confidence
aggregation (Section 2.2's "any t-certain subqueries in the conditions")."""

import pytest

from repro import MayBMS
from repro.errors import AnalysisError


@pytest.fixture
def db():
    session = MayBMS()
    session.execute("create table items (name text, qty integer, price float)")
    session.execute(
        "insert into items values "
        "('apple', 3, 1.5), ('banana', 5, 0.5), ('cherry', 2, 4.0)"
    )
    session.execute("create table params (threshold float)")
    session.execute("insert into params values (1.0)")
    return session


class TestScalarSubqueries:
    def test_in_where(self, db):
        result = db.query(
            "select name from items "
            "where price > (select threshold from params)"
        )
        assert sorted(r[0] for r in result) == ["apple", "cherry"]

    def test_aggregate_subquery_in_where(self, db):
        result = db.query(
            "select name from items "
            "where price = (select max(price) from items)"
        )
        assert result.rows == [("cherry",)]

    def test_in_select_list(self, db):
        result = db.query(
            "select name, (select max(qty) from items) as top from items"
        )
        assert all(r[1] == 5 for r in result)

    def test_in_update(self, db):
        db.execute(
            "update items set qty = 0 "
            "where price < (select avg(price) from items)"
        )
        quantities = {r[0]: r[1] for r in db.table("items")}
        assert quantities == {"apple": 0, "banana": 0, "cherry": 2}

    def test_in_insert_values(self, db):
        db.execute(
            "insert into items values "
            "('date', (select max(qty) from items), 2.0)"
        )
        rows = [r for r in db.table("items") if r[0] == "date"]
        assert rows[0][1] == 5

    def test_in_repair_key_weight(self, db):
        result = db.query(
            "select name, conf() as p from "
            "(repair key in items weight by price * (select threshold from params)) r "
            "group by name"
        )
        total = 1.5 + 0.5 + 4.0
        by_name = {r[0]: r[1] for r in result}
        assert by_name["cherry"] == pytest.approx(4.0 / total)

    def test_empty_scalar_subquery_is_null(self, db):
        db.execute("delete from params")
        result = db.query(
            "select name from items "
            "where price > (select threshold from params)"
        )
        assert len(result) == 0  # NULL comparison filters everything

    def test_multi_row_rejected(self, db):
        with pytest.raises(AnalysisError):
            db.query(
                "select name from items where price > (select price from items)"
            )

    def test_multi_column_rejected(self, db):
        with pytest.raises(AnalysisError):
            db.query(
                "select name from items "
                "where price > (select price, qty from items)"
            )

    def test_uncertain_scalar_subquery_rejected(self, db):
        with pytest.raises(AnalysisError):
            db.query(
                "select name from items where qty > "
                "(select qty from (pick tuples from items) s)"
            )

    def test_certified_uncertain_subquery_allowed(self, db):
        result = db.query(
            "select name from items where qty >= "
            "(select esum(qty) as e from "
            "(pick tuples from items with probability 0.5) s)"
        )
        # esum = 0.5 * 10 = 5.0; only banana (qty 5) passes.
        assert result.rows == [("banana",)]


class TestHavingOverConfidence:
    @pytest.fixture
    def udb(self, db):
        db.execute(
            "create table maybe as select * from "
            "(pick tuples from items with probability 0.25) s"
        )
        return db

    def test_having_on_alias(self, udb):
        result = udb.query(
            "select name, conf() as p from maybe group by name having p > 0.2"
        )
        assert len(result) == 3  # each tuple has p = 0.25

    def test_having_on_aggregate_expression(self, udb):
        result = udb.query(
            "select name, conf() as p from maybe group by name "
            "having conf() > 0.9"
        )
        assert len(result) == 0

    def test_having_filters_esum(self, udb):
        result = udb.query(
            "select name, esum(qty) as e from maybe group by name "
            "having esum(qty) > 1.0"
        )
        by_name = {r[0]: r[1] for r in result}
        assert set(by_name) == {"banana"}  # 5 * 0.25 = 1.25

    def test_having_unknown_column_rejected(self, udb):
        with pytest.raises(AnalysisError):
            udb.query(
                "select name, conf() as p from maybe group by name "
                "having qty > 1"
            )

    def test_having_combined_predicate(self, udb):
        result = udb.query(
            "select name, conf() as p, esum(qty) as e from maybe "
            "group by name having p > 0.2 and e > 0.6"
        )
        assert sorted(r[0] for r in result) == ["apple", "banana"]
