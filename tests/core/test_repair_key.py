"""Tests for the ``repair key`` construct against possible-worlds semantics.

The defining property (Section 2.2): the worlds of ``repair key K in R``
are exactly the *maximal repairs* of key K in R -- one surviving tuple per
key group, all combinations, with probabilities proportional to weights
within each group.
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.repair_key import repair_key
from repro.core.variables import VariableRegistry
from repro.core.worlds import enumerate_worlds, relation_distribution
from repro.engine.expressions import Arithmetic, ColumnRef, Literal
from repro.engine.relation import Relation
from repro.engine.schema import Schema
from repro.engine.types import FLOAT, INTEGER, NULL, TEXT
from repro.errors import RepairKeyError


@pytest.fixture
def fitness():
    schema = Schema.of(("init", TEXT), ("final", TEXT), ("p", FLOAT))
    return Relation(
        schema,
        [
            ("F", "F", 0.8),
            ("F", "SE", 0.05),
            ("F", "SL", 0.15),
            ("SE", "F", 0.1),
            ("SE", "SE", 0.6),
            ("SE", "SL", 0.3),
        ],
    )


class TestBasicSemantics:
    def test_one_variable_per_group(self, fitness):
        registry = VariableRegistry()
        urel = repair_key(fitness, ["init"], registry, weight_by="p")
        assert len(registry) == 2  # two Init groups
        assert len(urel) == 6  # all candidate tuples kept

    def test_group_alternatives_are_exclusive(self, fitness):
        registry = VariableRegistry()
        urel = repair_key(fitness, ["init"], registry, weight_by="p")
        # In every world, exactly one Final per Init survives.
        for world, _ in enumerate_worlds(registry):
            instance = urel.in_world(world)
            by_init = {}
            for row in instance:
                by_init.setdefault(row[0], []).append(row)
            assert all(len(v) == 1 for v in by_init.values())
            assert set(by_init) == {"F", "SE"}

    def test_probabilities_are_normalized_weights(self, fitness):
        registry = VariableRegistry()
        urel = repair_key(fitness, ["init"], registry, weight_by="p")
        for payload, condition in urel.rows_with_conditions():
            assert condition.probability(registry) == pytest.approx(payload[2])

    def test_uniform_when_no_weight(self):
        schema = Schema.of(("k", INTEGER), ("v", TEXT))
        relation = Relation(schema, [(1, "a"), (1, "b"), (1, "c"), (2, "z")])
        registry = VariableRegistry()
        urel = repair_key(relation, ["k"], registry)
        for payload, condition in urel.rows_with_conditions():
            expected = 1.0 / 3.0 if payload[0] == 1 else 1.0
            assert condition.probability(registry) == pytest.approx(expected)

    def test_empty_key_single_global_choice(self):
        schema = Schema.of(("v", TEXT), ("w", FLOAT))
        relation = Relation(schema, [("a", 1.0), ("b", 3.0)])
        registry = VariableRegistry()
        urel = repair_key(relation, [], registry, weight_by="w")
        buckets = relation_distribution(urel)
        masses = {tuple(sorted(rel.rows)): p for rel, p in buckets}
        assert masses[(("a", 1.0),)] == pytest.approx(0.25)
        assert masses[(("b", 3.0),)] == pytest.approx(0.75)

    def test_single_candidate_group_is_certain(self):
        schema = Schema.of(("k", INTEGER), ("v", TEXT))
        relation = Relation(schema, [(1, "only")])
        registry = VariableRegistry()
        urel = repair_key(relation, ["k"], registry)
        assert len(registry) == 0  # no variable created
        condition = urel.conditions()[0]
        assert condition.is_true

    def test_key_already_valid_means_one_world(self, fitness):
        registry = VariableRegistry()
        urel = repair_key(fitness, ["init", "final"], registry, weight_by="p")
        assert len(registry) == 0
        assert all(c.is_true for c in urel.conditions())

    def test_empty_relation(self):
        schema = Schema.of(("k", INTEGER))
        registry = VariableRegistry()
        urel = repair_key(Relation(schema, []), ["k"], registry)
        assert len(urel) == 0

    def test_null_keys_group_together(self):
        schema = Schema.of(("k", INTEGER), ("v", TEXT))
        relation = Relation(schema, [(NULL, "a"), (NULL, "b")])
        registry = VariableRegistry()
        urel = repair_key(relation, ["k"], registry)
        assert len(registry) == 1  # one group for the NULL key


class TestWeights:
    def test_weight_expression(self):
        schema = Schema.of(("k", INTEGER), ("w", FLOAT))
        relation = Relation(schema, [(1, 1.0), (1, 2.0)])
        registry = VariableRegistry()
        urel = repair_key(
            relation,
            ["k"],
            registry,
            weight_by=Arithmetic("*", ColumnRef("w"), Literal(10.0)),
        )
        probs = [c.probability(registry) for c in urel.conditions()]
        assert probs == pytest.approx([1 / 3, 2 / 3])

    def test_weight_callable(self):
        schema = Schema.of(("k", INTEGER), ("w", FLOAT))
        relation = Relation(schema, [(1, 1.0), (1, 3.0)])
        registry = VariableRegistry()
        urel = repair_key(relation, ["k"], registry, weight_by=lambda row: row[1])
        probs = [c.probability(registry) for c in urel.conditions()]
        assert probs == pytest.approx([0.25, 0.75])

    def test_zero_weight_tuple_dropped_from_hypothesis_space(self):
        schema = Schema.of(("k", INTEGER), ("w", FLOAT))
        relation = Relation(schema, [(1, 0.0), (1, 1.0)])
        registry = VariableRegistry()
        urel = repair_key(relation, ["k"], registry, weight_by="w")
        assert len(urel) == 1
        assert urel.payload_relation().rows == [(1, 1.0)]

    def test_all_zero_group_rejected(self):
        schema = Schema.of(("k", INTEGER), ("w", FLOAT))
        relation = Relation(schema, [(1, 0.0), (1, 0.0)])
        registry = VariableRegistry()
        with pytest.raises(RepairKeyError):
            repair_key(relation, ["k"], registry, weight_by="w")

    def test_negative_weight_rejected(self):
        schema = Schema.of(("k", INTEGER), ("w", FLOAT))
        relation = Relation(schema, [(1, -1.0)])
        registry = VariableRegistry()
        with pytest.raises(RepairKeyError):
            repair_key(relation, ["k"], registry, weight_by="w")

    def test_null_weight_rejected(self):
        schema = Schema.of(("k", INTEGER), ("w", FLOAT))
        relation = Relation(schema, [(1, NULL)])
        registry = VariableRegistry()
        with pytest.raises(RepairKeyError):
            repair_key(relation, ["k"], registry, weight_by="w")

    def test_nan_weight_rejected(self):
        """Regression: NaN passed the ``w < 0`` check (every comparison
        with NaN is False) and poisoned group normalization into NaN
        probabilities."""
        schema = Schema.of(("k", INTEGER), ("w", FLOAT))
        relation = Relation(schema, [(1, float("nan")), (1, 1.0)])
        registry = VariableRegistry()
        with pytest.raises(RepairKeyError):
            repair_key(relation, ["k"], registry, weight_by="w")
        # No variable was created for the poisoned group.
        assert len(registry) == 0

    def test_infinite_weight_rejected(self):
        schema = Schema.of(("k", INTEGER), ("w", FLOAT))
        relation = Relation(schema, [(1, float("inf")), (1, 1.0)])
        registry = VariableRegistry()
        with pytest.raises(RepairKeyError):
            repair_key(relation, ["k"], registry, weight_by="w")


class TestAgainstWorldsOracle:
    def test_distribution_equals_product_of_group_choices(self, fitness):
        registry = VariableRegistry()
        urel = repair_key(fitness, ["init"], registry, weight_by="p")
        buckets = relation_distribution(urel)
        assert sum(p for _, p in buckets) == pytest.approx(1.0)
        # Every world is a choice of one F-row and one SE-row; its
        # probability is the product of the two normalized weights.
        f_rows = [r for r in fitness if r[0] == "F"]
        se_rows = [r for r in fitness if r[0] == "SE"]
        assert len(buckets) == len(f_rows) * len(se_rows)
        masses = {tuple(sorted(rel.rows)): p for rel, p in buckets}
        for f_row, se_row in itertools.product(f_rows, se_rows):
            key = tuple(sorted([f_row, se_row]))
            assert masses[key] == pytest.approx(f_row[2] * se_row[2])

    @given(
        st.lists(
            st.tuples(st.integers(1, 3), st.floats(0.1, 5.0)),
            min_size=1,
            max_size=7,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_group_masses_sum_to_one(self, rows):
        schema = Schema.of(("k", INTEGER), ("w", FLOAT))
        relation = Relation(schema, rows)
        registry = VariableRegistry()
        urel = repair_key(relation, ["k"], registry, weight_by="w")
        # Per key group, the conditions' probabilities sum to 1.
        sums = {}
        for payload, condition in urel.rows_with_conditions():
            sums[payload[0]] = sums.get(payload[0], 0.0) + condition.probability(
                registry
            )
        for total in sums.values():
            assert total == pytest.approx(1.0)
