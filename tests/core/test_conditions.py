"""Tests for conditions (conjunctions of variable assignments)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.conditions import Condition, TRUE_CONDITION
from repro.core.variables import TOP_VARIABLE, VariableRegistry


@pytest.fixture
def registry():
    r = VariableRegistry()
    # Three ternary variables x1, x2, x3.
    for _ in range(3):
        r.fresh([0.5, 0.3, 0.2])
    return r


class TestConstruction:
    def test_canonical_ordering(self):
        a = Condition.of([(2, 1), (1, 0)])
        b = Condition.of([(1, 0), (2, 1)])
        assert a == b
        assert hash(a) == hash(b)

    def test_duplicate_atoms_collapse(self):
        c = Condition.of([(1, 0), (1, 0)])
        assert len(c) == 1

    def test_contradiction_returns_none(self):
        assert Condition.of([(1, 0), (1, 1)]) is None

    def test_top_atoms_dropped(self):
        c = Condition.of([(TOP_VARIABLE, 0), (1, 2)])
        assert len(c) == 1
        assert c.value_of(1) == 2

    def test_atom_constructor(self):
        assert Condition.atom(1, 2).atoms == ((1, 2),)
        assert Condition.atom(TOP_VARIABLE, 0) is TRUE_CONDITION

    def test_true_condition(self):
        assert TRUE_CONDITION.is_true
        assert len(TRUE_CONDITION) == 0


class TestAlgebra:
    def test_conjoin_disjoint(self):
        a = Condition.atom(1, 0)
        b = Condition.atom(2, 1)
        merged = a.conjoin(b)
        assert merged.variables() == {1, 2}

    def test_conjoin_agreeing(self):
        a = Condition.of([(1, 0), (2, 1)])
        b = Condition.atom(1, 0)
        assert a.conjoin(b) == a

    def test_conjoin_contradicting(self):
        assert Condition.atom(1, 0).conjoin(Condition.atom(1, 1)) is None

    def test_conjoin_with_true(self):
        a = Condition.atom(1, 0)
        assert TRUE_CONDITION.conjoin(a) == a
        assert a.conjoin(TRUE_CONDITION) == a

    def test_without(self):
        c = Condition.of([(1, 0), (2, 1)])
        assert c.without(1) == Condition.atom(2, 1)
        assert c.without(9) == c

    def test_restrict_agreeing_consumes_atom(self):
        c = Condition.of([(1, 0), (2, 1)])
        assert c.restrict(1, 0) == Condition.atom(2, 1)

    def test_restrict_disagreeing_is_none(self):
        c = Condition.atom(1, 0)
        assert c.restrict(1, 1) is None

    def test_restrict_absent_variable_unchanged(self):
        c = Condition.atom(1, 0)
        assert c.restrict(5, 2) == c

    def test_subsumes(self):
        weak = Condition.atom(1, 0)
        strong = Condition.of([(1, 0), (2, 1)])
        assert weak.subsumes(strong)
        assert not strong.subsumes(weak)
        assert TRUE_CONDITION.subsumes(weak)


class TestSemantics:
    def test_satisfied_by(self):
        c = Condition.of([(1, 0), (2, 1)])
        assert c.satisfied_by({1: 0, 2: 1, 3: 2})
        assert not c.satisfied_by({1: 0, 2: 0, 3: 2})
        assert not c.satisfied_by({1: 0})  # missing variable fails

    def test_true_satisfied_by_anything(self):
        assert TRUE_CONDITION.satisfied_by({})

    def test_probability_product(self, registry):
        c = Condition.of([(1, 0), (2, 1)])
        assert c.probability(registry) == pytest.approx(0.5 * 0.3)

    def test_probability_true_is_one(self, registry):
        assert TRUE_CONDITION.probability(registry) == 1.0

    def test_probability_zero_short_circuit(self, registry):
        var = registry.fresh([0.0, 1.0])
        c = Condition.of([(var, 0), (1, 0)])
        assert c.probability(registry) == 0.0


@st.composite
def atom_lists(draw):
    n = draw(st.integers(0, 6))
    return [
        (draw(st.integers(1, 4)), draw(st.integers(0, 2))) for _ in range(n)
    ]


class TestProperties:
    @given(atom_lists(), atom_lists())
    def test_conjoin_commutative(self, a_atoms, b_atoms):
        a = Condition.of(a_atoms)
        b = Condition.of(b_atoms)
        if a is None or b is None:
            return
        ab = a.conjoin(b)
        ba = b.conjoin(a)
        assert ab == ba

    @given(atom_lists())
    def test_of_idempotent(self, atoms):
        c = Condition.of(atoms)
        if c is None:
            return
        assert Condition.of(c.atoms) == c

    @given(atom_lists(), atom_lists())
    def test_conjoin_satisfaction(self, a_atoms, b_atoms):
        """A world satisfies a ∧ b iff it satisfies both."""
        a = Condition.of(a_atoms)
        b = Condition.of(b_atoms)
        if a is None or b is None:
            return
        merged = a.conjoin(b)
        world = {var: 0 for var in range(1, 5)}
        lhs = (merged is not None) and merged.satisfied_by(world)
        rhs = a.satisfied_by(world) and b.satisfied_by(world)
        assert lhs == rhs
