"""Tests for the cost-based confidence dispatcher.

The backbone is differential: whatever strategy the dispatcher picks, the
result must agree with :func:`confidence_by_enumeration` (for exact
strategies, to float precision; for Monte Carlo, within the (ε,δ)
tolerance at a fixed seed).
"""

import random

import pytest

from repro.core.conditions import Condition
from repro.core.confidence.dispatch import (
    STRATEGY_CLOSED_FORM,
    STRATEGY_EXACT,
    STRATEGY_MONTE_CARLO,
    STRATEGY_SPROUT,
    ConfidenceDispatcher,
    DispatchPolicy,
    trace_confidence,
)
from repro.core.confidence.naive import confidence_by_enumeration
from repro.core.confidence.sprout import safe_lineage_confidence
from repro.core.lineage import Lineage
from repro.core.variables import VariableRegistry
from repro.datagen.random_dnf import random_dnf
from repro.errors import ConfidenceError, UnsafeLineageError


def clause(*atoms):
    condition = Condition.of(list(atoms))
    assert condition is not None
    return condition


def two_level_hierarchical(registry, fanout=3):
    """{r ∧ s₁, ..., r ∧ s_k}: hierarchical but not closed-form."""
    r = registry.fresh_boolean(0.6)
    children = [registry.fresh_boolean(0.3) for _ in range(fanout)]
    return Lineage.from_clauses(
        [clause((r, 1), (s, 1)) for s in children], registry
    )


def non_hierarchical_chain(registry, length=4):
    """{x₁∧x₂, x₂∧x₃, ...}: crossing clause sets, no root variable."""
    variables = [registry.fresh_boolean(0.5) for _ in range(length + 1)]
    return Lineage.from_clauses(
        [
            clause((variables[i], 1), (variables[i + 1], 1))
            for i in range(length)
        ],
        registry,
    )


class TestStrategySelection:
    def test_independent_clauses_use_closed_form(self):
        registry = VariableRegistry()
        variables = [registry.fresh_boolean(0.4) for _ in range(4)]
        lin = Lineage.from_clauses(
            [Condition.atom(v, 1) for v in variables], registry
        )
        result = ConfidenceDispatcher(registry).probability(lin)
        assert {d.strategy for d in result.decisions} == {STRATEGY_CLOSED_FORM}
        assert result.probability == pytest.approx(1.0 - 0.6 ** 4)

    def test_hierarchical_lineage_uses_sprout(self):
        registry = VariableRegistry()
        lin = two_level_hierarchical(registry)
        result = ConfidenceDispatcher(registry).probability(lin)
        assert {d.strategy for d in result.decisions} == {STRATEGY_SPROUT}
        assert result.probability == pytest.approx(
            confidence_by_enumeration(lin, registry)
        )

    def test_non_hierarchical_falls_to_exact(self):
        registry = VariableRegistry()
        lin = non_hierarchical_chain(registry)
        result = ConfidenceDispatcher(registry).probability(lin)
        assert {d.strategy for d in result.decisions} == {STRATEGY_EXACT}
        assert result.probability == pytest.approx(
            confidence_by_enumeration(lin, registry)
        )

    def test_tiny_budget_falls_to_monte_carlo(self):
        registry = VariableRegistry()
        lin = non_hierarchical_chain(registry, length=6)
        policy = DispatchPolicy(exact_budget=1, epsilon=0.05, delta=0.01)
        dispatcher = ConfidenceDispatcher(registry, policy, random.Random(3))
        result = dispatcher.probability(lin)
        assert {d.strategy for d in result.decisions} == {STRATEGY_MONTE_CARLO}
        truth = confidence_by_enumeration(lin, registry)
        assert result.probability == pytest.approx(truth, rel=0.05)

    def test_mixed_components_get_individual_strategies(self):
        registry = VariableRegistry()
        hierarchical = two_level_hierarchical(registry)
        dense = non_hierarchical_chain(registry)
        lone = registry.fresh_boolean(0.5)
        lin = Lineage.from_clauses(
            list(hierarchical.clauses)
            + list(dense.clauses)
            + [Condition.atom(lone, 1)],
            registry,
        )
        result = ConfidenceDispatcher(registry).probability(lin)
        strategies = sorted(d.strategy for d in result.decisions)
        assert strategies == [STRATEGY_CLOSED_FORM, STRATEGY_EXACT, STRATEGY_SPROUT]
        assert result.probability == pytest.approx(
            confidence_by_enumeration(lin, registry)
        )

    def test_empty_lineage(self):
        registry = VariableRegistry()
        result = ConfidenceDispatcher(registry).probability(
            Lineage.from_clauses([], registry)
        )
        assert result.probability == 0.0
        assert result.decisions[0].strategy == STRATEGY_CLOSED_FORM


class TestForcedStrategies:
    def test_forced_exact(self):
        registry = VariableRegistry()
        lin = two_level_hierarchical(registry)
        dispatcher = ConfidenceDispatcher(
            registry, DispatchPolicy(strategy="exact")
        )
        result = dispatcher.probability(lin)
        assert [d.strategy for d in result.decisions] == [STRATEGY_EXACT]
        assert result.probability == pytest.approx(
            confidence_by_enumeration(lin, registry)
        )

    def test_forced_sprout_raises_on_unsafe_lineage(self):
        registry = VariableRegistry()
        lin = non_hierarchical_chain(registry)
        dispatcher = ConfidenceDispatcher(
            registry, DispatchPolicy(strategy="sprout")
        )
        with pytest.raises(UnsafeLineageError):
            dispatcher.probability(lin)

    def test_forced_monte_carlo(self):
        registry = VariableRegistry()
        lin = two_level_hierarchical(registry)
        dispatcher = ConfidenceDispatcher(
            registry,
            DispatchPolicy(strategy="monte-carlo", epsilon=0.05, delta=0.01),
            random.Random(5),
        )
        result = dispatcher.probability(lin)
        assert [d.strategy for d in result.decisions] == [STRATEGY_MONTE_CARLO]
        truth = confidence_by_enumeration(lin, registry)
        assert result.probability == pytest.approx(truth, rel=0.05)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfidenceError):
            DispatchPolicy(strategy="quantum")


class TestDifferentialRandomized:
    """Dispatcher-chosen strategies must agree with enumeration."""

    def test_random_lineages_match_enumeration(self):
        rng = random.Random(1234)
        registry_count = 0
        strategies_seen = set()
        for trial in range(40):
            n_vars = rng.randrange(2, 9)
            n_clauses = rng.randrange(1, 7)
            width = rng.randrange(1, min(4, n_vars) + 1)
            dnf, registry = random_dnf(
                n_vars, n_clauses, width, rng, domain_size=rng.choice([2, 3])
            )
            registry_count += 1
            dispatcher = ConfidenceDispatcher(registry)
            result = dispatcher.probability(dnf.to_lineage(registry))
            truth = confidence_by_enumeration(dnf, registry)
            strategies_seen.update(d.strategy for d in result.decisions)
            assert result.probability == pytest.approx(truth, abs=1e-9), (
                trial,
                repr(dnf),
            )
        # The sweep must actually exercise more than one strategy.
        assert STRATEGY_CLOSED_FORM in strategies_seen
        assert strategies_seen - {STRATEGY_CLOSED_FORM}

    def test_safe_evaluator_matches_enumeration_on_hierarchical(self):
        rng = random.Random(99)
        for fanout in (1, 2, 4, 7):
            registry = VariableRegistry()
            lin = two_level_hierarchical(registry, fanout)
            assert safe_lineage_confidence(lin) == pytest.approx(
                confidence_by_enumeration(lin, registry)
            )

    def test_multi_valued_hierarchical(self):
        # Repair-key style variables (domain > 2) under a shared root.
        registry = VariableRegistry()
        root = registry.fresh({0: 0.2, 1: 0.5, 2: 0.3})
        child_a = registry.fresh_boolean(0.4)
        child_b = registry.fresh_boolean(0.7)
        lin = Lineage.from_clauses(
            [
                clause((root, 1), (child_a, 1)),
                clause((root, 1), (child_b, 1)),
                clause((root, 2), (child_a, 1)),
            ],
            registry,
        )
        result = ConfidenceDispatcher(registry).probability(lin)
        assert result.probability == pytest.approx(
            confidence_by_enumeration(lin, registry)
        )


class TestApproximate:
    def test_closed_form_shortcut(self):
        registry = VariableRegistry()
        x = registry.fresh_boolean(0.3)
        lin = Lineage.from_clauses([Condition.atom(x, 1)], registry)
        result = ConfidenceDispatcher(registry).approximate(lin, 0.1, 0.05)
        assert result.decisions[0].strategy == STRATEGY_CLOSED_FORM
        assert result.probability == pytest.approx(0.3)

    def test_hierarchical_shortcut(self):
        registry = VariableRegistry()
        lin = two_level_hierarchical(registry)
        result = ConfidenceDispatcher(registry).approximate(lin, 0.1, 0.05)
        assert result.decisions[0].strategy == STRATEGY_SPROUT
        assert result.probability == pytest.approx(
            confidence_by_enumeration(lin, registry)
        )

    def test_aconf_within_epsilon_of_conf_at_high_confidence(self):
        """The satellite check: on non-trivial lineages the (ε, δ=0.02)
        estimate lands within ε·p of the exact confidence (fixed seed, 10
        instances: the chance of any excursion under the guarantee is
        far below the suite's flakiness budget, and the seed pins it)."""
        rng = random.Random(2024)
        epsilon = 0.1
        for trial in range(10):
            dnf, registry = random_dnf(6, 5, 3, rng, domain_size=2)
            lin = dnf.to_lineage(registry).simplified()
            if lin.is_false or lin.is_true:
                continue
            truth = confidence_by_enumeration(dnf, registry)
            dispatcher = ConfidenceDispatcher(
                registry,
                DispatchPolicy(strategy="monte-carlo"),
                random.Random(100 + trial),
            )
            result = dispatcher.approximate(lin, epsilon, 0.02)
            assert abs(result.probability - truth) <= epsilon * truth, (
                trial,
                result.probability,
                truth,
            )


class TestDeterminism:
    def test_same_seed_same_estimates(self):
        rng = random.Random(7)
        dnf, registry = random_dnf(8, 6, 3, rng)
        lin = dnf.to_lineage(registry)
        policy = DispatchPolicy(strategy="monte-carlo")
        a = ConfidenceDispatcher(registry, policy, random.Random(42))
        b = ConfidenceDispatcher(registry, policy, random.Random(42))
        assert a.probability(lin).probability == b.probability(lin).probability

    def test_different_seeds_differ(self):
        rng = random.Random(7)
        dnf, registry = random_dnf(10, 8, 3, rng)
        lin = dnf.to_lineage(registry)
        policy = DispatchPolicy(strategy="monte-carlo")
        a = ConfidenceDispatcher(registry, policy, random.Random(1))
        b = ConfidenceDispatcher(registry, policy, random.Random(2))
        assert a.probability(lin).probability != b.probability(lin).probability


class TestTracing:
    def test_trace_collects_events(self):
        from repro.core.confidence import dispatch as dispatch_module

        registry = VariableRegistry()
        lin = two_level_hierarchical(registry)
        dispatcher = ConfidenceDispatcher(registry)
        with trace_confidence() as events:
            result = dispatcher.probability(lin)
            dispatch_module.record_aggregate("conf", [result])
        assert len(events) == 1
        assert events[0].aggregate == "conf"
        assert dict(events[0].strategy_counts) == {STRATEGY_SPROUT: 1}
        assert "sprout" in events[0].render()

    def test_no_trace_no_events(self):
        from repro.core.confidence import dispatch as dispatch_module

        assert not dispatch_module.tracing_active()
