"""Tests for the Karp-Luby estimator: unbiasedness and accuracy."""

import random

import pytest

from repro.core.conditions import Condition, TRUE_CONDITION
from repro.core.confidence.dnf import DNF
from repro.core.confidence.exact import exact_confidence
from repro.core.confidence.karp_luby import KarpLubyEstimator, karp_luby_confidence
from repro.core.variables import VariableRegistry
from repro.datagen.random_dnf import random_dnf
from repro.errors import ConfidenceError


@pytest.fixture
def registry():
    r = VariableRegistry()
    for _ in range(5):
        r.fresh([0.4, 0.6])
    return r


class TestTrivialCases:
    def test_false_dnf(self, registry):
        estimator = KarpLubyEstimator(DNF([]), registry)
        assert estimator.is_trivial
        assert estimator.trivial_probability == 0.0

    def test_true_dnf(self, registry):
        estimator = KarpLubyEstimator(DNF([TRUE_CONDITION]), registry)
        assert estimator.is_trivial
        assert estimator.trivial_probability == 1.0

    def test_zero_probability_clauses_normalize_to_false(self, registry):
        zero = registry.fresh([0.0, 1.0])
        estimator = KarpLubyEstimator(DNF([Condition.atom(zero, 0)]), registry)
        assert estimator.is_trivial

    def test_sampling_trivial_raises(self, registry):
        estimator = KarpLubyEstimator(DNF([]), registry)
        with pytest.raises(ConfidenceError):
            estimator.sample()

    def test_convenience_wrapper_trivial(self, registry):
        assert karp_luby_confidence(DNF([]), registry, 10) == 0.0


class TestEstimation:
    def test_single_clause_exact_in_expectation(self, registry):
        """With one clause, Z == 1 always, so the estimate equals p1."""
        clause = Condition.of([(1, 0), (2, 1)])
        estimator = KarpLubyEstimator(DNF([clause]), registry, random.Random(1))
        estimate = estimator.estimate(100)
        assert estimate == pytest.approx(clause.probability(registry))

    def test_samples_are_binary(self, registry):
        dnf = DNF([Condition.atom(1, 0), Condition.atom(2, 0)])
        estimator = KarpLubyEstimator(dnf, registry, random.Random(2))
        draws = {estimator.sample() for _ in range(50)}
        assert draws <= {0, 1}

    def test_estimate_close_to_exact(self, registry):
        dnf = DNF(
            [
                Condition.of([(1, 0), (2, 0)]),
                Condition.of([(2, 0), (3, 1)]),
                Condition.atom(4, 1),
            ]
        )
        exact = exact_confidence(dnf, registry)
        estimate = karp_luby_confidence(dnf, registry, 40_000, random.Random(3))
        assert estimate == pytest.approx(exact, rel=0.03)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_dnfs_concentrate(self, seed):
        rng = random.Random(seed)
        dnf, registry = random_dnf(5, 6, 2, rng)
        exact = exact_confidence(dnf, registry)
        estimate = karp_luby_confidence(dnf, registry, 30_000, random.Random(seed + 50))
        assert estimate == pytest.approx(exact, abs=0.02)

    def test_unbiasedness_mean_of_batches(self, registry):
        """Average of many small estimates converges to the exact value --
        the estimator is unbiased, not merely consistent."""
        dnf = DNF([Condition.atom(1, 0), Condition.of([(1, 1), (2, 0)])])
        exact = exact_confidence(dnf, registry)
        rng = random.Random(17)
        estimator = KarpLubyEstimator(dnf, registry, rng)
        batches = [estimator.estimate(20) for _ in range(2_000)]
        assert sum(batches) / len(batches) == pytest.approx(exact, abs=0.01)

    def test_mean_lower_bound(self, registry):
        dnf = DNF([Condition.atom(1, 0), Condition.atom(2, 0), Condition.atom(3, 0)])
        estimator = KarpLubyEstimator(dnf, registry)
        assert estimator.mean_lower_bound() >= 1.0 / 3.0 - 1e-12

    def test_sample_counter(self, registry):
        dnf = DNF([Condition.atom(1, 0), Condition.atom(2, 0)])
        estimator = KarpLubyEstimator(dnf, registry, random.Random(0))
        estimator.estimate(25)
        assert estimator.samples_drawn == 25

    def test_invalid_sample_count(self, registry):
        dnf = DNF([Condition.atom(1, 0)])
        estimator = KarpLubyEstimator(dnf, registry)
        with pytest.raises(ConfidenceError):
            estimator.estimate(0)

    def test_multivalued_variables(self):
        """The adaptation beyond boolean DNF counting: variables with
        domains > 2 and non-uniform distributions."""
        registry = VariableRegistry()
        x = registry.fresh([0.2, 0.3, 0.5])
        y = registry.fresh([0.1, 0.9])
        dnf = DNF([Condition.atom(x, 2), Condition.of([(x, 0), (y, 1)])])
        exact = exact_confidence(dnf, registry)
        estimate = karp_luby_confidence(dnf, registry, 50_000, random.Random(4))
        assert estimate == pytest.approx(exact, rel=0.05)
