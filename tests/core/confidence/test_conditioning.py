"""Tests for conditioning (the [3] extension): Bayes-rule agreement with
the enumeration oracle, local-event restriction, posterior world tables."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.conditions import Condition, TRUE_CONDITION
from repro.core.confidence.conditioning import (
    condition,
    conditional_confidence,
    conjoin_dnfs,
    is_local_event,
    posterior_worlds,
    restrict_variable,
)
from repro.core.confidence.dnf import DNF
from repro.core.confidence.naive import confidence_by_enumeration
from repro.core.variables import VariableRegistry
from repro.core.worlds import enumerate_worlds
from repro.datagen.random_dnf import random_dnf
from repro.errors import ConfidenceError


@pytest.fixture
def registry():
    r = VariableRegistry()
    for _ in range(4):
        r.fresh([0.5, 0.3, 0.2])
    return r


class TestConjoinDnfs:
    def test_distributes(self):
        e = DNF([Condition.atom(1, 0), Condition.atom(2, 0)])
        f = DNF([Condition.atom(3, 0)])
        product = conjoin_dnfs(e, f)
        assert len(product) == 2
        assert all(clause.variables() >= {3} for clause in product)

    def test_contradictions_dropped(self):
        e = DNF([Condition.atom(1, 0)])
        f = DNF([Condition.atom(1, 1)])
        assert conjoin_dnfs(e, f).is_false

    def test_semantics(self, registry):
        e = DNF([Condition.atom(1, 0), Condition.of([(2, 1), (3, 0)])])
        f = DNF([Condition.atom(2, 1), Condition.atom(1, 2)])
        product = conjoin_dnfs(e, f)
        for world, _ in enumerate_worlds(registry, [1, 2, 3]):
            assert product.satisfied_by(world) == (
                e.satisfied_by(world) and f.satisfied_by(world)
            )


class TestConditionalConfidence:
    def test_matches_bayes_on_oracle(self, registry):
        e = DNF([Condition.atom(1, 0), Condition.of([(2, 1), (3, 0)])])
        f = DNF([Condition.atom(2, 1), Condition.atom(3, 2)])
        p_f = confidence_by_enumeration(f, registry)
        p_ef = confidence_by_enumeration(conjoin_dnfs(e, f), registry)
        expected = p_ef / p_f
        assert conditional_confidence(e, f, registry) == pytest.approx(expected)

    def test_conditioning_on_truth_is_identity(self, registry):
        e = DNF([Condition.atom(1, 0)])
        top = DNF([TRUE_CONDITION])
        assert conditional_confidence(e, top, registry) == pytest.approx(0.5)

    def test_conditioning_on_event_itself_is_one(self, registry):
        e = DNF([Condition.atom(1, 0), Condition.atom(2, 1)])
        assert conditional_confidence(e, e, registry) == pytest.approx(1.0)

    def test_impossible_evidence_rejected(self, registry):
        zero = registry.fresh([0.0, 1.0])
        impossible = DNF([Condition.atom(zero, 0)])
        with pytest.raises(ConfidenceError):
            conditional_confidence(DNF([Condition.atom(1, 0)]), impossible, registry)

    @given(st.integers(0, 5_000))
    @settings(max_examples=20, deadline=None)
    def test_random_instances_match_oracle(self, seed):
        rng = random.Random(seed)
        event, registry = random_dnf(4, 3, 2, rng)
        evidence, _ = random_dnf(
            4, 2, 2, rng, registry=registry,
            variables=list(registry.variables()),
        )
        p_f = confidence_by_enumeration(evidence, registry)
        if p_f == 0.0:
            return
        p_ef = confidence_by_enumeration(conjoin_dnfs(event, evidence), registry)
        assert conditional_confidence(event, evidence, registry) == pytest.approx(
            p_ef / p_f
        )


class TestRestrictVariable:
    def test_renormalizes(self, registry):
        conditioned = restrict_variable(registry, 1, [0, 1])
        assert conditioned.probability(1, 0) == pytest.approx(0.5 / 0.8)
        assert conditioned.probability(1, 1) == pytest.approx(0.3 / 0.8)
        assert conditioned.probability(1, 2) == 0.0

    def test_other_variables_untouched(self, registry):
        conditioned = restrict_variable(registry, 1, [0])
        assert conditioned.probability(2, 0) == pytest.approx(0.5)

    def test_original_registry_unchanged(self, registry):
        restrict_variable(registry, 1, [0])
        assert registry.probability(1, 2) == pytest.approx(0.2)

    def test_empty_mass_rejected(self, registry):
        zero = registry.fresh([0.0, 1.0])
        with pytest.raises(ConfidenceError):
            restrict_variable(registry, zero, [0])

    def test_matches_conditional_confidence(self, registry):
        """Restricting x1 to {0,1} then asking P(x2=1) must equal
        P(x2=1 | x1 in {0,1}) computed by Bayes (they're independent, so
        both equal the prior)."""
        conditioned = restrict_variable(registry, 1, [0, 1])
        e = DNF([Condition.atom(2, 1)])
        f = DNF([Condition.atom(1, 0), Condition.atom(1, 1)])
        bayes = conditional_confidence(e, f, registry)
        direct = confidence_by_enumeration(e, conditioned)
        assert bayes == pytest.approx(direct)

    def test_correlated_event_differs_from_prior(self, registry):
        """Conditioning on x1 in {0} changes P(E) for events over x1."""
        conditioned = restrict_variable(registry, 1, [0])
        e = DNF([Condition.of([(1, 0), (2, 0)])])
        prior = confidence_by_enumeration(e, registry)
        posterior = confidence_by_enumeration(e, conditioned)
        assert posterior == pytest.approx(0.5)  # P(x2=0) alone now
        assert posterior > prior


class TestPosteriorWorlds:
    def test_normalized_and_consistent(self, registry):
        evidence = DNF([Condition.of([(1, 0), (2, 1)]), Condition.atom(3, 2)])
        posterior = posterior_worlds(registry, evidence)
        assert sum(p for _, p in posterior) == pytest.approx(1.0)
        for world, p in posterior:
            assert evidence.satisfied_by(world)
            assert p > 0.0

    def test_posterior_probability_via_bayes(self, registry):
        evidence = DNF([Condition.atom(1, 0), Condition.atom(2, 1)])
        event = DNF([Condition.atom(1, 0)])
        posterior = posterior_worlds(registry, evidence, [1, 2])
        p_event = sum(p for world, p in posterior if event.satisfied_by(world))
        assert p_event == pytest.approx(
            conditional_confidence(event, evidence, registry)
        )

    def test_impossible_evidence_rejected(self, registry):
        with pytest.raises(ConfidenceError):
            posterior_worlds(registry, DNF([]))


class TestConditionDispatch:
    def test_local_event_keeps_product_form(self, registry):
        evidence = DNF([Condition.atom(1, 0), Condition.atom(1, 1)])
        assert is_local_event(evidence)
        new_registry, table = condition(registry, evidence)
        assert table is None
        assert new_registry.probability(1, 2) == 0.0

    def test_nonlocal_event_materializes(self, registry):
        evidence = DNF([Condition.of([(1, 0), (2, 1)])])
        assert not is_local_event(evidence)
        new_registry, table = condition(registry, evidence)
        assert new_registry is None
        assert table is not None and len(table) > 0

    def test_trivial_evidence_copies_registry(self, registry):
        evidence = DNF([TRUE_CONDITION])
        # TRUE_CONDITION has no variables: treated as non-local with a
        # degenerate world table over zero variables.
        new_registry, table = condition(registry, evidence)
        assert (new_registry is not None) or (table is not None)
