"""Tests for the Dagum-Karp-Luby-Ross optimal Monte Carlo algorithm.

The headline property under test: ``aconf(ε, δ)`` returns p̂ with
P(|p̂ − p| > ε·p) < δ, and the sample count adapts to the variance.
"""

import math
import random

import pytest

from repro.core.conditions import Condition
from repro.core.confidence.dklr import (
    ApproximationResult,
    aa_estimate,
    aconf,
    approximate_confidence,
    stopping_rule_estimate,
)
from repro.core.confidence.dnf import DNF
from repro.core.confidence.exact import exact_confidence
from repro.core.variables import VariableRegistry
from repro.datagen.random_dnf import random_dnf
from repro.errors import ConfidenceError


def bernoulli_sampler(p, rng):
    return lambda: 1.0 if rng.random() < p else 0.0


class TestStoppingRule:
    def test_estimates_bernoulli_mean(self):
        rng = random.Random(1)
        estimate, samples = stopping_rule_estimate(bernoulli_sampler(0.3, rng), 0.1, 0.05)
        assert estimate == pytest.approx(0.3, rel=0.1)
        assert samples > 0

    def test_sample_count_scales_inversely_with_mean(self):
        """The SRA's sample count is ~Υ₁/μ: smaller means need more."""
        rng = random.Random(2)
        _, n_large = stopping_rule_estimate(bernoulli_sampler(0.8, rng), 0.2, 0.1)
        _, n_small = stopping_rule_estimate(bernoulli_sampler(0.05, rng), 0.2, 0.1)
        assert n_small > 5 * n_large

    def test_zero_mean_guard(self):
        with pytest.raises(ConfidenceError):
            stopping_rule_estimate(lambda: 0.0, 0.5, 0.25, max_samples=1000)

    def test_parameter_validation(self):
        sampler = lambda: 1.0
        with pytest.raises(ConfidenceError):
            stopping_rule_estimate(sampler, 0.0, 0.1)
        with pytest.raises(ConfidenceError):
            stopping_rule_estimate(sampler, 0.1, 1.5)

    def test_constant_one_terminates_quickly(self):
        estimate, samples = stopping_rule_estimate(lambda: 1.0, 0.1, 0.05)
        assert estimate == pytest.approx(1.0, rel=0.15)
        # Υ₁ samples of value 1.0 suffice.
        upsilon1 = 1 + (1.1) * 4 * (math.e - 2) * math.log(2 / 0.05) / 0.01
        assert samples <= math.ceil(upsilon1)


class TestAAAlgorithm:
    def test_estimates_bernoulli(self):
        rng = random.Random(3)
        result = aa_estimate(bernoulli_sampler(0.4, rng), 0.1, 0.05)
        assert result.estimate == pytest.approx(0.4, rel=0.1)
        assert result.total_samples == (
            result.pilot_samples + result.variance_samples + result.main_samples
        )

    def test_low_variance_needs_fewer_samples(self):
        """DKLR's optimality: for a nearly deterministic variable the main
        run shrinks (ρ ≈ 0 clamps to ε·μ̂) compared to a fair Bernoulli."""
        rng = random.Random(4)
        nearly_constant = aa_estimate(lambda: 0.5, 0.05, 0.05)
        fair_coin = aa_estimate(bernoulli_sampler(0.5, rng), 0.05, 0.05)
        assert nearly_constant.main_samples < fair_coin.main_samples

    def test_guarantee_empirically(self):
        """Run AA many times; the fraction of runs violating the relative
        error bound must be below δ (with slack for test stability)."""
        p = 0.3
        epsilon, delta = 0.2, 0.2
        failures = 0
        runs = 60
        for seed in range(runs):
            rng = random.Random(1000 + seed)
            result = aa_estimate(bernoulli_sampler(p, rng), epsilon, delta)
            if abs(result.estimate - p) > epsilon * p:
                failures += 1
        assert failures / runs <= delta  # typically far below


class TestAconf:
    @pytest.fixture
    def registry(self):
        r = VariableRegistry()
        for _ in range(4):
            r.fresh([0.4, 0.6])
        return r

    def test_trivial_dnfs_exact_without_sampling(self, registry):
        result = approximate_confidence(DNF([]), registry)
        assert result.estimate == 0.0
        assert result.total_samples == 0

    def test_matches_exact_within_epsilon(self, registry):
        dnf = DNF(
            [
                Condition.of([(1, 0), (2, 0)]),
                Condition.atom(3, 1),
                Condition.of([(2, 1), (4, 0)]),
            ]
        )
        exact = exact_confidence(dnf, registry)
        estimate = aconf(dnf, registry, 0.05, 0.05, random.Random(7))
        assert abs(estimate - exact) <= 2 * 0.05 * exact  # 2x slack

    @pytest.mark.parametrize("seed", range(4))
    def test_random_dnfs_guarantee(self, seed):
        rng = random.Random(seed)
        dnf, registry = random_dnf(5, 5, 2, rng)
        exact = exact_confidence(dnf, registry)
        estimate = aconf(dnf, registry, 0.1, 0.1, random.Random(seed + 30))
        assert abs(estimate - exact) <= 3 * 0.1 * max(exact, 1e-9)

    def test_scaling_transfer(self, registry):
        """The relative guarantee on μ_Z transfers through U: confirm the
        result is U * mean, not mean."""
        clause = Condition.atom(1, 1)  # p = 0.6
        result = approximate_confidence(DNF([clause]), registry, 0.1, 0.1)
        # Single clause: Z == 1 always, estimate must be exactly U = 0.6.
        assert result.estimate == pytest.approx(0.6)

    def test_tighter_epsilon_uses_more_samples(self, registry):
        dnf = DNF([Condition.atom(1, 0), Condition.of([(2, 0), (3, 0)])])
        loose = approximate_confidence(dnf, registry, 0.2, 0.1, random.Random(8))
        tight = approximate_confidence(dnf, registry, 0.05, 0.1, random.Random(8))
        assert tight.total_samples > loose.total_samples
