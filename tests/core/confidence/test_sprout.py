"""Tests for SPROUT: hierarchy detection, safe plans, lazy == eager ==
exact lineage."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.confidence.exact import exact_confidence
from repro.core.confidence.sprout import (
    ConjunctiveQuery,
    Subgoal,
    TupleIndependentTable,
    Var,
    is_hierarchical,
    query_lineage,
    sprout_confidence,
    subgoals_of_variable,
)
from repro.engine.relation import Relation
from repro.engine.schema import Schema
from repro.engine.types import INTEGER, TEXT
from repro.errors import (
    ConfidenceError,
    NotTupleIndependentError,
    UnsafeQueryError,
)


def make_table(name, columns, rows, probs):
    schema = Schema.of(*columns)
    return TupleIndependentTable(name, Relation(schema, rows), probs)


@pytest.fixture
def db():
    rng = random.Random(31)
    r = make_table("R", (("a", INTEGER),), [(i,) for i in range(4)],
                   [rng.uniform(0.1, 0.9) for _ in range(4)])
    s_rows = [(rng.randrange(4), rng.randrange(3)) for _ in range(10)]
    s = make_table("S", (("a", INTEGER), ("b", INTEGER)), s_rows,
                   [rng.uniform(0.1, 0.9) for _ in range(10)])
    t = make_table("T", (("b", INTEGER),), [(i,) for i in range(3)],
                   [rng.uniform(0.1, 0.9) for _ in range(3)])
    return {"R": r, "S": s, "T": t}


class TestQueryStructure:
    def test_subgoal_variables(self):
        sg = Subgoal("R", [Var("x"), 5, Var("y")])
        assert sg.variables() == {"x", "y"}

    def test_self_join_rejected(self):
        with pytest.raises(UnsafeQueryError):
            ConjunctiveQuery([], [Subgoal("R", [Var("x")]), Subgoal("R", [Var("y")])])

    def test_unused_head_variable_rejected(self):
        with pytest.raises(ConfidenceError):
            ConjunctiveQuery(["z"], [Subgoal("R", [Var("x")])])

    def test_subgoals_of_variable(self):
        q = ConjunctiveQuery(
            [], [Subgoal("R", [Var("x")]), Subgoal("S", [Var("x"), Var("y")])]
        )
        sg = subgoals_of_variable(q)
        assert sg["x"] == {0, 1} and sg["y"] == {1}


class TestHierarchyDetection:
    def test_h0_is_not_hierarchical(self):
        q = ConjunctiveQuery(
            [],
            [
                Subgoal("R", [Var("x")]),
                Subgoal("S", [Var("x"), Var("y")]),
                Subgoal("T", [Var("y")]),
            ],
        )
        assert not is_hierarchical(q)

    def test_nested_is_hierarchical(self):
        q = ConjunctiveQuery(
            [], [Subgoal("R", [Var("x")]), Subgoal("S", [Var("x"), Var("y")])]
        )
        assert is_hierarchical(q)

    def test_head_variables_exempt(self):
        """H0 becomes hierarchical when x is a head variable."""
        q = ConjunctiveQuery(
            ["x"],
            [
                Subgoal("R", [Var("x")]),
                Subgoal("S", [Var("x"), Var("y")]),
                Subgoal("T", [Var("y")]),
            ],
        )
        assert is_hierarchical(q)

    def test_disjoint_variables_hierarchical(self):
        q = ConjunctiveQuery(
            [], [Subgoal("R", [Var("x")]), Subgoal("T", [Var("y")])]
        )
        assert is_hierarchical(q)

    def test_unsafe_query_raises(self, db):
        q = ConjunctiveQuery(
            [],
            [
                Subgoal("R", [Var("x")]),
                Subgoal("S", [Var("x"), Var("y")]),
                Subgoal("T", [Var("y")]),
            ],
        )
        with pytest.raises(UnsafeQueryError):
            sprout_confidence(q, db)


class TestTupleIndependentTable:
    def test_probability_count_mismatch(self):
        with pytest.raises(NotTupleIndependentError):
            make_table("R", (("a", INTEGER),), [(1,)], [0.5, 0.5])

    def test_probability_range(self):
        with pytest.raises(NotTupleIndependentError):
            make_table("R", (("a", INTEGER),), [(1,)], [1.5])

    def test_from_prob_column(self):
        schema = Schema.of(("a", INTEGER), ("_p", INTEGER))
        relation = Relation(Schema.of(("a", INTEGER), ("_p", INTEGER)), [])
        # use floats via generic path
        rel = Relation(Schema.of(("a", INTEGER), ("_p", INTEGER)), [(1, 1), (2, 0)])
        table = TupleIndependentTable.from_prob_column("R", rel)
        assert table.relation.schema.names == ["a"]
        assert table.probabilities == [1.0, 0.0]


QUERIES = [
    ConjunctiveQuery([], [Subgoal("R", [Var("x")])]),
    ConjunctiveQuery(["x"], [Subgoal("R", [Var("x")])]),
    ConjunctiveQuery([], [Subgoal("R", [Var("x")]), Subgoal("S", [Var("x"), Var("y")])]),
    ConjunctiveQuery(["x"], [Subgoal("S", [Var("x"), Var("y")]), Subgoal("T", [Var("y")])]),
    ConjunctiveQuery(["y"], [Subgoal("S", [Var("x"), Var("y")])]),
    ConjunctiveQuery(["x", "y"], [Subgoal("S", [Var("x"), Var("y")]), Subgoal("T", [Var("y")]), Subgoal("R", [Var("x")])]),
    ConjunctiveQuery([], [Subgoal("S", [Var("x"), 0])]),
    ConjunctiveQuery([], [Subgoal("R", [Var("x")]), Subgoal("T", [Var("y")])]),
]


class TestCorrectness:
    @pytest.mark.parametrize("query", QUERIES, ids=[repr(q) for q in QUERIES])
    def test_eager_equals_lazy_equals_exact(self, query, db):
        eager = sprout_confidence(query, db, "eager")
        lazy = sprout_confidence(query, db, "lazy")
        lineages, registry = query_lineage(query, db)
        assert len(eager) == len(lazy) == len(lineages)
        lazy_by_key = {row[:-1]: row[-1] for row in lazy}
        for row in eager:
            key, p_eager = row[:-1], row[-1]
            assert p_eager == pytest.approx(lazy_by_key[key], abs=1e-12)
            p_exact = exact_confidence(lineages[key], registry)
            assert p_eager == pytest.approx(p_exact, abs=1e-9)

    def test_constants_filter(self, db):
        q = ConjunctiveQuery([], [Subgoal("S", [Var("x"), 0])])
        result = sprout_confidence(q, db, "eager")
        lineages, registry = query_lineage(q, db)
        expected = exact_confidence(lineages[()], registry) if lineages else 0.0
        assert result.rows[0][-1] == pytest.approx(expected)

    def test_no_matches_empty_result(self, db):
        q = ConjunctiveQuery([], [Subgoal("S", [Var("x"), 999])])
        result = sprout_confidence(q, db, "eager")
        # The boolean query with no satisfying assignments has no answer row.
        assert len(result) == 0

    @pytest.mark.parametrize("strategy", ["eager", "lazy"])
    def test_empty_table_yields_empty_result(self, db, strategy):
        """Regression: with an empty first subgoal the hash-join fold
        stops early; the lazy plan must still resolve every query
        variable's position and return an empty relation, not crash."""
        empty_db = dict(db)
        empty_db["R"] = make_table("R", (("a", INTEGER),), [], [])
        q = ConjunctiveQuery(
            ["x", "y"],
            [Subgoal("R", [Var("x")]), Subgoal("S", [Var("x"), Var("y")])],
        )
        assert len(sprout_confidence(q, empty_db, strategy)) == 0
        lineages, _ = query_lineage(q, empty_db)
        assert lineages == {}

    def test_repeated_variable_in_subgoal(self, db):
        q = ConjunctiveQuery([], [Subgoal("S", [Var("x"), Var("x")])])
        eager = sprout_confidence(q, db, "eager")
        lineages, registry = query_lineage(q, db)
        if lineages:
            assert eager.rows[0][-1] == pytest.approx(
                exact_confidence(lineages[()], registry)
            )

    def test_unknown_strategy(self, db):
        with pytest.raises(ConfidenceError):
            sprout_confidence(QUERIES[0], db, "sideways")

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_random_instances(self, seed):
        rng = random.Random(seed)
        r = make_table("R", (("a", INTEGER),),
                       [(i,) for i in range(3)],
                       [rng.uniform(0.05, 0.95) for _ in range(3)])
        s_rows = list({(rng.randrange(3), rng.randrange(3)) for _ in range(6)})
        s = make_table("S", (("a", INTEGER), ("b", INTEGER)), s_rows,
                       [rng.uniform(0.05, 0.95) for _ in range(len(s_rows))])
        database = {"R": r, "S": s}
        q = ConjunctiveQuery(
            [], [Subgoal("R", [Var("x")]), Subgoal("S", [Var("x"), Var("y")])]
        )
        eager = sprout_confidence(q, database, "eager")
        lazy = sprout_confidence(q, database, "lazy")
        lineages, registry = query_lineage(q, database)
        if not lineages:
            assert len(eager) == 0
            return
        expected = exact_confidence(lineages[()], registry)
        assert eager.rows[0][-1] == pytest.approx(expected, abs=1e-9)
        assert lazy.rows[0][-1] == pytest.approx(expected, abs=1e-9)
