"""Tests for lineage DNF construction and normalization."""

import pytest

from repro.core.conditions import Condition, TRUE_CONDITION
from repro.core.confidence.dnf import DNF
from repro.core.urelation import URelation
from repro.core.variables import VariableRegistry
from repro.engine.schema import Schema
from repro.engine.types import INTEGER, TEXT
from repro.errors import ConfidenceError


@pytest.fixture
def registry():
    r = VariableRegistry()
    for _ in range(4):
        r.fresh([0.5, 0.5])
    return r


class TestClassification:
    def test_empty_dnf_is_false(self):
        dnf = DNF([])
        assert dnf.is_false and not dnf.is_true

    def test_empty_clause_makes_true(self):
        dnf = DNF([TRUE_CONDITION, Condition.atom(1, 0)])
        assert dnf.is_true

    def test_variables_union(self):
        dnf = DNF([Condition.of([(1, 0), (2, 1)]), Condition.atom(3, 0)])
        assert dnf.variables() == {1, 2, 3}

    def test_counts_and_ratio(self):
        dnf = DNF([Condition.of([(1, 0), (2, 1)]), Condition.atom(3, 0)])
        assert dnf.variable_count() == 3
        assert dnf.clause_count() == 2
        assert dnf.variable_to_clause_ratio() == pytest.approx(1.5)

    def test_ratio_of_empty_raises(self):
        with pytest.raises(ConfidenceError):
            DNF([]).variable_to_clause_ratio()

    def test_occurrence_counts(self):
        dnf = DNF(
            [Condition.of([(1, 0), (2, 1)]), Condition.of([(1, 1)]), Condition.atom(2, 0)]
        )
        assert dnf.occurrence_counts() == {1: 2, 2: 2}


class TestNormalization:
    def test_duplicates_removed(self):
        clause = Condition.atom(1, 0)
        assert len(DNF([clause, clause]).normalized()) == 1

    def test_absorption(self):
        weak = Condition.atom(1, 0)
        strong = Condition.of([(1, 0), (2, 1)])
        normalized = DNF([strong, weak]).normalized()
        assert normalized.clauses == [weak]

    def test_zero_probability_clauses_dropped(self, registry):
        zero_var = registry.fresh([0.0, 1.0])
        dnf = DNF([Condition.atom(zero_var, 0), Condition.atom(1, 0)])
        normalized = dnf.normalized(registry)
        assert len(normalized) == 1

    def test_true_clause_absorbs_everything(self):
        normalized = DNF([Condition.atom(1, 0), TRUE_CONDITION]).normalized()
        assert normalized.clauses == [TRUE_CONDITION]


class TestSemantics:
    def test_satisfied_by(self):
        dnf = DNF([Condition.atom(1, 0), Condition.atom(2, 1)])
        assert dnf.satisfied_by({1: 0, 2: 0})
        assert dnf.satisfied_by({1: 1, 2: 1})
        assert not dnf.satisfied_by({1: 1, 2: 0})

    def test_first_satisfied_clause(self):
        dnf = DNF([Condition.atom(1, 0), Condition.atom(2, 1)])
        assert dnf.first_satisfied_clause({1: 0, 2: 1}) == 0
        assert dnf.first_satisfied_clause({1: 1, 2: 1}) == 1
        assert dnf.first_satisfied_clause({1: 1, 2: 0}) is None

    def test_restrict(self):
        dnf = DNF([Condition.of([(1, 0), (2, 1)]), Condition.atom(1, 1)])
        restricted = dnf.restrict(1, 0)
        assert len(restricted) == 1
        assert restricted.clauses[0] == Condition.atom(2, 1)

    def test_restrict_can_create_true(self):
        dnf = DNF([Condition.atom(1, 0)])
        assert dnf.restrict(1, 0).is_true


class TestComponents:
    def test_independent_split(self):
        dnf = DNF(
            [
                Condition.of([(1, 0), (2, 1)]),
                Condition.atom(2, 0),
                Condition.atom(3, 1),
            ]
        )
        components = dnf.independent_components()
        sizes = sorted(len(c) for c in components)
        assert sizes == [1, 2]

    def test_single_component_when_chained(self):
        dnf = DNF(
            [
                Condition.of([(1, 0), (2, 1)]),
                Condition.of([(2, 0), (3, 1)]),
                Condition.of([(3, 0), (4, 1)]),
            ]
        )
        assert len(dnf.independent_components()) == 1

    def test_true_clauses_are_own_components(self):
        dnf = DNF([TRUE_CONDITION, TRUE_CONDITION, Condition.atom(1, 0)])
        assert len(dnf.independent_components()) == 3


class TestFromURelation:
    def test_lineage_per_payload(self, registry):
        schema = Schema.of(("k", TEXT),)
        urel = URelation.from_conditions(
            schema,
            [("a",), ("a",), ("b",)],
            [Condition.atom(1, 0), Condition.atom(2, 1), Condition.atom(3, 0)],
            registry,
        )
        lineage = DNF.from_urelation(urel, ("a",))
        assert len(lineage) == 2
        whole = DNF.from_urelation(urel)
        assert len(whole) == 3

    def test_canonical_key_order_independent(self):
        a = DNF([Condition.atom(1, 0), Condition.atom(2, 1)])
        b = DNF([Condition.atom(2, 1), Condition.atom(1, 0)])
        assert a.canonical_key() == b.canonical_key()
