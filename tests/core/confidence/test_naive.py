"""Cross-checks between the two exponential oracles themselves."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.conditions import Condition, TRUE_CONDITION
from repro.core.confidence.dnf import DNF
from repro.core.confidence.naive import (
    confidence_by_enumeration,
    confidence_by_inclusion_exclusion,
)
from repro.core.variables import VariableRegistry
from repro.datagen.random_dnf import random_dnf


class TestBaseCases:
    @pytest.fixture
    def registry(self):
        r = VariableRegistry()
        r.fresh([0.25, 0.75])
        r.fresh([0.5, 0.5])
        return r

    def test_false(self, registry):
        assert confidence_by_enumeration(DNF([]), registry) == 0.0
        assert confidence_by_inclusion_exclusion(DNF([]), registry) == 0.0

    def test_true(self, registry):
        assert confidence_by_enumeration(DNF([TRUE_CONDITION]), registry) == 1.0
        assert confidence_by_inclusion_exclusion(DNF([TRUE_CONDITION]), registry) == 1.0

    def test_single_atom(self, registry):
        dnf = DNF([Condition.atom(1, 1)])
        assert confidence_by_enumeration(dnf, registry) == pytest.approx(0.75)
        assert confidence_by_inclusion_exclusion(dnf, registry) == pytest.approx(0.75)

    def test_overlapping_clauses(self, registry):
        # P(x=1 or y=0) = 0.75 + 0.5 - 0.375
        dnf = DNF([Condition.atom(1, 1), Condition.atom(2, 0)])
        expected = 0.75 + 0.5 - 0.375
        assert confidence_by_enumeration(dnf, registry) == pytest.approx(expected)
        assert confidence_by_inclusion_exclusion(dnf, registry) == pytest.approx(expected)

    def test_contradictory_subset_skipped(self, registry):
        # Clauses conflict on variable 1: P = p1 + p2 (exclusive events).
        dnf = DNF([Condition.atom(1, 0), Condition.atom(1, 1)])
        assert confidence_by_inclusion_exclusion(dnf, registry) == pytest.approx(1.0)


class TestOraclesAgree:
    @given(st.integers(0, 100_000))
    @settings(max_examples=40, deadline=None)
    def test_enumeration_equals_inclusion_exclusion(self, seed):
        rng = random.Random(seed)
        dnf, registry = random_dnf(
            n_variables=rng.randint(1, 5),
            n_clauses=rng.randint(1, 6),
            clause_width=rng.randint(1, 3),
            rng=rng,
            domain_size=rng.randint(2, 3),
        )
        a = confidence_by_enumeration(dnf, registry)
        b = confidence_by_inclusion_exclusion(dnf, registry)
        assert a == pytest.approx(b, abs=1e-10)
