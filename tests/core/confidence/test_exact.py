"""Tests for the Koch-Olteanu exact confidence algorithm.

The gold standard: on every randomly generated DNF, the exact engine, the
world-enumeration oracle, and inclusion-exclusion must agree to more than
floating-point accuracy.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.conditions import Condition, TRUE_CONDITION
from repro.core.confidence.dnf import DNF
from repro.core.confidence.exact import ExactConfidenceEngine, exact_confidence
from repro.core.confidence.naive import (
    confidence_by_enumeration,
    confidence_by_inclusion_exclusion,
)
from repro.core.variables import VariableRegistry
from repro.datagen.random_dnf import random_dnf


@pytest.fixture
def registry():
    r = VariableRegistry()
    for _ in range(6):
        r.fresh([0.5, 0.3, 0.2])
    return r


class TestBaseCases:
    def test_false(self, registry):
        assert exact_confidence(DNF([]), registry) == 0.0

    def test_true(self, registry):
        assert exact_confidence(DNF([TRUE_CONDITION]), registry) == 1.0

    def test_single_atom(self, registry):
        assert exact_confidence(DNF([Condition.atom(1, 0)]), registry) == pytest.approx(0.5)

    def test_single_clause_product(self, registry):
        clause = Condition.of([(1, 0), (2, 1)])
        assert exact_confidence(DNF([clause]), registry) == pytest.approx(0.15)

    def test_independent_clauses(self, registry):
        dnf = DNF([Condition.atom(1, 0), Condition.atom(2, 0)])
        assert exact_confidence(dnf, registry) == pytest.approx(1 - 0.5 * 0.5)

    def test_exclusive_alternatives_sum(self, registry):
        dnf = DNF([Condition.atom(1, 0), Condition.atom(1, 1)])
        assert exact_confidence(dnf, registry) == pytest.approx(0.8)

    def test_exhaustive_alternatives_give_one(self, registry):
        dnf = DNF([Condition.atom(1, v) for v in (0, 1, 2)])
        assert exact_confidence(dnf, registry) == pytest.approx(1.0)

    def test_subsumed_duplicate_lineage(self, registry):
        weak = Condition.atom(1, 0)
        strong = Condition.of([(1, 0), (2, 0)])
        assert exact_confidence(DNF([weak, strong]), registry) == pytest.approx(0.5)


class TestAgainstOracles:
    @pytest.mark.parametrize("seed", range(20))
    def test_random_dnfs_match_enumeration(self, seed):
        rng = random.Random(seed)
        dnf, registry = random_dnf(
            n_variables=rng.randint(2, 7),
            n_clauses=rng.randint(1, 9),
            clause_width=rng.randint(1, 3),
            rng=rng,
            domain_size=rng.randint(2, 3),
        )
        expected = confidence_by_enumeration(dnf, registry)
        assert exact_confidence(dnf, registry) == pytest.approx(expected, abs=1e-12)

    @pytest.mark.parametrize("seed", range(10))
    def test_random_dnfs_match_inclusion_exclusion(self, seed):
        rng = random.Random(100 + seed)
        dnf, registry = random_dnf(5, 6, 2, rng)
        expected = confidence_by_inclusion_exclusion(dnf, registry)
        assert exact_confidence(dnf, registry) == pytest.approx(expected, abs=1e-10)

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_probability_in_unit_interval(self, seed):
        rng = random.Random(seed)
        dnf, registry = random_dnf(
            rng.randint(1, 6), rng.randint(1, 8), rng.randint(1, 3), rng
        )
        p = exact_confidence(dnf, registry)
        assert 0.0 <= p <= 1.0 + 1e-12

    def test_monotonicity_adding_clause(self, registry):
        """Adding a clause can only increase the probability."""
        rng = random.Random(5)
        base = DNF([Condition.of([(1, 0), (2, 1)])])
        bigger = DNF(base.clauses + [Condition.atom(3, 0)])
        assert exact_confidence(bigger, registry) >= exact_confidence(base, registry)


class TestEngineInternals:
    def test_memoization_hits(self):
        rng = random.Random(9)
        dnf, registry = random_dnf(4, 12, 2, rng)
        engine = ExactConfidenceEngine(registry)
        engine.probability(dnf)
        engine.probability(dnf)  # same DNF again: top-level memo hit
        assert engine.statistics.memo_hits >= 1

    def test_statistics_populated(self):
        rng = random.Random(9)
        dnf, registry = random_dnf(6, 8, 2, rng)
        engine = ExactConfidenceEngine(registry)
        engine.probability(dnf)
        stats = engine.statistics
        assert stats.subproblems > 0
        assert stats.eliminations + stats.decompositions + stats.clause_leaves > 0

    def test_ws_tree_structure(self):
        registry = VariableRegistry()
        x = registry.fresh([0.5, 0.5])
        y = registry.fresh([0.5, 0.5])
        # Two independent clauses: root must be a decompose node.
        dnf = DNF([Condition.atom(x, 0), Condition.atom(y, 0)])
        engine = ExactConfidenceEngine(registry)
        probability, tree = engine.probability_with_tree(dnf)
        assert probability == pytest.approx(0.75)
        assert tree.kind == "decompose"
        assert len(tree.children) == 2
        assert tree.size() >= 3 and tree.depth() == 2

    def test_ws_tree_elimination_node(self):
        registry = VariableRegistry()
        x = registry.fresh([0.5, 0.5])
        y = registry.fresh([0.5, 0.5])
        # Chained clauses sharing x: elimination must occur.
        dnf = DNF(
            [Condition.of([(x, 0), (y, 0)]), Condition.of([(x, 1), (y, 1)])]
        )
        engine = ExactConfidenceEngine(registry)
        probability, tree = engine.probability_with_tree(dnf)
        assert tree.kind == "eliminate"
        assert tree.variable in (x, y)
        assert tree.render()  # renders without error

    def test_variable_choice_prefers_frequent(self):
        registry = VariableRegistry()
        a = registry.fresh([0.5, 0.5])
        b = registry.fresh([0.5, 0.5])
        c = registry.fresh([0.5, 0.5])
        # a occurs in all three clauses; b, c in one each.
        dnf = DNF(
            [
                Condition.of([(a, 0), (b, 0)]),
                Condition.of([(a, 0), (c, 0)]),
                Condition.of([(a, 1), (b, 1)]),
            ]
        )
        engine = ExactConfidenceEngine(registry)
        assert engine._choose_variable(dnf) == a

    def test_large_independent_dnf_is_fast(self):
        """100 disjoint clauses: decomposition keeps this linear, whereas
        enumeration would need 2^100 worlds."""
        registry = VariableRegistry()
        clauses = []
        for _ in range(100):
            var = registry.fresh([0.9, 0.1])
            clauses.append(Condition.atom(var, 1))
        p = exact_confidence(DNF(clauses), registry)
        assert p == pytest.approx(1 - 0.9 ** 100)
