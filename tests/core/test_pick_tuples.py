"""Tests for the ``pick tuples`` construct (all-subsets semantics)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pick_tuples import pick_tuples
from repro.core.variables import VariableRegistry
from repro.core.worlds import relation_distribution
from repro.engine.expressions import ColumnRef
from repro.engine.relation import Relation
from repro.engine.schema import Schema
from repro.engine.types import FLOAT, INTEGER, TEXT
from repro.errors import PickTuplesError


@pytest.fixture
def items():
    schema = Schema.of(("name", TEXT), ("p", FLOAT))
    return Relation(schema, [("a", 0.9), ("b", 0.5), ("c", 0.1)])


class TestAllSubsets:
    def test_default_uniform_over_subsets(self):
        schema = Schema.of(("v", INTEGER))
        relation = Relation(schema, [(1,), (2,)])
        registry = VariableRegistry()
        urel = pick_tuples(relation, registry)
        buckets = relation_distribution(urel)
        assert len(buckets) == 4  # {}, {1}, {2}, {1,2}
        for _, p in buckets:
            assert p == pytest.approx(0.25)

    def test_probability_column(self, items):
        registry = VariableRegistry()
        urel = pick_tuples(items, registry, probability="p")
        for payload, condition in urel.rows_with_conditions():
            assert condition.probability(registry) == pytest.approx(payload[1])

    def test_probability_constant(self, items):
        registry = VariableRegistry()
        urel = pick_tuples(items, registry, probability=0.25)
        for _, condition in urel.rows_with_conditions():
            assert condition.probability(registry) == pytest.approx(0.25)

    def test_probability_expression(self, items):
        registry = VariableRegistry()
        urel = pick_tuples(items, registry, probability=ColumnRef("p"))
        probs = [c.probability(registry) for c in urel.conditions()]
        assert probs == pytest.approx([0.9, 0.5, 0.1])

    def test_empty_input(self):
        schema = Schema.of(("v", INTEGER))
        registry = VariableRegistry()
        urel = pick_tuples(Relation(schema, []), registry)
        assert len(urel) == 0

    def test_probability_out_of_range_rejected(self, items):
        registry = VariableRegistry()
        with pytest.raises(PickTuplesError):
            pick_tuples(items, registry, probability=1.5)

    def test_zero_and_one_probabilities_allowed(self):
        schema = Schema.of(("v", INTEGER), ("p", FLOAT))
        relation = Relation(schema, [(1, 0.0), (2, 1.0)])
        registry = VariableRegistry()
        urel = pick_tuples(relation, registry, probability="p")
        probs = [c.probability(registry) for c in urel.conditions()]
        assert probs == pytest.approx([0.0, 1.0])


class TestDuplicateHandling:
    def test_default_duplicates_share_fate(self):
        schema = Schema.of(("v", INTEGER))
        relation = Relation(schema, [(1,), (1,)])
        registry = VariableRegistry()
        urel = pick_tuples(relation, registry, probability=0.5)
        assert len(registry) == 1  # one shared variable
        buckets = relation_distribution(urel, distinct=False)
        # Either both copies or neither: two outcomes.
        sizes = sorted(len(rel) for rel, _ in buckets)
        assert sizes == [0, 2]

    def test_independently_gives_fresh_variables(self):
        schema = Schema.of(("v", INTEGER))
        relation = Relation(schema, [(1,), (1,)])
        registry = VariableRegistry()
        urel = pick_tuples(relation, registry, probability=0.5, independently=True)
        assert len(registry) == 2
        buckets = relation_distribution(urel, distinct=False)
        # The two single-copy worlds yield equal instances and merge.
        masses = {len(rel): p for rel, p in buckets}
        assert sorted(masses) == [0, 1, 2]
        assert masses[1] == pytest.approx(0.5)

    def test_modes_coincide_without_duplicates(self, items):
        registry_a = VariableRegistry()
        shared = pick_tuples(items, registry_a, probability="p")
        registry_b = VariableRegistry()
        independent = pick_tuples(
            items, registry_b, probability="p", independently=True
        )
        dist_a = {
            tuple(sorted(rel.rows)): p for rel, p in relation_distribution(shared)
        }
        dist_b = {
            tuple(sorted(rel.rows)): p
            for rel, p in relation_distribution(independent)
        }
        assert set(dist_a) == set(dist_b)
        for key in dist_a:
            assert dist_a[key] == pytest.approx(dist_b[key])

    @given(st.lists(st.floats(0.0, 1.0), min_size=1, max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_subset_masses_sum_to_one(self, probs):
        schema = Schema.of(("v", INTEGER), ("p", FLOAT))
        relation = Relation(schema, [(i, p) for i, p in enumerate(probs)])
        registry = VariableRegistry()
        urel = pick_tuples(relation, registry, probability="p", independently=True)
        total = sum(p for _, p in relation_distribution(urel))
        assert total == pytest.approx(1.0)
