"""Tests for U-relations: the wide encoding, world semantics, and
vertical decomposition."""

import pytest

from repro.core.conditions import Condition, TRUE_CONDITION
from repro.core.urelation import (
    URelation,
    decode_condition,
    encode_condition,
    vertical_decompose,
    vertical_recompose,
)
from repro.core.variables import TOP_VARIABLE, VariableRegistry
from repro.engine.relation import Relation
from repro.engine.schema import Schema
from repro.engine.types import FLOAT, INTEGER, TEXT
from repro.errors import ConditionError, SchemaError


@pytest.fixture
def registry():
    return VariableRegistry()


@pytest.fixture
def simple(registry):
    """Two-column payload with one binary variable x: row1 on x=0, row2 on
    x=1, row3 certain."""
    x = registry.fresh([0.4, 0.6], name="x")
    schema = Schema.of(("name", TEXT), ("score", INTEGER))
    return (
        URelation.from_conditions(
            schema,
            [("a", 1), ("b", 2), ("c", 3)],
            [Condition.atom(x, 0), Condition.atom(x, 1), TRUE_CONDITION],
            registry,
        ),
        x,
    )


class TestEncoding:
    def test_wide_schema_shape(self, simple):
        urel, _ = simple
        assert urel.payload_arity == 2
        assert urel.cond_arity == 1
        assert urel.relation.schema.names == ["name", "score", "_v0", "_d0", "_p0"]

    def test_true_condition_padded_with_top(self, simple):
        urel, _ = simple
        row = urel.relation.rows[2]
        assert row[2] == TOP_VARIABLE and row[3] == 0 and row[4] == 1.0

    def test_probability_columns_cached(self, simple, registry):
        urel, x = simple
        assert urel.relation.rows[0][4] == pytest.approx(0.4)
        assert urel.relation.rows[1][4] == pytest.approx(0.6)

    def test_decode_roundtrip(self, registry):
        x = registry.fresh([0.5, 0.5])
        y = registry.fresh([0.5, 0.5])
        condition = Condition.of([(x, 1), (y, 0)])
        encoded = encode_condition(condition, 3, registry)
        decoded = decode_condition((0,) + encoded, 1, 3)
        assert decoded == condition

    def test_encode_overflow_rejected(self, registry):
        x = registry.fresh([0.5, 0.5])
        y = registry.fresh([0.5, 0.5])
        condition = Condition.of([(x, 1), (y, 0)])
        with pytest.raises(ConditionError):
            encode_condition(condition, 1, registry)

    def test_mismatched_rows_conditions(self, registry):
        schema = Schema.of(("a", INTEGER))
        with pytest.raises(SchemaError):
            URelation.from_conditions(schema, [(1,)], [], registry)

    def test_from_wide_infers_arity(self, simple, registry):
        urel, _ = simple
        adopted = URelation.from_wide(urel.relation, 2, registry)
        assert adopted.cond_arity == 1

    def test_from_wide_bad_width(self, registry):
        relation = Relation(Schema.of(("a", INTEGER), ("b", INTEGER)), [])
        with pytest.raises(SchemaError):
            URelation.from_wide(relation, 1, registry)

    def test_t_certain_wrap(self, registry):
        relation = Relation(Schema.of(("a", INTEGER)), [(1,)])
        urel = URelation.t_certain(relation, registry)
        assert urel.is_t_certain
        assert urel.cond_arity == 0


class TestWorldSemantics:
    def test_in_world(self, simple):
        urel, x = simple
        world0 = urel.in_world({x: 0})
        assert sorted(world0.rows) == [("a", 1), ("c", 3)]
        world1 = urel.in_world({x: 1})
        assert sorted(world1.rows) == [("b", 2), ("c", 3)]

    def test_possible_payloads(self, simple):
        urel, _ = simple
        assert len(urel.possible_payloads()) == 3

    def test_possible_excludes_zero_probability(self, registry):
        x = registry.fresh([0.0, 1.0])
        schema = Schema.of(("a", INTEGER))
        urel = URelation.from_conditions(
            schema, [(1,), (2,)], [Condition.atom(x, 0), Condition.atom(x, 1)], registry
        )
        possible = urel.possible_payloads()
        assert possible.rows == [(2,)]

    def test_possible_deduplicates(self, registry):
        x = registry.fresh([0.5, 0.5])
        schema = Schema.of(("a", INTEGER))
        urel = URelation.from_conditions(
            schema, [(1,), (1,)], [Condition.atom(x, 0), Condition.atom(x, 1)], registry
        )
        assert len(urel.possible_payloads()) == 1


class TestMaintenance:
    def test_pad_to(self, simple):
        urel, _ = simple
        padded = urel.pad_to(3)
        assert padded.cond_arity == 3
        assert len(padded.relation.schema) == 2 + 9
        # Conditions unchanged semantically.
        for (r1, c1), (r2, c2) in zip(
            urel.rows_with_conditions(), padded.rows_with_conditions()
        ):
            assert r1 == r2 and c1 == c2

    def test_pad_narrowing_rejected(self, simple):
        urel, _ = simple
        with pytest.raises(SchemaError):
            urel.pad_to(0)

    def test_normalized_drops_zero_probability(self, registry):
        x = registry.fresh([0.0, 1.0])
        schema = Schema.of(("a", INTEGER))
        urel = URelation.from_conditions(
            schema, [(1,), (2,)], [Condition.atom(x, 0), Condition.atom(x, 1)], registry
        )
        assert len(urel.normalized()) == 1

    def test_refresh_probabilities(self, simple, registry):
        urel, x = simple
        # Tamper with the cached probability column, then refresh.
        rows = [list(r) for r in urel.relation.rows]
        rows[0][4] = 0.999
        tampered = URelation(
            Relation(urel.relation.schema, [tuple(r) for r in rows]),
            2, 1, registry,
        )
        fresh = tampered.refresh_probabilities()
        assert fresh.relation.rows[0][4] == pytest.approx(0.4)

    def test_pretty_renders_conditions(self, simple):
        urel, _ = simple
        text = urel.pretty()
        assert "condition" in text and "↦" in text


class TestVerticalDecomposition:
    def test_decompose_shapes(self, simple):
        urel, _ = simple
        parts = vertical_decompose(urel)
        assert set(parts) == {"name", "score"}
        assert parts["name"].payload_schema.names == ["_tid", "name"]
        assert len(parts["name"]) == 3

    def test_recompose_roundtrip(self, simple):
        urel, _ = simple
        parts = vertical_decompose(urel)
        back = vertical_recompose(parts, ["name", "score"])
        original = sorted(
            (row, cond) for row, cond in urel.rows_with_conditions()
        )
        recomposed = sorted(
            (row, cond) for row, cond in back.rows_with_conditions()
        )
        assert original == recomposed

    def test_recompose_reorders_columns(self, simple):
        urel, _ = simple
        parts = vertical_decompose(urel)
        back = vertical_recompose(parts, ["score", "name"])
        assert back.payload_schema.names == ["score", "name"]
        assert sorted(back.payload_relation().rows) == [(1, "a"), (2, "b"), (3, "c")]

    def test_attribute_level_uncertainty(self, registry):
        """Different attributes of one tuple can vary independently --
        the whole point of the vertical decomposition."""
        x = registry.fresh([0.5, 0.5], name="x")
        y = registry.fresh([0.5, 0.5], name="y")
        tid_schema = Schema.of(("_tid", INTEGER), ("a", TEXT))
        tid_schema2 = Schema.of(("_tid", INTEGER), ("b", INTEGER))
        part_a = URelation.from_conditions(
            tid_schema,
            [(0, "low"), (0, "high")],
            [Condition.atom(x, 0), Condition.atom(x, 1)],
            registry,
        )
        part_b = URelation.from_conditions(
            tid_schema2,
            [(0, 10), (0, 20)],
            [Condition.atom(y, 0), Condition.atom(y, 1)],
            registry,
        )
        combined = vertical_recompose({"a": part_a, "b": part_b}, ["a", "b"])
        assert combined.payload_schema.names == ["a", "b"]
        # 2 alternatives x 2 alternatives = 4 possible combined tuples.
        assert len(combined) == 4
        # In the world x=0, y=1 the tuple is ("low", 20).
        world = combined.in_world({x: 0, y: 1})
        assert world.rows == [("low", 20)]

    def test_recompose_drops_contradictions(self, registry):
        x = registry.fresh([0.5, 0.5], name="x")
        schema_a = Schema.of(("_tid", INTEGER), ("a", TEXT))
        schema_b = Schema.of(("_tid", INTEGER), ("b", INTEGER))
        # Both attributes depend on the same variable: only the agreeing
        # combinations survive.
        part_a = URelation.from_conditions(
            schema_a,
            [(0, "low"), (0, "high")],
            [Condition.atom(x, 0), Condition.atom(x, 1)],
            registry,
        )
        part_b = URelation.from_conditions(
            schema_b,
            [(0, 10), (0, 20)],
            [Condition.atom(x, 0), Condition.atom(x, 1)],
            registry,
        )
        combined = vertical_recompose({"a": part_a, "b": part_b}, ["a", "b"])
        assert sorted(combined.payload_relation().rows) == [("high", 20), ("low", 10)]
