"""Tests for registry reconstruction from inline probability columns, and
end-to-end crash recovery through the WAL."""

import pytest

from repro import MayBMS
from repro.core.conditions import Condition
from repro.core.repair_key import repair_key
from repro.core.urelation import URelation, rebuild_registry
from repro.core.variables import VariableRegistry
from repro.engine.relation import Relation
from repro.engine.schema import Schema
from repro.engine.types import FLOAT, INTEGER, TEXT
from repro.errors import ConditionError


class TestRebuildRegistry:
    def test_roundtrip_from_repair_key(self):
        schema = Schema.of(("k", INTEGER), ("w", FLOAT))
        relation = Relation(schema, [(1, 1.0), (1, 3.0), (2, 1.0), (2, 1.0)])
        original = VariableRegistry()
        urel = repair_key(relation, ["k"], original, weight_by="w")

        rebuilt = rebuild_registry([urel])
        for var in original.variables():
            assert rebuilt.distribution(var) == pytest.approx(
                original.distribution(var)
            )

    def test_unreferenced_mass_goes_to_sink(self):
        """A variable whose value 0 never appears in any stored tuple gets
        the missing probability mass on a sink value."""
        registry = VariableRegistry()
        var = registry.fresh([0.25, 0.75])
        schema = Schema.of(("a", INTEGER),)
        # Only the value-1 alternative is referenced by a tuple.
        urel = URelation.from_conditions(
            schema, [(1,)], [Condition.atom(var, 1)], registry
        )
        rebuilt = rebuild_registry([urel])
        assert rebuilt.probability(var, 1) == pytest.approx(0.75)
        # Mass 0.25 lives on some other value; total is 1.
        assert sum(rebuilt.distribution(var).values()) == pytest.approx(1.0)
        assert rebuilt.probability(var, 1 + 1) == pytest.approx(0.25)

    def test_inconsistent_probabilities_rejected(self):
        registry = VariableRegistry()
        var = registry.fresh([0.5, 0.5])
        schema = Schema.of(("a", INTEGER),)
        urel = URelation.from_conditions(
            schema, [(1,), (2,)],
            [Condition.atom(var, 0), Condition.atom(var, 0)], registry,
        )
        # Tamper with one cached probability.
        rows = [list(r) for r in urel.relation.rows]
        rows[1][3] = 0.9
        tampered = URelation(
            Relation(urel.relation.schema, [tuple(r) for r in rows]),
            1, 1, registry,
        )
        with pytest.raises(ConditionError):
            rebuild_registry([tampered])

    def test_multiple_urelations_merge(self):
        registry = VariableRegistry()
        schema = Schema.of(("k", INTEGER), ("w", FLOAT))
        u1 = repair_key(
            Relation(schema, [(1, 1.0), (1, 1.0)]), ["k"], registry, weight_by="w"
        )
        u2 = repair_key(
            Relation(schema, [(2, 1.0), (2, 3.0)]), ["k"], registry, weight_by="w"
        )
        rebuilt = rebuild_registry([u1, u2])
        assert len(list(rebuilt.variables())) == 2


class TestEndToEndRecovery:
    def test_recovered_session_answers_conf_queries(self):
        db = MayBMS()
        db.begin()
        db.transaction.create_table(
            "r", Schema.of(("k", INTEGER), ("v", TEXT), ("w", FLOAT))
        )
        db.commit()
        db.begin()
        for row in [(1, "a", 1.0), (1, "b", 3.0), (2, "c", 2.0)]:
            db.transaction.insert("r", row)
        db.commit()

        # Create the uncertain table through a WAL-logged transaction:
        # materialize the repair into a stored U-relation.
        urel = db.uncertain_query(
            "select k, v from (repair key k in r weight by w) x"
        )
        db.begin()
        db.transaction.create_table(
            "maybe",
            urel.relation.schema.unqualified(),
            kind="urelation",
            properties={
                "payload_arity": urel.payload_arity,
                "cond_arity": urel.cond_arity,
            },
        )
        for row in urel.relation:
            db.transaction.insert("maybe", row)
        db.commit()

        before = db.query("select k, v, conf() as p from maybe group by k, v")

        recovered = db.recover()
        after = recovered.query(
            "select k, v, conf() as p from maybe group by k, v"
        )
        before_map = {row[:2]: row[2] for row in before}
        after_map = {row[:2]: row[2] for row in after}
        assert set(before_map) == set(after_map)
        for key in before_map:
            assert after_map[key] == pytest.approx(before_map[key])
