"""Tests for the random variable registry (the world table)."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.core.variables import TOP_VARIABLE, VariableRegistry
from repro.errors import InvalidDistributionError, VariableError


class TestCreation:
    def test_fresh_from_sequence(self):
        registry = VariableRegistry()
        var = registry.fresh([0.2, 0.8])
        assert registry.domain(var) == (0, 1)
        assert registry.probability(var, 1) == 0.8

    def test_fresh_from_mapping(self):
        registry = VariableRegistry()
        var = registry.fresh({5: 0.5, 9: 0.5})
        assert set(registry.domain(var)) == {5, 9}

    def test_fresh_boolean(self):
        registry = VariableRegistry()
        var = registry.fresh_boolean(0.3)
        assert registry.probability(var, 1) == pytest.approx(0.3)
        assert registry.probability(var, 0) == pytest.approx(0.7)

    def test_ids_are_unique_and_positive(self):
        registry = VariableRegistry()
        ids = [registry.fresh([1.0]) for _ in range(10)]
        assert len(set(ids)) == 10
        assert all(i > 0 for i in ids)

    def test_names(self):
        registry = VariableRegistry()
        var = registry.fresh([1.0], name="x_custom")
        assert registry.name(var) == "x_custom"
        anon = registry.fresh([1.0])
        assert registry.name(anon) == f"x{anon}"

    def test_top_variable_reserved(self):
        registry = VariableRegistry()
        assert TOP_VARIABLE in registry
        assert registry.probability(TOP_VARIABLE, 0) == 1.0
        assert len(registry) == 0  # top doesn't count


class TestValidation:
    def test_negative_probability_rejected(self):
        with pytest.raises(InvalidDistributionError):
            VariableRegistry().fresh([1.2, -0.2])

    def test_sum_not_one_rejected(self):
        with pytest.raises(InvalidDistributionError):
            VariableRegistry().fresh([0.5, 0.4])

    def test_empty_rejected(self):
        with pytest.raises(InvalidDistributionError):
            VariableRegistry().fresh([])

    def test_zero_probability_alternative_allowed(self):
        registry = VariableRegistry()
        var = registry.fresh([0.0, 1.0])
        assert registry.probability(var, 0) == 0.0

    def test_boolean_probability_range(self):
        with pytest.raises(InvalidDistributionError):
            VariableRegistry().fresh_boolean(1.5)

    def test_unknown_variable(self):
        registry = VariableRegistry()
        with pytest.raises(VariableError):
            registry.domain(42)

    def test_probability_outside_domain_is_zero(self):
        registry = VariableRegistry()
        var = registry.fresh([0.5, 0.5])
        assert registry.probability(var, 7) == 0.0


class TestWholeRegistry:
    def test_world_count(self):
        registry = VariableRegistry()
        registry.fresh([0.5, 0.5])
        registry.fresh([0.2, 0.3, 0.5])
        assert registry.world_count() == 6

    def test_world_count_skips_zero_probability(self):
        registry = VariableRegistry()
        registry.fresh([0.0, 1.0])
        assert registry.world_count() == 1

    def test_copy_is_independent(self):
        registry = VariableRegistry()
        registry.fresh([1.0])
        clone = registry.copy()
        clone.fresh([1.0])
        assert len(clone) == 2
        assert len(registry) == 1

    def test_assignment_probability(self):
        registry = VariableRegistry()
        a = registry.fresh([0.5, 0.5])
        b = registry.fresh([0.25, 0.75])
        assert registry.assignment_probability({a: 0, b: 1}) == pytest.approx(0.375)


class TestSampling:
    def test_sample_value_in_domain(self):
        registry = VariableRegistry()
        var = registry.fresh({3: 0.5, 8: 0.5})
        rng = random.Random(1)
        for _ in range(50):
            assert registry.sample_value(var, rng) in (3, 8)

    def test_sample_respects_point_mass(self):
        registry = VariableRegistry()
        var = registry.fresh({4: 1.0})
        rng = random.Random(1)
        assert all(registry.sample_value(var, rng) == 4 for _ in range(20))

    def test_sample_frequency_approximates_distribution(self):
        registry = VariableRegistry()
        var = registry.fresh([0.2, 0.8])
        rng = random.Random(7)
        draws = [registry.sample_value(var, rng) for _ in range(20000)]
        assert draws.count(1) / len(draws) == pytest.approx(0.8, abs=0.02)

    def test_sample_assignment_honours_fixed(self):
        registry = VariableRegistry()
        a = registry.fresh([0.5, 0.5])
        b = registry.fresh([0.5, 0.5])
        rng = random.Random(3)
        assignment = registry.sample_assignment(rng, fixed={a: 1})
        assert assignment[a] == 1
        assert b in assignment

    @given(st.integers(2, 6))
    def test_distribution_returns_copy(self, size):
        registry = VariableRegistry()
        var = registry.fresh([1.0 / size] * size)
        dist = registry.distribution(var)
        dist[0] = 99.0
        assert registry.probability(var, 0) == pytest.approx(1.0 / size)
