"""Tests for the parsimonious translation of positive relational algebra.

The correctness criterion from [1]: for every positive RA query Q and
every world w,  Q(instance of D in w) = instance of (translated Q)(D) in
w.  The tests check exactly that, world by world, via the enumeration
oracle -- plus the structural properties (condition columns ride along,
no duplicate elimination, consistency filtering on joins).
"""

import pytest

from repro.core.conditions import Condition, TRUE_CONDITION
from repro.core.repair_key import repair_key
from repro.core.translate import (
    consistency_predicate,
    u_join,
    u_project,
    u_rename,
    u_select,
    u_union,
)
from repro.core.urelation import URelation
from repro.core.variables import VariableRegistry
from repro.core.worlds import enumerate_worlds
from repro.engine.expressions import (
    Arithmetic,
    BoolOp,
    ColumnRef,
    Comparison,
    Literal,
    PositionRef as _pos,
)
from repro.engine.relation import Relation
from repro.engine.schema import Schema
from repro.engine.types import FLOAT, INTEGER, TEXT
from repro.errors import PlanError, SchemaError


@pytest.fixture
def registry():
    return VariableRegistry()


@pytest.fixture
def r_and_s(registry):
    """Two small uncertain relations sharing variable x (correlated!)."""
    x = registry.fresh([0.5, 0.5], name="x")
    y = registry.fresh([0.3, 0.7], name="y")
    r = URelation.from_conditions(
        Schema.of(("a", INTEGER), ("b", TEXT)),
        [(1, "p"), (2, "q"), (2, "r")],
        [Condition.atom(x, 0), Condition.atom(x, 1), Condition.atom(y, 1)],
        registry,
    )
    s = URelation.from_conditions(
        Schema.of(("a", INTEGER), ("c", FLOAT)),
        [(1, 1.5), (2, 2.5)],
        [Condition.atom(x, 0), Condition.atom(x, 0)],
        registry,
    )
    return r, s, x, y


def worlds_of(registry):
    return enumerate_worlds(registry)


def assert_commutes(result: URelation, oracle, registry):
    """For every world w: result instantiated in w == oracle(w)."""
    for world, _ in worlds_of(registry):
        got = sorted(result.in_world(world).rows)
        expected = sorted(oracle(world))
        assert got == expected, f"world {world}: {got} != {expected}"


class TestSelect:
    def test_commutes_with_worlds(self, r_and_s, registry):
        r, s, x, y = r_and_s
        selected = u_select(r, Comparison("=", ColumnRef("a"), Literal(2)))

        def oracle(world):
            return [row for row in r.in_world(world) if row[0] == 2]

        assert_commutes(selected, oracle, registry)

    def test_keeps_condition_columns(self, r_and_s):
        r, *_ = r_and_s
        selected = u_select(r, Comparison(">", ColumnRef("a"), Literal(0)))
        assert selected.cond_arity == r.cond_arity
        assert len(selected) == len(r)


class TestProject:
    def test_commutes_with_worlds(self, r_and_s, registry):
        r, *_ = r_and_s
        projected = u_project(r, [(ColumnRef("b"), "b")])

        def oracle(world):
            return [(row[1],) for row in r.in_world(world)]

        assert_commutes(projected, oracle, registry)

    def test_no_duplicate_elimination(self, registry):
        x = registry.fresh([0.5, 0.5])
        r = URelation.from_conditions(
            Schema.of(("a", INTEGER), ("b", INTEGER)),
            [(1, 10), (1, 20)],
            [Condition.atom(x, 0), Condition.atom(x, 1)],
            registry,
        )
        projected = u_project(r, [(ColumnRef("a"), "a")])
        assert len(projected) == 2  # both rows survive with their conditions

    def test_computed_expression(self, r_and_s, registry):
        r, *_ = r_and_s
        projected = u_project(
            r, [(Arithmetic("*", ColumnRef("a"), Literal(10)), "a10")]
        )

        def oracle(world):
            return [(row[0] * 10,) for row in r.in_world(world)]

        assert_commutes(projected, oracle, registry)


class TestJoin:
    def test_commutes_with_worlds(self, r_and_s, registry):
        r, s, *_ = r_and_s
        joined = u_join(
            u_rename(r, "r"),
            u_rename(s, "s"),
            Comparison("=", ColumnRef("a", "r"), ColumnRef("a", "s")),
        )

        def oracle(world):
            out = []
            for left in r.in_world(world):
                for right in s.in_world(world):
                    if left[0] == right[0]:
                        out.append(left + right)
            return out

        assert_commutes(joined, oracle, registry)

    def test_correlation_through_shared_variables(self, r_and_s, registry):
        """R's (2,'q') needs x=1 but S's rows need x=0: joining them on
        a=2 must yield an empty or filtered result in every world --
        the consistency filter at work."""
        r, s, x, y = r_and_s
        joined = u_join(
            u_rename(r, "r"),
            u_rename(s, "s"),
            Comparison("=", ColumnRef("a", "r"), ColumnRef("a", "s")),
        )
        # Contradictory combination (x=1 ∧ x=0) must not be present.
        for condition in joined.conditions():
            assert condition is not None

    def test_cross_join_arity(self, r_and_s):
        r, s, *_ = r_and_s
        joined = u_join(u_rename(r, "r"), u_rename(s, "s"))
        assert joined.payload_arity == 4
        assert joined.cond_arity == r.cond_arity + s.cond_arity

    def test_registry_mismatch_rejected(self, r_and_s):
        r, *_ = r_and_s
        other = VariableRegistry()
        s2 = URelation.t_certain(
            Relation(Schema.of(("z", INTEGER)), [(1,)]), other
        )
        with pytest.raises(PlanError):
            u_join(r, s2)

    def test_self_join_with_aliases(self, registry):
        x = registry.fresh([0.5, 0.5])
        r = URelation.from_conditions(
            Schema.of(("a", INTEGER),),
            [(1,), (2,)],
            [Condition.atom(x, 0), Condition.atom(x, 1)],
            registry,
        )
        joined = u_join(r, r, None, left_alias="r1", right_alias="r2")
        # Payload (1,2) and (2,1) combine x=0 with x=1: contradictory,
        # dropped by the consistency filter at probability level -- they
        # may appear as rows only if the filter kept them, so check worlds.
        for world, _ in enumerate_worlds(registry):
            instance = sorted(joined.in_world(world).rows)
            value = 1 if world[x] == 0 else 2
            assert instance == [(value, value)]

    def test_consistency_predicate_none_when_no_conditions(self):
        assert consistency_predicate(2, 0, 3, 0) is None
        assert consistency_predicate(2, 1, 3, 0) is None

    def test_consistency_predicate_pair_count(self):
        predicate = consistency_predicate(1, 2, 1, 3)
        # 2x3 pairs of triples -> 6 (V_i ≠ V'_j ∨ D_i = D'_j) conjuncts,
        # carried as a specialized kernel expression.
        from repro.engine.expressions import ConsistencyPredicate

        assert isinstance(predicate, ConsistencyPredicate)
        assert len(predicate.pairs) == 6

    def test_consistency_predicate_matches_generic_evaluation(self):
        """The specialized predicate agrees with the generic AND-of-OR
        formulation it replaces, row by row."""
        from repro.engine.expressions import conjunction
        from repro.engine.schema import Schema as _Schema

        predicate = consistency_predicate(1, 1, 1, 1)
        generic = conjunction(
            [
                BoolOp(
                    "OR",
                    [
                        Comparison(
                            "<>",
                            _pos(1, INTEGER),
                            _pos(5, INTEGER),
                        ),
                        Comparison("=", _pos(2, INTEGER), _pos(6, INTEGER)),
                    ],
                )
            ]
        )
        schema = _Schema([])
        rows = [
            (0, 7, 1, 0.5, 0, 7, 1, 0.5),  # same var, same value: keep
            (0, 7, 1, 0.5, 0, 7, 2, 0.5),  # same var, different value: drop
            (0, 7, 1, 0.5, 0, 8, 2, 0.5),  # different vars: keep
        ]
        fast = predicate.compile(schema)
        slow = generic.compile(schema)
        for row in rows:
            assert fast(row) == slow(row)


class TestUnion:
    def test_commutes_with_worlds(self, r_and_s, registry):
        r, s, *_ = r_and_s
        r_part = u_project(r, [(ColumnRef("a"), "a")])
        s_part = u_project(s, [(ColumnRef("a"), "a")])
        unioned = u_union(r_part, s_part)

        def oracle(world):
            return (
                [(row[0],) for row in r.in_world(world)]
                + [(row[0],) for row in s.in_world(world)]
            )

        assert_commutes(unioned, oracle, registry)

    def test_pads_condition_arity(self, registry):
        x = registry.fresh([0.5, 0.5])
        narrow = URelation.t_certain(
            Relation(Schema.of(("a", INTEGER)), [(9,)]), registry
        )
        wide = URelation.from_conditions(
            Schema.of(("a", INTEGER)),
            [(1,)],
            [Condition.of([(x, 0)])],
            registry,
        )
        unioned = u_union(wide, narrow)
        assert unioned.cond_arity == 1
        assert len(unioned) == 2

    def test_incompatible_payloads_rejected(self, r_and_s, registry):
        r, s, *_ = r_and_s
        with pytest.raises(SchemaError):
            u_union(r, s)


class TestComposition:
    def test_three_way_pipeline_commutes(self, registry):
        """sigma(pi(R) join S) translated end-to-end equals per-world
        evaluation -- the full parsimonious-translation correctness on a
        repair-key-generated input."""
        base = Relation(
            Schema.of(("k", INTEGER), ("v", INTEGER), ("w", FLOAT)),
            [(1, 10, 1.0), (1, 20, 3.0), (2, 30, 1.0), (2, 40, 1.0)],
        )
        r = repair_key(base, ["k"], registry, weight_by="w")
        lookup = URelation.t_certain(
            Relation(Schema.of(("v", INTEGER), ("tag", TEXT)),
                     [(10, "ten"), (30, "thirty"), (40, "forty")]),
            registry,
        )
        pipeline = u_select(
            u_join(
                u_rename(u_project(r, [(ColumnRef("v"), "v")]), "l"),
                u_rename(lookup, "t"),
                Comparison("=", ColumnRef("v", "l"), ColumnRef("v", "t")),
            ),
            Comparison("<", ColumnRef("v", "l"), Literal(40)),
        )

        def oracle(world):
            out = []
            for row in r.in_world(world):
                for lrow in lookup.in_world(world):
                    if row[1] == lrow[0] and row[1] < 40:
                        out.append((row[1], lrow[0], lrow[1]))
            return out

        assert_commutes(pipeline, oracle, registry)
