"""Tests for the shared lineage IR (repro.core.lineage)."""

import random

import pytest

from repro.core.conditions import Condition, TRUE_CONDITION
from repro.core.confidence.dnf import DNF
from repro.core.confidence.naive import confidence_by_enumeration
from repro.core.lineage import (
    ClauseArena,
    Lineage,
    combine_independent,
    group_lineages,
)
from repro.core.urelation import URelation
from repro.core.variables import VariableRegistry
from repro.engine.schema import Column, Schema
from repro.engine.types import INTEGER


def atom(var, value=1):
    return Condition.atom(var, value)


def clause(*atoms):
    condition = Condition.of(list(atoms))
    assert condition is not None
    return condition


@pytest.fixture
def registry():
    return VariableRegistry()


class TestArena:
    def test_interning_shares_equal_clauses(self, registry):
        x = registry.fresh_boolean(0.5)
        arena = ClauseArena(registry)
        a = arena.intern(Condition.of([(x, 1)]))
        b = arena.intern(Condition.of([(x, 1)]))
        assert a is b

    def test_probability_cached_per_clause(self, registry):
        x = registry.fresh_boolean(0.25)
        arena = ClauseArena(registry)
        c = arena.intern(atom(x))
        assert arena.probability(c) == pytest.approx(0.25)
        # Second read comes from the cache (same value, no recompute).
        assert arena.probability(c) == pytest.approx(0.25)

    def test_variables_cached(self, registry):
        x = registry.fresh_boolean(0.5)
        y = registry.fresh_boolean(0.5)
        arena = ClauseArena(registry)
        c = arena.intern(clause((x, 1), (y, 0)))
        assert arena.variables(c) == frozenset({x, y})


class TestClassification:
    def test_empty_lineage_is_false(self, registry):
        lin = Lineage.from_clauses([], registry)
        assert lin.is_false
        assert lin.closed_form_probability() == 0.0

    def test_true_clause_makes_lineage_true(self, registry):
        x = registry.fresh_boolean(0.5)
        lin = Lineage.from_clauses([atom(x), TRUE_CONDITION], registry)
        assert lin.is_true
        assert lin.simplified().closed_form_probability() == 1.0

    def test_contradictory_conditions_dropped_at_construction(self, registry):
        x = registry.fresh_boolean(0.5)
        lin = Lineage.from_clauses([None, atom(x), None], registry)
        assert len(lin) == 1

    def test_variables_union(self, registry):
        x = registry.fresh_boolean(0.5)
        y = registry.fresh_boolean(0.5)
        z = registry.fresh_boolean(0.5)
        lin = Lineage.from_clauses([clause((x, 1), (y, 1)), atom(z)], registry)
        assert lin.variables() == frozenset({x, y, z})

    def test_coercion_from_dnf(self, registry):
        x = registry.fresh_boolean(0.5)
        dnf = DNF([atom(x)])
        lin = Lineage.of(dnf, registry)
        assert isinstance(lin, Lineage)
        assert Lineage.of(lin, registry) is lin


class TestSimplification:
    def test_duplicates_removed(self, registry):
        x = registry.fresh_boolean(0.5)
        lin = Lineage.from_clauses([atom(x), atom(x)], registry).simplified()
        assert len(lin) == 1

    def test_zero_probability_clause_dropped(self, registry):
        x = registry.fresh({0: 1.0, 1: 0.0})
        y = registry.fresh_boolean(0.5)
        lin = Lineage.from_clauses([atom(x, 1), atom(y)], registry).simplified()
        assert len(lin) == 1
        assert lin.clauses[0] == atom(y)

    def test_subsumed_clause_absorbed(self, registry):
        x = registry.fresh_boolean(0.5)
        y = registry.fresh_boolean(0.5)
        lin = Lineage.from_clauses(
            [clause((x, 1), (y, 1)), atom(x)], registry
        ).simplified()
        assert list(lin.clauses) == [atom(x)]

    def test_simplified_idempotent(self, registry):
        x = registry.fresh_boolean(0.5)
        lin = Lineage.from_clauses([atom(x)], registry).simplified()
        assert lin.simplified() is lin


class TestComponents:
    def test_disjoint_clauses_split(self, registry):
        x = registry.fresh_boolean(0.5)
        y = registry.fresh_boolean(0.5)
        lin = Lineage.from_clauses([atom(x), atom(y)], registry)
        components = lin.components()
        assert len(components) == 2

    def test_shared_variable_joins(self, registry):
        x = registry.fresh_boolean(0.5)
        y = registry.fresh_boolean(0.5)
        z = registry.fresh_boolean(0.5)
        lin = Lineage.from_clauses(
            [clause((x, 1), (y, 1)), clause((y, 1), (z, 1))], registry
        )
        assert len(lin.components()) == 1

    def test_certain_clauses_each_own_component(self, registry):
        lin = Lineage((TRUE_CONDITION, TRUE_CONDITION), ClauseArena(registry))
        assert len(lin.components()) == 2

    def test_components_share_arena(self, registry):
        x = registry.fresh_boolean(0.5)
        y = registry.fresh_boolean(0.5)
        lin = Lineage.from_clauses([atom(x), atom(y)], registry)
        for component in lin.components():
            assert component.arena is lin.arena


class TestClosedForms:
    def test_single_clause_product(self, registry):
        x = registry.fresh_boolean(0.5)
        y = registry.fresh_boolean(0.4)
        lin = Lineage.from_clauses([clause((x, 1), (y, 1))], registry)
        assert lin.closed_form_probability() == pytest.approx(0.2)

    def test_independent_clauses(self, registry):
        probabilities = [0.3, 0.5, 0.2]
        variables = [registry.fresh_boolean(p) for p in probabilities]
        lin = Lineage.from_clauses([atom(v) for v in variables], registry)
        expected = 1.0 - (0.7 * 0.5 * 0.8)
        assert lin.closed_form_probability() == pytest.approx(expected)

    def test_shared_variables_no_closed_form(self, registry):
        x = registry.fresh_boolean(0.5)
        y = registry.fresh_boolean(0.5)
        lin = Lineage.from_clauses(
            [clause((x, 1), (y, 1)), atom(x)], registry
        )
        assert lin.closed_form_probability() is None

    def test_combine_independent(self):
        assert combine_independent([0.5, 0.5]) == pytest.approx(0.75)
        assert combine_independent([]) == 0.0


class TestStats:
    def test_counts_and_width(self, registry):
        x = registry.fresh_boolean(0.5)
        y = registry.fresh_boolean(0.5)
        lin = Lineage.from_clauses([clause((x, 1), (y, 1)), atom(x)], registry)
        stats = lin.stats()
        assert stats.clause_count == 2
        assert stats.variable_count == 2
        assert stats.atom_count == 3
        assert stats.max_width == 2
        assert not stats.independent

    def test_independent_stat(self, registry):
        x = registry.fresh_boolean(0.5)
        y = registry.fresh_boolean(0.5)
        lin = Lineage.from_clauses([atom(x), atom(y)], registry)
        assert lin.stats().independent
        assert lin.stats().hierarchical is True

    def test_hierarchical_two_level(self, registry):
        # {r ∧ s1, r ∧ s2}: cl(r) = {0,1}, cl(si) = {i} -- laminar.
        r = registry.fresh_boolean(0.5)
        s = [registry.fresh_boolean(0.5) for _ in range(2)]
        lin = Lineage.from_clauses(
            [clause((r, 1), (s[0], 1)), clause((r, 1), (s[1], 1))], registry
        )
        assert lin.stats().hierarchical is True

    def test_non_hierarchical_crossing(self, registry):
        # {x∧y, y∧z, z∧w}: cl(y)={0,1}, cl(z)={1,2} cross.
        x, y, z, w = (registry.fresh_boolean(0.5) for _ in range(4))
        lin = Lineage.from_clauses(
            [
                clause((x, 1), (y, 1)),
                clause((y, 1), (z, 1)),
                clause((z, 1), (w, 1)),
            ],
            registry,
        )
        assert lin.stats().hierarchical is False


class TestRestrict:
    def test_restrict_consumes_and_drops(self, registry):
        x = registry.fresh_boolean(0.5)
        y = registry.fresh_boolean(0.5)
        lin = Lineage.from_clauses(
            [clause((x, 1), (y, 1)), clause((x, 0), (y, 1))], registry
        )
        restricted = lin.restrict(x, 1)
        assert list(restricted.clauses) == [atom(y)]

    def test_root_variables(self, registry):
        r = registry.fresh_boolean(0.5)
        s = [registry.fresh_boolean(0.5) for _ in range(2)]
        lin = Lineage.from_clauses(
            [clause((r, 1), (s[0], 1)), clause((r, 1), (s[1], 1))], registry
        )
        assert lin.root_variables() == frozenset({r})


class TestGroupLineages:
    def _urelation(self, registry):
        x = registry.fresh_boolean(0.5)
        y = registry.fresh_boolean(0.5)
        schema = Schema([Column("a", INTEGER)])
        rows = [(1,), (1,), (2,)]
        conditions = [atom(x), atom(y), atom(x)]
        return URelation.from_conditions(schema, rows, conditions, registry)

    def test_groups_share_one_arena(self, registry):
        urel = self._urelation(registry)
        lineages = group_lineages(urel, [[0, 1], [2]])
        assert lineages[0].arena is lineages[1].arena
        assert len(lineages[0]) == 2
        assert len(lineages[1]) == 1

    def test_interning_across_groups(self, registry):
        urel = self._urelation(registry)
        lineages = group_lineages(urel, [[0, 1], [2]])
        # Row 0 and row 2 carry the same condition: one interned clause.
        assert lineages[0].clauses[0] is lineages[1].clauses[0]

    def test_agrees_with_enumeration(self, registry):
        urel = self._urelation(registry)
        lineages = group_lineages(urel, [[0, 1], [2]])
        dnf = DNF(lineages[0].clauses)
        assert confidence_by_enumeration(
            lineages[0], registry
        ) == pytest.approx(confidence_by_enumeration(dnf, registry))


class TestRandomizedAgainstDnf:
    def test_components_match_dnf_partition(self):
        from repro.datagen.random_dnf import random_dnf

        rng = random.Random(11)
        for _ in range(20):
            dnf, registry = random_dnf(8, 6, 3, rng, domain_size=3)
            lin = dnf.to_lineage(registry)
            dnf_sizes = sorted(len(c) for c in dnf.independent_components())
            lin_sizes = sorted(len(c) for c in lin.components())
            assert dnf_sizes == lin_sizes
