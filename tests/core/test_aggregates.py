"""Tests for conf / aconf / tconf / possible / esum / ecount against the
possible-worlds oracles."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import aggregates as agg
from repro.core.conditions import Condition, TRUE_CONDITION
from repro.core.repair_key import repair_key
from repro.core.urelation import URelation
from repro.core.variables import VariableRegistry
from repro.core.worlds import (
    expected_aggregate_by_enumeration,
    tuple_confidence_by_enumeration,
)
from repro.engine.relation import Relation
from repro.engine.schema import Schema
from repro.engine.types import FLOAT, INTEGER, NULL, TEXT


@pytest.fixture
def registry():
    return VariableRegistry()


@pytest.fixture
def urel(registry):
    """Duplicates of ("a",1) on two independent variables, plus ("b",2)."""
    x = registry.fresh([0.3, 0.7], name="x")
    y = registry.fresh([0.6, 0.4], name="y")
    schema = Schema.of(("k", TEXT), ("v", INTEGER))
    return URelation.from_conditions(
        schema,
        [("a", 1), ("a", 1), ("b", 2)],
        [Condition.atom(x, 1), Condition.atom(y, 1), Condition.atom(x, 0)],
        registry,
    )


class TestConf:
    def test_group_confidence_matches_oracle(self, urel):
        result = agg.conf(urel, ["k", "v"], result_name="p")
        by_key = {(row[0], row[1]): row[2] for row in result}
        assert by_key[("a", 1)] == pytest.approx(
            tuple_confidence_by_enumeration(urel, ("a", 1))
        )
        assert by_key[("b", 2)] == pytest.approx(0.3)

    def test_duplicates_or_combine(self, urel):
        result = agg.conf(urel, ["k", "v"], result_name="p")
        by_key = {(row[0], row[1]): row[2] for row in result}
        # 1 - P(x=0)P(y=0) = 1 - 0.3*0.6
        assert by_key[("a", 1)] == pytest.approx(0.82)

    def test_scalar_conf_is_nonempty_probability(self, urel):
        result = agg.conf(urel, [], result_name="p")
        # P(at least one tuple): x=0 gives b, x=1 gives a -> always nonempty.
        assert result.single_value() == pytest.approx(1.0)

    def test_scalar_conf_empty_relation(self, registry):
        empty = URelation.t_certain(
            Relation(Schema.of(("a", INTEGER)), []), registry
        )
        assert agg.conf(empty, [], result_name="p").single_value() == 0.0

    def test_conf_on_certain_data_is_one(self, registry):
        certain = URelation.t_certain(
            Relation(Schema.of(("a", INTEGER)), [(1,), (2,)]), registry
        )
        result = agg.conf(certain, ["a"], result_name="p")
        assert all(row[1] == pytest.approx(1.0) for row in result)

    def test_group_by_subset_of_payload(self, urel):
        result = agg.conf(urel, ["k"], result_name="p")
        by_key = {row[0]: row[1] for row in result}
        assert by_key["a"] == pytest.approx(0.82)
        assert by_key["b"] == pytest.approx(0.3)


class TestAconf:
    def test_approximates_conf(self, urel):
        rng = random.Random(11)
        result = agg.aconf(urel, 0.05, 0.05, ["k"], result_name="p", rng=rng)
        by_key = {row[0]: row[1] for row in result}
        assert by_key["a"] == pytest.approx(0.82, rel=0.1)
        assert by_key["b"] == pytest.approx(0.3, rel=0.1)

    def test_trivial_cases_exact(self, registry):
        certain = URelation.t_certain(
            Relation(Schema.of(("a", INTEGER)), [(1,)]), registry
        )
        result = agg.aconf(certain, 0.1, 0.1, ["a"], result_name="p")
        assert result.rows[0][1] == 1.0


class TestTconf:
    def test_per_row_marginals(self, urel, registry):
        result = agg.tconf(urel, result_name="p")
        assert len(result) == 3  # one output row per input row
        probs = [row[2] for row in result]
        assert probs == pytest.approx([0.7, 0.4, 0.3])

    def test_isolation_from_duplicates(self, urel):
        """tconf does NOT or-combine duplicates (unlike conf)."""
        result = agg.tconf(urel, result_name="p")
        a_rows = [row for row in result if row[0] == "a"]
        assert len(a_rows) == 2
        assert sorted(row[2] for row in a_rows) == pytest.approx([0.4, 0.7])


class TestPossible:
    def test_filters_and_deduplicates(self, registry):
        x = registry.fresh([0.0, 1.0])
        schema = Schema.of(("a", INTEGER))
        urel = URelation.from_conditions(
            schema,
            [(1,), (1,), (2,)],
            [Condition.atom(x, 1), Condition.atom(x, 1), Condition.atom(x, 0)],
            registry,
        )
        result = agg.possible(urel)
        assert result.rows == [(1,)]  # 2 impossible, 1 deduplicated


class TestExpectations:
    def test_esum_matches_oracle(self, urel):
        result = agg.esum(urel, "v", [], result_name="e")
        oracle = expected_aggregate_by_enumeration(urel, 1)
        assert result.single_value() == pytest.approx(oracle)

    def test_ecount_matches_oracle(self, urel):
        result = agg.ecount(urel, [], result_name="e")
        oracle = expected_aggregate_by_enumeration(urel)
        assert result.single_value() == pytest.approx(oracle)

    def test_esum_grouped(self, urel):
        result = agg.esum(urel, "v", ["k"], result_name="e")
        by_key = {row[0]: row[1] for row in result}
        assert by_key["a"] == pytest.approx(1 * 0.7 + 1 * 0.4)
        assert by_key["b"] == pytest.approx(2 * 0.3)

    def test_esum_ignores_null_values(self, registry):
        x = registry.fresh([0.5, 0.5])
        schema = Schema.of(("v", INTEGER))
        urel = URelation.from_conditions(
            schema, [(NULL,), (4,)],
            [Condition.atom(x, 0), Condition.atom(x, 1)], registry,
        )
        assert agg.esum(urel, "v", [], result_name="e").single_value() == pytest.approx(2.0)

    def test_esum_on_certain_data_is_plain_sum(self, registry):
        certain = URelation.t_certain(
            Relation(Schema.of(("v", INTEGER)), [(1,), (2,), (3,)]), registry
        )
        assert agg.esum(certain, "v", [], result_name="e").single_value() == pytest.approx(6.0)

    def test_empty_group_result(self, registry):
        empty = URelation.t_certain(Relation(Schema.of(("v", INTEGER)), []), registry)
        assert agg.esum(empty, "v", [], result_name="e").single_value() == 0.0
        assert agg.ecount(empty, [], result_name="e").single_value() == 0.0

    @given(
        st.lists(
            st.tuples(st.integers(0, 2), st.integers(-5, 5), st.floats(0.05, 0.95)),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_esum_linearity_property(self, rows):
        """esum == sum of value * marginal, and equals the worlds oracle."""
        registry = VariableRegistry()
        schema = Schema.of(("g", INTEGER), ("v", INTEGER))
        payload, conditions = [], []
        for g, v, p in rows:
            var = registry.fresh_boolean(p)
            payload.append((g, v))
            conditions.append(Condition.atom(var, 1))
        urel = URelation.from_conditions(schema, payload, conditions, registry)
        result = agg.esum(urel, "v", [], result_name="e").single_value()
        oracle = expected_aggregate_by_enumeration(urel, 1)
        assert result == pytest.approx(oracle)


class TestRandomWalkIntegration:
    def test_conf_after_repair_key_recovers_weights(self, registry):
        schema = Schema.of(("k", TEXT), ("w", FLOAT))
        relation = Relation(schema, [("a", 1.0), ("a", 3.0), ("b", 2.0)])
        urel = repair_key(relation, ["k"], registry, weight_by="w")
        result = agg.conf(urel, ["k", "w"], result_name="p")
        by_row = {(row[0], row[1]): row[2] for row in result}
        assert by_row[("a", 1.0)] == pytest.approx(0.25)
        assert by_row[("a", 3.0)] == pytest.approx(0.75)
        assert by_row[("b", 2.0)] == pytest.approx(1.0)
