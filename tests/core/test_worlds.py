"""Tests for possible-worlds enumeration (the testing oracle itself)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.conditions import Condition, TRUE_CONDITION
from repro.core.urelation import URelation
from repro.core.variables import VariableRegistry
from repro.core.worlds import (
    enumerate_worlds,
    expected_aggregate_by_enumeration,
    relation_distribution,
    tuple_confidence_by_enumeration,
    world_probability,
)
from repro.engine.schema import Schema
from repro.engine.types import INTEGER, TEXT


class TestEnumeration:
    def test_world_count_and_mass(self):
        registry = VariableRegistry()
        registry.fresh([0.5, 0.5])
        registry.fresh([0.2, 0.3, 0.5])
        worlds = list(enumerate_worlds(registry))
        assert len(worlds) == 6
        assert sum(p for _, p in worlds) == pytest.approx(1.0)

    def test_zero_probability_worlds_skipped(self):
        registry = VariableRegistry()
        registry.fresh([0.0, 1.0])
        worlds = list(enumerate_worlds(registry))
        assert len(worlds) == 1
        assert worlds[0][0] == {1: 1}

    def test_zero_probability_worlds_included_on_request(self):
        registry = VariableRegistry()
        registry.fresh([0.0, 1.0])
        worlds = list(enumerate_worlds(registry, include_zero_probability=True))
        assert len(worlds) == 2

    def test_restricted_variables(self):
        registry = VariableRegistry()
        a = registry.fresh([0.5, 0.5])
        registry.fresh([0.5, 0.5])
        worlds = list(enumerate_worlds(registry, [a]))
        assert len(worlds) == 2
        assert all(set(w) == {a} for w, _ in worlds)

    def test_world_probability(self):
        registry = VariableRegistry()
        a = registry.fresh([0.25, 0.75])
        b = registry.fresh([0.5, 0.5])
        assert world_probability(registry, {a: 1, b: 0}) == pytest.approx(0.375)

    @given(st.lists(st.integers(2, 3), min_size=1, max_size=4))
    @settings(max_examples=25)
    def test_probabilities_always_sum_to_one(self, sizes):
        registry = VariableRegistry()
        for size in sizes:
            registry.fresh([1.0 / size] * size)
        total = sum(p for _, p in enumerate_worlds(registry))
        assert total == pytest.approx(1.0)


class TestOracles:
    @pytest.fixture
    def urel(self):
        registry = VariableRegistry()
        x = registry.fresh([0.3, 0.7], name="x")
        y = registry.fresh([0.6, 0.4], name="y")
        schema = Schema.of(("k", TEXT), ("v", INTEGER))
        return URelation.from_conditions(
            schema,
            [("a", 1), ("a", 1), ("b", 2)],
            [Condition.atom(x, 1), Condition.atom(y, 1), Condition.atom(x, 0)],
            registry,
        )

    def test_tuple_confidence(self, urel):
        # ("a",1) present iff x=1 or y=1: 1 - 0.3*0.6 = 0.82
        assert tuple_confidence_by_enumeration(urel, ("a", 1)) == pytest.approx(0.82)
        assert tuple_confidence_by_enumeration(urel, ("b", 2)) == pytest.approx(0.3)
        assert tuple_confidence_by_enumeration(urel, ("zzz", 0)) == 0.0

    def test_relation_distribution_masses(self, urel):
        buckets = relation_distribution(urel)
        assert sum(p for _, p in buckets) == pytest.approx(1.0)
        # Instances: x=1,y=1 -> {a}, x=1,y=0 -> {a}, x=0,y=1 -> {a, b},
        # x=0,y=0 -> {b}: three distinct instances.
        assert len(buckets) == 3

    def test_expected_count(self, urel):
        # E[count] with duplicates: P(x=1) + P(y=1) + P(x=0) = 0.7+0.4+0.3
        assert expected_aggregate_by_enumeration(urel) == pytest.approx(1.4)

    def test_expected_sum(self, urel):
        # E[sum of v]: 1*0.7 + 1*0.4 + 2*0.3
        assert expected_aggregate_by_enumeration(urel, 1) == pytest.approx(1.7)
