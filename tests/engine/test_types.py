"""Tests for the SQL type system and three-valued logic."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.engine.types import (
    BOOLEAN,
    FLOAT,
    INTEGER,
    NULL,
    TEXT,
    and3,
    common_type,
    compare_values,
    not3,
    or3,
    sort_key,
    type_from_name,
    type_of_literal,
    values_equal,
)
from repro.errors import TypeMismatchError


class TestTypeAcceptance:
    def test_integer_accepts_int(self):
        assert INTEGER.accepts(42)

    def test_integer_rejects_bool(self):
        assert not INTEGER.accepts(True)

    def test_integer_rejects_float(self):
        assert not INTEGER.accepts(1.5)

    def test_float_accepts_float_and_int(self):
        assert FLOAT.accepts(1.5)
        assert FLOAT.accepts(3)

    def test_text_accepts_str_only(self):
        assert TEXT.accepts("hello")
        assert not TEXT.accepts(42)

    def test_boolean_accepts_bool_only(self):
        assert BOOLEAN.accepts(True)
        assert not BOOLEAN.accepts(1)

    def test_null_inhabits_every_type(self):
        for sql_type in (INTEGER, FLOAT, TEXT, BOOLEAN):
            assert sql_type.accepts(NULL)

    def test_coerce_widens_int_to_float(self):
        assert FLOAT.coerce(3) == 3.0
        assert isinstance(FLOAT.coerce(3), float)

    def test_coerce_null_stays_null(self):
        assert INTEGER.coerce(NULL) is NULL

    def test_coerce_rejects_wrong_type(self):
        with pytest.raises(TypeMismatchError):
            INTEGER.coerce("nope")

    def test_coerce_rejects_bool_as_integer(self):
        with pytest.raises(TypeMismatchError):
            INTEGER.coerce(True)


class TestTypeNames:
    def test_aliases_resolve(self):
        assert type_from_name("int") == INTEGER
        assert type_from_name("VARCHAR") == TEXT
        assert type_from_name("double precision") == FLOAT
        assert type_from_name("bool") == BOOLEAN

    def test_unknown_name_raises(self):
        with pytest.raises(TypeMismatchError):
            type_from_name("geometry")

    def test_literal_types(self):
        assert type_of_literal(1) == INTEGER
        assert type_of_literal(1.0) == FLOAT
        assert type_of_literal("x") == TEXT
        assert type_of_literal(False) == BOOLEAN

    def test_common_type_widening(self):
        assert common_type(INTEGER, FLOAT) == FLOAT
        assert common_type(TEXT, TEXT) == TEXT
        with pytest.raises(TypeMismatchError):
            common_type(TEXT, INTEGER)


class TestThreeValuedLogic:
    def test_and_truth_table(self):
        assert and3(True, True) is True
        assert and3(True, False) is False
        assert and3(False, NULL) is False
        assert and3(True, NULL) is NULL
        assert and3(NULL, NULL) is NULL

    def test_or_truth_table(self):
        assert or3(False, False) is False
        assert or3(False, True) is True
        assert or3(True, NULL) is True
        assert or3(False, NULL) is NULL
        assert or3(NULL, NULL) is NULL

    def test_not(self):
        assert not3(True) is False
        assert not3(False) is True
        assert not3(NULL) is NULL

    @given(st.sampled_from([True, False, None]), st.sampled_from([True, False, None]))
    def test_de_morgan(self, a, b):
        assert not3(and3(a, b)) == or3(not3(a), not3(b))

    @given(st.sampled_from([True, False, None]), st.sampled_from([True, False, None]))
    def test_commutativity(self, a, b):
        assert and3(a, b) == and3(b, a)
        assert or3(a, b) == or3(b, a)


class TestComparison:
    def test_numeric_cross_type(self):
        assert compare_values(1, 1.0) == 0
        assert compare_values(1, 2.5) == -1
        assert compare_values(3.5, 2) == 1

    def test_text(self):
        assert compare_values("a", "b") == -1
        assert compare_values("b", "b") == 0

    def test_bool_ordering(self):
        assert compare_values(False, True) == -1

    def test_null_propagates(self):
        assert compare_values(NULL, 1) is NULL
        assert compare_values("x", NULL) is NULL

    def test_incompatible_raises(self):
        with pytest.raises(TypeMismatchError):
            compare_values(1, "x")
        with pytest.raises(TypeMismatchError):
            compare_values(True, 1)

    def test_values_equal(self):
        assert values_equal(2, 2.0) is True
        assert values_equal(2, 3) is False
        assert values_equal(NULL, NULL) is NULL


class TestSortKey:
    def test_nulls_sort_last(self):
        values = [3, NULL, 1, NULL, 2]
        ordered = sorted(values, key=sort_key)
        assert ordered[:3] == [1, 2, 3]
        assert ordered[3] is NULL and ordered[4] is NULL

    def test_mixed_numbers(self):
        assert sorted([2.5, 1, 3], key=sort_key) == [1, 2.5, 3]

    def test_nan_sorts_after_numbers(self):
        ordered = sorted([float("nan"), 1.0, 2.0], key=sort_key)
        assert ordered[0] == 1.0 and ordered[1] == 2.0

    @given(st.lists(st.one_of(st.integers(-100, 100), st.none()), max_size=20))
    def test_total_order_on_ints_and_nulls(self, values):
        # Sorting must never raise and must put all NULLs at the end.
        ordered = sorted(values, key=sort_key)
        nulls = [v for v in ordered if v is None]
        non_null = [v for v in ordered if v is not None]
        assert ordered == non_null + nulls
        assert non_null == sorted(non_null)
