"""Parallel relational execution (engine/parallel.py beyond conf()):
differential serial == parallel answers for sharded scans, partitioned
hash joins, deterministic aconf, and esum/ecount across worker counts,
plus EXPLAIN shard-plan rendering, the worker payload cache, the new
per-operator counters, and worker-crash degradation on the new paths.
"""

import os
import random
import signal
import time

import pytest

from repro.core import aggregates as agg
from repro.core.conditions import Condition
from repro.core.confidence.dispatch import ConfidenceDispatcher, DispatchPolicy
from repro.core.urelation import URelation, condition_columns, encode_condition
from repro.core.variables import VariableRegistry
from repro.db import MayBMS
from repro.engine import planner
from repro.engine.parallel import ParallelExecutionPool
from repro.engine.relation import Relation
from repro.engine.schema import Column, Schema
from repro.engine.types import INTEGER

pytestmark = pytest.mark.usefixtures("batch_engine")


@pytest.fixture
def batch_engine():
    """The parallel scan/join paths are batch-engine operators; pin the
    default engine so the suite behaves the same under REPRO_ENGINE=row
    (aconf/esum/ecount shard at the aggregate layer, engine-independent,
    but the differential queries still plan scans)."""
    with planner.forced_engine(planner.BATCH_ENGINE):
        yield


def _build(**kwargs):
    db = MayBMS(seed=11, **kwargs)
    db.execute("create table t (g integer, k integer, w float)")
    values = [
        f"({g}, {k}, {1 + (g * 7 + k * 3) % 5})"
        for g in range(10)
        for k in range(20)
    ]
    db.execute("insert into t values " + ", ".join(values))
    db.execute("create table d (g integer, label text)")
    db.execute(
        "insert into d values " + ", ".join(f"({g}, 'g{g}')" for g in range(10))
    )
    db.execute("create table u as repair key g, k in t weight by w")
    return db


COND_ARITY = 3
COND_SCHEMA = Schema([Column("g", INTEGER)] + condition_columns(COND_ARITY))


def _mc_workload(registry, rng, groups=8, vars_per_group=6, clauses=8):
    """Many 3-of-6 DNF groups: no closed form, forced onto Monte Carlo."""
    rows = []
    for g in range(groups):
        vars_ = [
            registry.fresh_boolean(rng.uniform(0.2, 0.8))
            for _ in range(vars_per_group)
        ]
        for _ in range(clauses):
            atoms = [(v, 1) for v in rng.sample(vars_, 3)]
            rows.append(
                (g,) + encode_condition(Condition.of(atoms), COND_ARITY, registry)
            )
    return URelation(Relation(COND_SCHEMA, rows), 1, COND_ARITY, registry)


def _mc_aconf(urel, base_seed, pool=None):
    dispatcher = ConfidenceDispatcher(
        urel.registry, DispatchPolicy(strategy="monte-carlo")
    )
    return list(
        agg.aconf(
            urel,
            0.4,
            0.2,
            ["g"],
            dispatcher=dispatcher,
            parallel=pool,
            base_seed=base_seed,
        ).rows
    )


SCAN_QUERY = "select g, k, w * 2 as w2 from t where k % 2 = 0 order by g, k"
JOIN_QUERY = (
    "select t.g, d.label, t.k from t, d "
    "where t.g = d.g and t.k < 5 order by t.g, t.k"
)
ACONF_QUERY = "select g, aconf(0.05, 0.05) as p from u group by g order by g"
ESUM_QUERY = "select g, esum(w) as s from u group by g order by g"
ECOUNT_QUERY = "select g, ecount() as c from u group by g order by g"


class TestDifferentialOps:
    """Every sharded operator must equal serial execution bit-for-bit --
    not approximately -- at any worker count."""

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_sharded_scan_bit_identical(self, workers):
        with _build() as serial, _build(
            parallel_workers=workers, parallel_min_rows=1
        ) as par:
            expected = serial.execute(SCAN_QUERY).relation.rows
            got = par.execute(SCAN_QUERY).relation.rows
            assert got == expected
            stats = par.parallel_stats()
            assert stats["parallel_scan_queries"] >= 1, stats
            assert stats["parallel_scan_shards"] >= 2, stats

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_partitioned_join_bit_identical(self, workers):
        with _build() as serial, _build(
            parallel_workers=workers, parallel_min_rows=1
        ) as par:
            expected = serial.execute(JOIN_QUERY).relation.rows
            got = par.execute(JOIN_QUERY).relation.rows
            assert got == expected
            stats = par.parallel_stats()
            assert stats["parallel_join_queries"] >= 1, stats
            assert stats["parallel_join_shards"] >= 2, stats

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_aconf_bit_identical(self, workers):
        # The serial store answers aconf through the same deterministic
        # per-group sample streams (aconf_unit_seed), so the sharded
        # estimates must match it exactly, not within (epsilon, delta).
        with _build() as serial, _build(
            parallel_workers=workers, parallel_min_rows=1
        ) as par:
            expected = serial.execute(ACONF_QUERY).relation.rows
            got = par.execute(ACONF_QUERY).relation.rows
            assert got == expected
            stats = par.parallel_stats()
            assert stats["parallel_aconf_queries"] == 1, stats
            assert stats["parallel_aconf_shards"] >= 2, stats

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_esum_ecount_bit_identical(self, workers):
        with _build() as serial, _build(
            parallel_workers=workers, parallel_min_rows=1
        ) as par:
            for query in (ESUM_QUERY, ECOUNT_QUERY):
                expected = serial.execute(query).relation.rows
                got = par.execute(query).relation.rows
                assert got == expected, query
            stats = par.parallel_stats()
            assert stats["parallel_expect_queries"] == 2, stats
            assert stats["parallel_expect_shards"] >= 2, stats

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_aconf_monte_carlo_bit_identical(self, workers):
        # A hard DNF workload forced onto the Karp-Luby estimator: the
        # sharded sample loops must reproduce the serial deterministic
        # stream exactly, not just within the (epsilon, delta) guarantee.
        registry = VariableRegistry()
        urel = _mc_workload(registry, random.Random(7))
        expected = _mc_aconf(urel, base_seed=3)
        with ParallelExecutionPool(workers=workers, min_rows=0) as pool:
            got = _mc_aconf(urel, base_seed=3, pool=pool)
            stats = pool.stats()
        assert stats["parallel_aconf_queries"] == 1, stats
        assert stats["parallel_aconf_shards"] >= 2, stats
        assert got == expected

    def test_aconf_base_seed_changes_monte_carlo_answers(self):
        registry = VariableRegistry()
        urel = _mc_workload(registry, random.Random(7))
        with ParallelExecutionPool(workers=2, min_rows=0) as pool:
            one = _mc_aconf(urel, base_seed=1, pool=pool)
            two = _mc_aconf(urel, base_seed=2, pool=pool)
        assert one != two


class TestExplain:
    def test_scan_and_join_fragments_render_shard_plans(self):
        with _build(parallel_workers=2, parallel_min_rows=1) as par:
            explain = "\n".join(
                row[0]
                for row in par.execute("explain " + JOIN_QUERY).relation.rows
            )
        assert "[operator=scan]" in explain, explain
        assert "[operator=join]" in explain, explain
        assert "parallel: 2 workers" in explain, explain
        assert "shard(s)" in explain, explain
        assert "probe shard(s)" in explain, explain

    def test_serial_store_renders_no_parallel_fragments(self):
        with _build() as serial:
            explain = "\n".join(
                row[0]
                for row in serial.execute("explain " + JOIN_QUERY).relation.rows
            )
        assert "parallel fragment" not in explain, explain


class TestStatsSurface:
    def test_per_operator_counters_and_timings(self):
        with _build(parallel_workers=2, parallel_min_rows=1) as par:
            for query in (SCAN_QUERY, JOIN_QUERY, ACONF_QUERY, ESUM_QUERY):
                par.execute(query)
            stats = par.parallel_stats()
            info = par.parallel_pool.last_call
        for key in (
            "parallel_scan_queries",
            "parallel_scan_shards",
            "parallel_join_queries",
            "parallel_join_shards",
            "parallel_aconf_queries",
            "parallel_aconf_shards",
            "parallel_expect_queries",
            "parallel_expect_shards",
            "parallel_encode_ms",
            "parallel_worker_cpu_ms",
            "parallel_cache_evictions",
        ):
            assert key in stats, key
        assert stats["parallel_encode_ms"] > 0
        # conf() did not run: its query counter stays untouched by the
        # new operators.
        assert stats["parallel_queries"] == 0, stats
        # Per-query observability: the last attempt records its payload
        # encode time and one CPU-seconds sample per shard.
        assert info["encode_ms"] >= 0
        assert len(info["shard_cpu_s"]) == info["shards"]
        assert all(cpu >= 0 for cpu in info["shard_cpu_s"])

    def test_worker_cache_eviction_counter(self, monkeypatch):
        # A one-entry worker cache cannot hold both the table payload and
        # the per-query aggregate payloads: decoding must evict, and the
        # workers report the evictions back to the coordinator's counter.
        monkeypatch.setenv("REPRO_PARALLEL_WORKER_CACHE", "1")
        with _build(parallel_workers=2, parallel_min_rows=1) as par:
            for query in (SCAN_QUERY, ESUM_QUERY, SCAN_QUERY, ESUM_QUERY):
                par.execute(query)
            stats = par.parallel_stats()
        assert stats["parallel_cache_evictions"] >= 1, stats

    def test_table_payload_reused_across_queries(self):
        # The coordinator caches the encoded table payload on the relation
        # snapshot under a stable key, so a repeated scan re-encodes
        # nothing and workers can reuse their decoded columns.
        relation = Relation(
            Schema([Column("a", INTEGER), Column("b", INTEGER)]),
            [(i, i * 3) for i in range(100)],
        )
        with ParallelExecutionPool(workers=2, min_rows=1) as pool:
            one = pool.table_pipeline(relation, relation.schema, None, None)
            first = relation._lineage_cache["parallel-payload"]
            two = pool.table_pipeline(relation, relation.schema, None, None)
            second = relation._lineage_cache["parallel-payload"]
            assert pool.stats()["parallel_scan_queries"] == 2
        assert one is not None and two is not None
        assert list(one.rows()) == list(two.rows()) == relation.rows
        assert second[0] is first[0]  # the encoded bytes, not re-encoded
        assert second[1] == first[1]  # the stable worker cache key


class TestDegradation:
    def test_worker_crash_degrades_new_paths_to_serial(self):
        with _build() as serial, _build(
            parallel_workers=2, parallel_min_rows=1
        ) as par:
            expected = {
                query: serial.execute(query).relation.rows
                for query in (SCAN_QUERY, JOIN_QUERY, ACONF_QUERY, ESUM_QUERY)
            }
            # Warm the executor, then kill a worker mid-pool.
            assert par.execute(SCAN_QUERY).relation.rows == expected[SCAN_QUERY]
            pool = par.parallel_pool
            victims = list(pool._executor._processes)
            os.kill(victims[0], signal.SIGKILL)
            time.sleep(0.1)
            # Every new path answers identically through the serial
            # fallback, and the pool recovers for later queries.
            for query, rows in expected.items():
                assert par.execute(query).relation.rows == rows, query
            stats = par.parallel_stats()
            assert stats["parallel_worker_crashes"] >= 1, stats
            for query, rows in expected.items():
                assert par.execute(query).relation.rows == rows, query
