"""Tests for the on-disk WAL format, checkpoint snapshots (legacy JSON and
incremental binary-columnar manifests + segments), and the durability
manager's recovery / rotation / epoch-fallback protocol."""

import glob
import json
import os
import struct

import pytest

from repro.core.variables import VariableRegistry
from repro.engine.catalog import KIND_URELATION, Catalog
from repro.engine.durability import (
    DurabilityManager,
    count_dml_units,
    decode_manifest,
    decode_snapshot,
    encode_frame,
    encode_manifest,
    encode_snapshot,
    manifest_name,
    manifest_segment_names,
    scan_committed,
    scan_frames,
)
from repro.engine.schema import Schema
from repro.engine.storage import Table
from repro.engine.transactions import Transaction, WriteAheadLog
from repro.engine.types import FLOAT, INTEGER, TEXT
from repro.errors import RecoveryError, StorageError


class TestFrameFormat:
    def test_roundtrip(self):
        records = [("begin",), ("insert", "t", 1, [1, "a"]), ("commit",)]
        data = b"".join(encode_frame(r) for r in records)
        decoded, valid = scan_frames(data)
        assert decoded == [("begin",), ("insert", "t", 1, [1, "a"]), ("commit",)]
        assert valid == len(data)

    def test_torn_tail_truncated(self):
        good = encode_frame(("begin",)) + encode_frame(("commit",))
        torn = encode_frame(("insert", "t", 1, [5]))[:-3]  # body cut short
        decoded, valid = scan_frames(good + torn)
        assert decoded == [("begin",), ("commit",)]
        assert valid == len(good)

    def test_corrupt_checksum_stops_scan(self):
        first = encode_frame(("begin",))
        second = bytearray(encode_frame(("insert", "t", 1, [5])))
        second[-1] ^= 0xFF  # flip a payload byte; crc no longer matches
        third = encode_frame(("commit",))
        decoded, valid = scan_frames(first + bytes(second) + third)
        assert decoded == [("begin",)]
        assert valid == len(first)

    def test_garbage_header_stops_scan(self):
        good = encode_frame(("begin",)) + encode_frame(("commit",))
        # A "length" pointing far past the end of file reads as torn.
        garbage = struct.pack(">II", 1 << 30, 0)
        decoded, _ = scan_frames(good + garbage + b"xxxx")
        assert decoded == [("begin",), ("commit",)]

    def test_scan_committed_drops_uncommitted_tail(self):
        records = [
            ("begin",), ("insert", "t", 1, [1]), ("commit",),
            ("begin",), ("insert", "t", 2, [2]),  # crash before commit frame
        ]
        data = b"".join(encode_frame(r) for r in records)
        committed, committed_bytes = scan_committed(data)
        assert committed == list(records[:3])
        # The committed byte length covers exactly the first three frames.
        assert committed_bytes == len(
            b"".join(encode_frame(r) for r in records[:3])
        )

    def test_scan_committed_empty_when_no_commit(self):
        data = b"".join(
            encode_frame(r) for r in [("begin",), ("insert", "t", 1, [1])]
        )
        assert scan_committed(data) == ([], 0)

    def test_count_dml_units(self):
        assert count_dml_units([
            ("begin",), ("insert", "t", 1, [1]), ("commit",),
            ("begin",), ("register_variable", 1, "x", [[0, 1.0]]), ("commit",),
            ("begin",), ("commit",),
        ]) == 1


class TestSnapshotFormat:
    def _catalog(self):
        catalog = Catalog()
        catalog.create_table("t", Schema.of(("x", INTEGER), ("s", TEXT)))
        catalog.table("t").insert((1, "a"))
        catalog.table("t").insert((2, "b"))
        return catalog

    def test_roundtrip(self):
        catalog = self._catalog()
        registry = VariableRegistry()
        var = registry.fresh({0: 0.25, 1: 0.75}, name="x1")
        data = encode_snapshot(catalog, registry, wal_epoch=3)

        snapshot = decode_snapshot(data)
        assert snapshot["wal_epoch"] == 3
        restored_catalog = Catalog()
        restored_registry = VariableRegistry()
        restored_registry.restore_state(snapshot["registry"])
        restored_catalog.restore_state(snapshot["catalog"])
        assert list(restored_catalog.table("t").items()) == [
            (1, (1, "a")), (2, (2, "b")),
        ]
        assert restored_registry.distribution(var) == {0: 0.25, 1: 0.75}
        assert restored_registry.name(var) == "x1"

    def test_corrupt_snapshot_rejected(self):
        data = encode_snapshot(self._catalog(), VariableRegistry(), wal_epoch=1)
        document = json.loads(data)
        document["snapshot"]["wal_epoch"] = 99  # tamper
        with pytest.raises(RecoveryError):
            decode_snapshot(json.dumps(document).encode())

    def test_not_json_rejected(self):
        with pytest.raises(RecoveryError):
            decode_snapshot(b"\x00\x01 not json")


class TestTableState:
    def test_dump_preserves_tids_and_counter(self):
        table = Table("t", Schema.of(("x", INTEGER)))
        table.insert((1,))
        tid = table.insert((2,))
        table.insert((3,))
        table.delete(tid)
        state = table.dump_state()

        fresh = Table("t", Schema.of(("x", INTEGER)))
        fresh.load_state(state)
        assert list(fresh.items()) == [(1, (1,)), (3, (3,))]
        # The tid counter survives even past deleted tids: a new insert must
        # not reuse tid 2.
        assert fresh.insert((9,)) == 4

    def test_index_definitions_roundtrip(self):
        """Checkpoints persist index definitions (entries re-derive from
        rows); in particular unique constraints survive a reopen."""
        table = Table("t", Schema.of(("k", INTEGER), ("s", TEXT)))
        table.insert((1, "a"))
        table.insert((2, "b"))
        table.create_hash_index("by_k", ["k"], unique=True)
        table.create_sorted_index("ord_k", ["k"])
        state = table.dump_state()

        fresh = Table("t", Schema.of(("k", INTEGER), ("s", TEXT)))
        fresh.load_state(state)
        assert sorted(fresh.index_names()) == ["by_k", "ord_k"]
        assert fresh.lookup("by_k", (2,)) == [(2, "b")]
        with pytest.raises(StorageError, match="unique"):
            fresh.insert((1, "dup"))

    def test_load_into_nonempty_rejected(self):
        table = Table("t", Schema.of(("x", INTEGER)))
        table.insert((1,))
        with pytest.raises(StorageError):
            table.load_state({"next_tid": 1, "rows": []})


class TestDurabilityManager:
    def test_append_then_recover(self, tmp_path):
        path = str(tmp_path / "db")
        manager = DurabilityManager(path)
        catalog = Catalog()
        wal = WriteAheadLog(sink=manager)
        txn = Transaction(catalog, wal)
        txn.create_table("t", Schema.of(("x", INTEGER), ("p", FLOAT)))
        txn.insert("t", (1, 0.5))
        txn.insert("t", (2, 0.75))
        txn.commit()
        manager.close()

        recovered_catalog = Catalog()
        recovered_registry = VariableRegistry()
        again = DurabilityManager(path)
        stats = again.recover_into(recovered_catalog, recovered_registry)
        assert stats["replayed_records"] > 0
        assert list(recovered_catalog.table("t").items()) == [
            (1, (1, 0.5)), (2, (2, 0.75)),
        ]

    def test_checkpoint_rotates_and_tail_replays(self, tmp_path):
        path = str(tmp_path / "db")
        manager = DurabilityManager(path)
        catalog = Catalog()
        registry = VariableRegistry()
        wal = WriteAheadLog(sink=manager)

        txn = Transaction(catalog, wal)
        txn.create_table("t", Schema.of(("x", INTEGER)))
        txn.insert("t", (1,))
        txn.commit()
        first_wal = manager.wal_path
        manager.checkpoint(catalog, registry)
        assert not os.path.exists(first_wal)  # rotated away
        assert manager.commits_since_checkpoint == 0

        txn = Transaction(catalog, wal)
        txn.insert("t", (2,))
        txn.commit()
        assert os.path.exists(manager.wal_path)
        manager.close()

        recovered_catalog = Catalog()
        again = DurabilityManager(path)
        again.recover_into(recovered_catalog, VariableRegistry())
        assert sorted(recovered_catalog.table("t").rows()) == [(1,), (2,)]

    def test_commit_counter_counts_dml_units_only(self, tmp_path):
        """Variable-registration units don't advance the auto-checkpoint
        counter: one repair-key statement can log hundreds of them."""
        manager = DurabilityManager(str(tmp_path / "db"))
        manager.append([
            ("begin",), ("insert", "t", 1, [1]), ("commit",),
            ("begin",), ("register_variable", 1, "x1", [[0, 0.5], [1, 0.5]]),
            ("commit",),
            ("begin",), ("delete_row", "t", 1), ("commit",),
        ])
        assert manager.commits_since_checkpoint == 2

    def test_recovery_truncates_bad_tail_bytes(self, tmp_path):
        path = str(tmp_path / "db")
        manager = DurabilityManager(path)
        manager.append([
            ("begin",),
            ("create_table", "t", [["x", "INTEGER"]], "standard", {}),
            ("commit",),
        ])
        wal_file = manager.wal_path
        good_size = os.path.getsize(wal_file)
        manager.close()
        with open(wal_file, "ab") as handle:
            handle.write(b"\x01\x02 garbage")

        again = DurabilityManager(path)
        again.recover_into(Catalog(), VariableRegistry())
        assert os.path.getsize(wal_file) == good_size
        again.close()

    def test_concurrent_managers_rejected(self, tmp_path):
        from repro.errors import DurabilityError

        path = str(tmp_path / "db")
        first = DurabilityManager(path)
        with pytest.raises(DurabilityError, match="locked"):
            DurabilityManager(path)
        first.close()
        DurabilityManager(path).close()

    def test_failed_append_truncates_its_frames(self, tmp_path, monkeypatch):
        """A failed write/fsync must not leave the unit's frames in the
        file: the caller rolls the commit back, and a later successful
        commit fsyncing after them would make the rolled-back transaction
        durable (its commit marker is in the batch).  With retries
        disabled, exhausting the single attempt degrades the store."""
        import repro.engine.durability as durability_module
        from repro.errors import DegradedError

        monkeypatch.setenv("REPRO_WAL_RETRIES", "0")
        path = str(tmp_path / "db")
        manager = DurabilityManager(path)
        manager.append([
            ("begin",),
            ("create_table", "t", [["x", "INTEGER"]], "standard", {}),
            ("commit",),
        ])
        good_size = os.path.getsize(manager.wal_path)

        real_fsync = os.fsync
        failures = {"remaining": 1}

        def flaky_fsync(fd):
            if failures["remaining"] > 0:
                failures["remaining"] -= 1
                raise OSError("simulated EIO at fsync")
            return real_fsync(fd)

        monkeypatch.setattr(durability_module.os, "fsync", flaky_fsync)
        with pytest.raises(DegradedError):
            manager.append([("begin",), ("insert", "t", 1, [99]), ("commit",)])
        monkeypatch.setattr(durability_module.os, "fsync", real_fsync)
        assert os.path.getsize(manager.wal_path) == good_size
        assert manager.degraded
        manager.close()

        # Degradation is in-memory state: a fresh manager starts clean,
        # and recovery must not surface any frame of the failed unit.
        again = DurabilityManager(path)
        recovered = Catalog()
        again.recover_into(recovered, VariableRegistry())
        assert not again.degraded
        again.append([("begin",), ("insert", "t", 1, [1]), ("commit",)])
        again.close()
        recovered = Catalog()
        DurabilityManager(path).recover_into(recovered, VariableRegistry())
        assert list(recovered.table("t").rows()) == [(1,)]  # no 99

    def test_transient_append_failure_absorbed_by_retry(
        self, tmp_path, monkeypatch
    ):
        """With the default retry budget, a single flaky fsync is retried
        transparently: the append succeeds, the retry counter records the
        extra attempt, and recovery sees exactly one copy of the unit."""
        import repro.engine.durability as durability_module

        monkeypatch.setenv("REPRO_WAL_RETRIES", "2")
        monkeypatch.setenv("REPRO_WAL_RETRY_BACKOFF", "0.001")
        path = str(tmp_path / "db")
        manager = DurabilityManager(path)
        # Prime the WAL handle so the flaky fsync below hits the data
        # fsync, not the (best-effort) directory fsync at file creation.
        manager.append([
            ("begin",),
            ("create_table", "t", [["x", "INTEGER"]], "standard", {}),
            ("commit",),
        ])

        real_fsync = os.fsync
        failures = {"remaining": 1}

        def flaky_fsync(fd):
            if failures["remaining"] > 0:
                failures["remaining"] -= 1
                raise OSError("simulated EIO at fsync")
            return real_fsync(fd)

        monkeypatch.setattr(durability_module.os, "fsync", flaky_fsync)
        manager.append([
            ("begin",), ("insert", "t", 1, [7]), ("commit",),
        ])
        monkeypatch.setattr(durability_module.os, "fsync", real_fsync)
        assert manager.wal_retries == 1
        assert not manager.degraded
        manager.close()

        recovered = Catalog()
        DurabilityManager(path).recover_into(recovered, VariableRegistry())
        assert list(recovered.table("t").rows()) == [(7,)]

    def test_recovery_seeds_commit_counter_from_tail(self, tmp_path):
        """A crash-looping workload must still reach the auto-checkpoint
        threshold: the replayed tail counts toward it."""
        path = str(tmp_path / "db")
        manager = DurabilityManager(path)
        manager.append([
            ("begin",),
            ("create_table", "t", [["x", "INTEGER"]], "standard", {}),
            ("commit",),
            ("begin",), ("insert", "t", 1, [1]), ("commit",),
        ])
        manager.close()

        again = DurabilityManager(path)
        again.recover_into(Catalog(), VariableRegistry())
        assert again.commits_since_checkpoint == 2
        again.close()

    def test_recovery_sweeps_orphaned_old_epoch_logs(self, tmp_path):
        """A crash between the checkpoint rename and the old-log deletion
        orphans the superseded WAL; recovery reclaims it."""
        path = str(tmp_path / "db")
        manager = DurabilityManager(path)
        catalog = Catalog()
        wal = WriteAheadLog(sink=manager)
        txn = Transaction(catalog, wal)
        txn.create_table("t", Schema.of(("x", INTEGER)))
        txn.commit()
        manager.checkpoint(catalog, VariableRegistry())  # now at epoch 2
        manager.close()
        # Simulate the orphan: a stale epoch-1 log left behind.
        stale = os.path.join(path, "wal.000001.log")
        with open(stale, "wb") as handle:
            handle.write(encode_frame(("begin",)))

        again = DurabilityManager(path)
        again.recover_into(Catalog(), VariableRegistry())
        assert not os.path.exists(stale)
        again.close()

    def test_torn_wal_tail_is_ignored(self, tmp_path):
        path = str(tmp_path / "db")
        manager = DurabilityManager(path)
        catalog = Catalog()
        wal = WriteAheadLog(sink=manager)
        txn = Transaction(catalog, wal)
        txn.create_table("t", Schema.of(("x", INTEGER)))
        txn.insert("t", (1,))
        txn.commit()
        wal_file = manager.wal_path
        manager.close()
        with open(wal_file, "ab") as handle:
            handle.write(b"\x00\x00\x00\x10 torn garbage")

        recovered = Catalog()
        DurabilityManager(path).recover_into(recovered, VariableRegistry())
        assert list(recovered.table("t").rows()) == [(1,)]

    def test_uncommitted_durable_tail_dropped(self, tmp_path):
        """Frames of a commit unit written without its commit marker (crash
        between write and the marker reaching disk) must not replay."""
        path = str(tmp_path / "db")
        manager = DurabilityManager(path)
        manager.append([
            ("begin",),
            ("create_table", "t", [["x", "INTEGER"]], "standard", {}),
            ("commit",),
            ("begin",),
            ("insert", "t", 1, [7]),
        ])
        manager.close()

        recovered = Catalog()
        DurabilityManager(path).recover_into(recovered, VariableRegistry())
        assert recovered.has_table("t")
        assert len(recovered.table("t")) == 0

    def test_urelation_kind_and_variables_survive(self, tmp_path):
        path = str(tmp_path / "db")
        manager = DurabilityManager(path)
        catalog = Catalog()
        registry = VariableRegistry()
        wal = WriteAheadLog(sink=manager)
        registry.on_register = wal.log_variable
        var = registry.fresh({0: 0.5, 1: 0.5}, name="coin")
        txn = Transaction(catalog, wal)
        txn.create_table(
            "u",
            Schema.of(("a", INTEGER), ("_v0", INTEGER), ("_d0", INTEGER), ("_p0", FLOAT)),
            kind=KIND_URELATION,
            properties={"payload_arity": 1, "cond_arity": 1},
        )
        txn.insert("u", (1, var, 0, 0.5))
        txn.commit()
        manager.close()

        recovered_catalog = Catalog()
        recovered_registry = VariableRegistry()
        DurabilityManager(path).recover_into(recovered_catalog, recovered_registry)
        entry = recovered_catalog.entry("u")
        assert entry.is_urelation
        assert entry.properties["cond_arity"] == 1
        assert recovered_registry.distribution(var) == {0: 0.5, 1: 0.5}
        assert recovered_registry.name(var) == "coin"


def _segments(path):
    return sorted(
        os.path.basename(f) for f in glob.glob(os.path.join(path, "seg-*.seg"))
    )


def _manifests(path):
    return sorted(glob.glob(os.path.join(path, "checkpoint.*.manifest")))


def _build_catalog(tables=3, rows=4):
    catalog = Catalog()
    for i in range(tables):
        catalog.create_table(
            f"t{i}", Schema.of(("k", INTEGER), ("w", FLOAT), ("s", TEXT))
        )
        for j in range(rows):
            catalog.table(f"t{i}").insert((j, j + 0.5, f"row{j}"))
    return catalog


class TestManifestFormat:
    def test_roundtrip(self):
        data = encode_manifest(
            7, [["t", "seg-aa.seg"], ["u", "seg-bb.seg"]], ["seg-cc.seg"], 12
        )
        manifest = decode_manifest(data)
        assert manifest["wal_epoch"] == 7
        assert manifest["tables"] == [["t", "seg-aa.seg"], ["u", "seg-bb.seg"]]
        assert manifest["registry"] == {"segments": ["seg-cc.seg"], "next_id": 12}
        assert manifest_segment_names(manifest) == {
            "seg-aa.seg", "seg-bb.seg", "seg-cc.seg",
        }

    def test_tampered_manifest_rejected(self):
        data = encode_manifest(1, [["t", "seg-aa.seg"]], [], 1)
        document = json.loads(data)
        document["manifest"]["wal_epoch"] = 99
        from repro.errors import RecoveryError

        with pytest.raises(RecoveryError):
            decode_manifest(json.dumps(document).encode())


class TestIncrementalCheckpoint:
    def test_only_dirty_tables_reencoded(self, tmp_path):
        path = str(tmp_path / "db")
        manager = DurabilityManager(path)
        catalog = _build_catalog(tables=4)
        registry = VariableRegistry()
        manager.checkpoint(catalog, registry)
        assert manager.tables_snapshotted == 4
        first_bytes = manager.checkpoint_bytes

        catalog.table("t2").insert((99, 9.5, "dirty"))
        manager.checkpoint(catalog, registry)
        assert manager.tables_snapshotted == 1
        assert manager.segments_reused == 3
        assert manager.checkpoint_bytes < first_bytes
        manager.close()

    def test_clean_checkpoint_writes_no_segments(self, tmp_path):
        manager = DurabilityManager(str(tmp_path / "db"))
        catalog = _build_catalog()
        registry = VariableRegistry()
        manager.checkpoint(catalog, registry)
        segments_before = _segments(manager.path)
        manager.checkpoint(catalog, registry)  # nothing changed
        assert manager.tables_snapshotted == 0
        assert manager.segments_reused == 3
        assert _segments(manager.path) == segments_before
        manager.close()

    def test_identical_tables_share_one_segment(self, tmp_path):
        """Content addressing: same bytes -> same file, written once."""
        manager = DurabilityManager(str(tmp_path / "db"))
        catalog = Catalog()
        for name in ("a", "b"):
            catalog.create_table(name, Schema.of(("k", INTEGER)))
        # Identical contents but distinct table names live in distinct
        # segments (the name is part of the payload); identical contents
        # under the SAME name across epochs dedupe to one file.
        catalog.table("a").insert((1,))
        catalog.table("b").insert((1,))
        manager.checkpoint(catalog, VariableRegistry())
        first = set(_segments(manager.path))
        # Drop and recreate "a" with bit-identical contents: the weakref
        # check forces a re-encode, but the rewrite hashes to the existing
        # file and is re-linked instead of written again.
        catalog.drop_table("a")
        catalog.create_table("a", Schema.of(("k", INTEGER)))
        catalog.table("a").insert((1,))
        manager.checkpoint(catalog, VariableRegistry())
        assert manager.tables_snapshotted == 1
        assert manager.segments_reused == 2  # "b" by version, "a" by hash
        assert set(_segments(manager.path)) == first
        manager.close()

    def test_drop_and_recreate_same_name_is_dirty(self, tmp_path):
        """A same-name table at a coincidentally equal version must not be
        treated as clean: the weakref identity check catches it."""
        manager = DurabilityManager(str(tmp_path / "db"))
        catalog = Catalog()
        catalog.create_table("t", Schema.of(("k", INTEGER)))
        registry = VariableRegistry()
        manager.checkpoint(catalog, registry)
        catalog.drop_table("t")
        catalog.create_table("t", Schema.of(("s", TEXT)))  # same version (0)
        manager.checkpoint(catalog, registry)
        assert manager.tables_snapshotted == 1
        manager.close()

        recovered = Catalog()
        again = DurabilityManager(manager.path)
        again.recover_into(recovered, VariableRegistry())
        assert [c.type.name for c in recovered.table("t").schema] == ["TEXT"]
        again.close()

    def test_dropped_table_segment_swept_after_next_two_checkpoints(self, tmp_path):
        manager = DurabilityManager(str(tmp_path / "db"))
        catalog = _build_catalog(tables=2)
        registry = VariableRegistry()
        manager.checkpoint(catalog, registry)
        count = len(_segments(manager.path))
        catalog.drop_table("t1")
        manager.checkpoint(catalog, registry)   # prev epoch still references it
        manager.checkpoint(catalog, registry)   # now unreferenced -> swept
        assert len(_segments(manager.path)) == count - 1
        manager.close()

    def test_registry_delta_appended_not_rewritten(self, tmp_path):
        manager = DurabilityManager(str(tmp_path / "db"))
        catalog = _build_catalog(tables=1)
        registry = VariableRegistry()
        for _ in range(3):
            registry.fresh({0: 0.5, 1: 0.5})
        manager.checkpoint(catalog, registry)
        with open(_manifests(manager.path)[-1], "rb") as handle:
            manifest = decode_manifest(handle.read())
        assert len(manifest["registry"]["segments"]) == 1

        for _ in range(2):
            registry.fresh({0: 0.25, 1: 0.75})
        manager.checkpoint(catalog, registry)
        with open(_manifests(manager.path)[-1], "rb") as handle:
            manifest = decode_manifest(handle.read())
        # Base segment re-linked, one delta appended.
        assert len(manifest["registry"]["segments"]) == 2
        manager.close()

        recovered_registry = VariableRegistry()
        again = DurabilityManager(manager.path)
        again.recover_into(Catalog(), recovered_registry)
        assert len(recovered_registry) == 5
        assert recovered_registry.distribution(5) == {0: 0.25, 1: 0.75}
        assert recovered_registry.fresh({0: 1.0}) == 6  # frontier restored
        again.close()

    def test_unregister_forces_full_registry_rewrite(self, tmp_path):
        manager = DurabilityManager(str(tmp_path / "db"))
        catalog = _build_catalog(tables=1)
        registry = VariableRegistry()
        first = registry.fresh({0: 0.5, 1: 0.5})
        manager.checkpoint(catalog, registry)
        registry.unregister(first)
        second = registry.fresh({0: 0.1, 1: 0.9})
        manager.checkpoint(catalog, registry)
        with open(_manifests(manager.path)[-1], "rb") as handle:
            manifest = decode_manifest(handle.read())
        assert len(manifest["registry"]["segments"]) == 1  # fresh base
        manager.close()

        recovered = VariableRegistry()
        again = DurabilityManager(manager.path)
        again.recover_into(Catalog(), recovered)
        assert len(recovered) == 1
        assert recovered.distribution(second) == {0: 0.1, 1: 0.9}
        again.close()


class TestEpochFallback:
    def _checkpoint_twice(self, path):
        manager = DurabilityManager(path)
        catalog = _build_catalog(tables=2)
        registry = VariableRegistry()
        wal = WriteAheadLog(sink=manager)
        manager.checkpoint(catalog, registry)
        txn = Transaction(catalog, wal)
        txn.insert("t0", (77, 7.5, "tail"))
        txn.commit()
        manager.checkpoint(catalog, registry)
        txn = Transaction(catalog, wal)
        txn.insert("t1", (88, 8.5, "after"))
        txn.commit()
        manager.close()
        return catalog

    def test_corrupt_newest_segment_falls_back_one_epoch(self, tmp_path):
        path = str(tmp_path / "db")
        live = self._checkpoint_twice(path)
        manifests = _manifests(path)
        assert len(manifests) == 2  # newest + fallback retained
        with open(manifests[-1], "rb") as handle:
            newest = decode_manifest(handle.read())
        with open(manifests[0], "rb") as handle:
            previous = decode_manifest(handle.read())
        unique = manifest_segment_names(newest) - manifest_segment_names(previous)
        victim = os.path.join(path, sorted(unique)[0])
        with open(victim, "r+b") as handle:
            handle.seek(40)
            byte = handle.read(1)
            handle.seek(40)
            handle.write(bytes([byte[0] ^ 0xFF]))

        recovered = Catalog()
        again = DurabilityManager(path)
        stats = again.recover_into(recovered, VariableRegistry())
        assert stats["fallbacks"] == 1
        # The WAL chain from the fallback epoch replays both tail commits.
        for name in ("t0", "t1"):
            assert sorted(recovered.table(name).rows()) == sorted(
                live.table(name).rows()
            )
        assert not os.path.exists(manifests[-1])  # corrupt manifest removed
        again.close()

    def test_fallback_survives_an_intermediate_restart(self, tmp_path):
        """Recovery's sweep must mirror the checkpoint retention: as long
        as the previous manifest is on disk, so is its WAL epoch --
        otherwise a later fallback would replay an incomplete chain and
        silently lose the commits between the two checkpoints."""
        path = str(tmp_path / "db")
        live = self._checkpoint_twice(path)
        # Restart once (recovery runs its own sweep), then crash again.
        intermediate = DurabilityManager(path)
        intermediate.recover_into(Catalog(), VariableRegistry())
        intermediate.close()

        manifests = _manifests(path)
        assert len(manifests) == 2  # predecessor still retained
        with open(manifests[-1], "rb") as handle:
            newest = decode_manifest(handle.read())
        with open(manifests[0], "rb") as handle:
            previous = decode_manifest(handle.read())
        # ...and so is the predecessor's WAL epoch (the chain link).
        prev_wal = os.path.join(
            path, f"wal.{int(previous['wal_epoch']):06d}.log"
        )
        assert os.path.exists(prev_wal)
        unique = manifest_segment_names(newest) - manifest_segment_names(previous)
        victim = os.path.join(path, sorted(unique)[0])
        with open(victim, "r+b") as handle:
            handle.seek(40)
            byte = handle.read(1)
            handle.seek(40)
            handle.write(bytes([byte[0] ^ 0xFF]))

        recovered = Catalog()
        again = DurabilityManager(path)
        stats = again.recover_into(recovered, VariableRegistry())
        assert stats["fallbacks"] == 1
        for name in ("t0", "t1"):
            assert sorted(recovered.table(name).rows()) == sorted(
                live.table(name).rows()
            )
        again.close()

    def test_torn_manifest_falls_back(self, tmp_path):
        path = str(tmp_path / "db")
        live = self._checkpoint_twice(path)
        newest = _manifests(path)[-1]
        with open(newest, "r+b") as handle:
            handle.truncate(os.path.getsize(newest) // 2)

        recovered = Catalog()
        again = DurabilityManager(path)
        stats = again.recover_into(recovered, VariableRegistry())
        assert stats["fallbacks"] == 1
        for name in ("t0", "t1"):
            assert sorted(recovered.table(name).rows()) == sorted(
                live.table(name).rows()
            )
        again.close()

    def test_all_epochs_corrupt_raises_not_empty(self, tmp_path):
        from repro.errors import RecoveryError

        path = str(tmp_path / "db")
        self._checkpoint_twice(path)
        for manifest in _manifests(path):
            with open(manifest, "r+b") as handle:
                handle.truncate(3)
        with pytest.raises(RecoveryError, match="corrupt"):
            DurabilityManager(path).recover_into(Catalog(), VariableRegistry())

    def test_crash_between_rotation_and_manifest(self, tmp_path):
        """prepare_checkpoint rotated the WAL but the process died before
        commit_checkpoint made the manifest durable: recovery falls back to
        the previous artifact and replays the whole epoch chain."""
        path = str(tmp_path / "db")
        manager = DurabilityManager(path)
        catalog = _build_catalog(tables=2)
        registry = VariableRegistry()
        wal = WriteAheadLog(sink=manager)
        manager.checkpoint(catalog, registry)
        txn = Transaction(catalog, wal)
        txn.insert("t0", (77, 7.5, "tail"))
        txn.commit()
        capture = manager.prepare_checkpoint(catalog, registry)  # rotates
        # Crash: commit never runs.  Post-rotation commits land in the new
        # epoch's log and must survive too.
        txn = Transaction(catalog, wal)
        txn.insert("t1", (88, 8.5, "post-rotation"))
        txn.commit()
        del capture
        manager.close()

        recovered = Catalog()
        again = DurabilityManager(path)
        again.recover_into(recovered, VariableRegistry())
        for name in ("t0", "t1"):
            assert sorted(recovered.table(name).rows()) == sorted(
                catalog.table(name).rows()
            )
        again.close()


class TestLegacyMigration:
    def test_json_store_opens_and_migrates(self, tmp_path):
        path = str(tmp_path / "db")
        legacy = DurabilityManager(path, snapshot_format="json")
        catalog = _build_catalog(tables=2)
        registry = VariableRegistry()
        registry.fresh({0: 0.5, 1: 0.5}, name="coin")
        legacy.checkpoint(catalog, registry)
        assert os.path.exists(os.path.join(path, "checkpoint.json"))
        assert not _manifests(path)
        legacy.close()

        recovered = Catalog()
        recovered_registry = VariableRegistry()
        manager = DurabilityManager(path)  # columnar by default
        stats = manager.recover_into(recovered, recovered_registry)
        assert stats["checkpoint_format"] == "json"
        assert recovered_registry.distribution(1) == {0: 0.5, 1: 0.5}

        # The next checkpoint writes the new format; the legacy snapshot is
        # retained one epoch as the fallback, then swept.
        manager.checkpoint(recovered, recovered_registry)
        assert _manifests(path)
        assert os.path.exists(os.path.join(path, "checkpoint.json"))
        manager.checkpoint(recovered, recovered_registry)
        assert not os.path.exists(os.path.join(path, "checkpoint.json"))
        manager.close()

    def test_unknown_snapshot_format_rejected(self, tmp_path):
        from repro.errors import DurabilityError

        with pytest.raises(DurabilityError, match="snapshot format"):
            DurabilityManager(str(tmp_path / "db"), snapshot_format="parquet")


class TestDurabilityCounters:
    def test_stats_exposes_checkpoint_and_recovery_counters(self, tmp_path):
        path = str(tmp_path / "db")
        manager = DurabilityManager(path)
        catalog = _build_catalog(tables=3)
        manager.checkpoint(catalog, VariableRegistry())
        stats = manager.stats()
        assert stats["tables_snapshotted"] == 3
        assert stats["checkpoint_bytes"] > 0
        assert stats["checkpoint_ms"] >= 0
        assert stats["checkpoints_total"] == 1
        manager.close()

        again = DurabilityManager(path)
        again.recover_into(Catalog(), VariableRegistry())
        assert again.stats()["recovery_ms"] > 0
        again.close()


class TestFailpointInjection:
    """Deterministic failpoint-driven failure drills: the graceful
    degradation contract (ENOSPC checkpoints, WAL fsync exhaustion,
    group-commit batch failure) and recovery's epoch fallback under
    injected segment corruption -- all armed via :mod:`repro.faults`,
    no monkeypatching."""

    def _populated_store(self, tmp_path, **kwargs):
        from repro import MayBMS

        path = str(tmp_path / "db")
        db = MayBMS(path=path, checkpoint_every=0, **kwargs)
        db.execute("create table t (k integer, w float)")
        db.execute("insert into t values (1, 0.5), (2, 0.25), (3, 0.75)")
        db.checkpoint()
        db.execute("insert into t values (4, 1.0)")
        return path, db

    def test_enospc_checkpoint_degrades_store_readonly(self, tmp_path):
        from repro import MayBMS, faults
        from repro.errors import DegradedError

        path, db = self._populated_store(tmp_path)
        live = db.query("select k from t order by k").rows
        faults.arm("checkpoint.manifest.rename=enospc@1")
        with pytest.raises(DegradedError, match="degraded"):
            db.checkpoint()
        faults.disarm()

        # Reads keep answering from the live store; writes are refused.
        assert db.storage.degraded
        assert db.storage.stats()["degraded"] is True
        assert db.query("select k from t order by k").rows == live
        with pytest.raises(DegradedError):
            db.execute("insert into t values (5, 1.0)")
        # No partial checkpoint artifacts survive the failed commit.
        assert not glob.glob(os.path.join(path, "*.tmp"))
        db.close()

        # A reopen recovers everything acknowledged before the failure
        # (previous manifest + WAL chain) and clears the degradation.
        reopened = MayBMS(path=path)
        assert not reopened.storage.degraded
        assert reopened.query("select k from t order by k").rows == live
        reopened.execute("insert into t values (5, 1.0)")
        reopened.checkpoint()  # the next checkpoint completes normally
        reopened.close()

    def test_enospc_segment_write_keeps_previous_epoch(self, tmp_path):
        """ENOSPC while writing a *segment* (before the manifest exists):
        the cleanup removes the partial segment files, so recovery never
        sees a half-written epoch at all."""
        from repro import MayBMS, faults
        from repro.errors import DegradedError

        path, db = self._populated_store(tmp_path)
        live = db.query("select k from t order by k").rows
        manifests_before = _manifests(path)
        faults.arm("segment.write=enospc@1")
        with pytest.raises(DegradedError):
            db.checkpoint()
        faults.disarm()
        db.close()

        assert _manifests(path) == manifests_before
        reopened = MayBMS(path=path)
        assert reopened.query("select k from t order by k").rows == live
        reopened.close()

    def test_wal_retry_exhaustion_degrades(self, tmp_path, monkeypatch):
        from repro import MayBMS, faults
        from repro.errors import DegradedError

        monkeypatch.setenv("REPRO_WAL_RETRIES", "1")
        monkeypatch.setenv("REPRO_WAL_RETRY_BACKOFF", "0.001")
        path, db = self._populated_store(tmp_path)
        # Two attempts (first + one retry), both injected to fail.
        faults.arm("wal.fsync=error")
        with pytest.raises(DegradedError, match="WAL append"):
            db.execute("insert into t values (9, 1.0)")
        faults.disarm()
        assert db.storage.degraded
        assert db.storage.stats()["wal_retries"] == 0  # none succeeded
        db.close()

    def test_wal_retry_absorbs_single_injected_failure(
        self, tmp_path, monkeypatch
    ):
        from repro import MayBMS, faults

        monkeypatch.setenv("REPRO_WAL_RETRIES", "2")
        monkeypatch.setenv("REPRO_WAL_RETRY_BACKOFF", "0.001")
        path, db = self._populated_store(tmp_path)
        faults.arm("wal.fsync=error@1")
        db.execute("insert into t values (9, 1.0)")
        faults.disarm()
        assert not db.storage.degraded
        assert db.storage.stats()["wal_retries"] == 1
        db.close()

        reopened = MayBMS(path=path)
        assert reopened.query("select k from t where k = 9").rows == [(9,)]
        reopened.close()

    def test_corrupt_segment_read_during_recovery_falls_back(self, tmp_path):
        """An injected corrupt read of a newest-epoch segment must push
        recovery back one epoch, exactly like real on-disk bit rot."""
        from repro import faults

        path = str(tmp_path / "db")
        manager = DurabilityManager(path)
        catalog = _build_catalog(tables=2)
        registry = VariableRegistry()
        wal = WriteAheadLog(sink=manager)
        manager.checkpoint(catalog, registry)
        txn = Transaction(catalog, wal)
        txn.insert("t0", (77, 7.5, "tail"))
        txn.commit()
        manager.checkpoint(catalog, registry)
        manager.close()
        assert len(_manifests(path)) == 2

        faults.arm("segment.read=corrupt@1")
        recovered = Catalog()
        again = DurabilityManager(path)
        stats = again.recover_into(recovered, VariableRegistry())
        faults.disarm()
        assert stats["fallbacks"] == 1
        for name in ("t0", "t1"):
            assert sorted(recovered.table(name).rows()) == sorted(
                catalog.table(name).rows()
            )
        again.close()

    def test_truncated_segment_read_during_recovery_falls_back(self, tmp_path):
        from repro import faults

        path = str(tmp_path / "db")
        manager = DurabilityManager(path)
        catalog = _build_catalog(tables=1)
        registry = VariableRegistry()
        wal = WriteAheadLog(sink=manager)
        manager.checkpoint(catalog, registry)
        txn = Transaction(catalog, wal)
        txn.insert("t0", (77, 7.5, "tail"))
        txn.commit()
        manager.checkpoint(catalog, registry)
        manager.close()

        faults.arm("segment.read=truncate@1")
        recovered = Catalog()
        again = DurabilityManager(path)
        stats = again.recover_into(recovered, VariableRegistry())
        faults.disarm()
        assert stats["fallbacks"] == 1
        assert sorted(recovered.table("t0").rows()) == sorted(
            catalog.table("t0").rows()
        )
        again.close()

    def test_group_commit_failure_fails_every_queued_follower(
        self, tmp_path, monkeypatch
    ):
        """When the group-commit leader's write+fsync fails for good, the
        whole batch is rolled back: every enqueued session's append raises
        and not one byte of any unit reaches the WAL."""
        import threading

        from repro import faults
        from repro.errors import DegradedError, DurabilityError

        monkeypatch.setenv("REPRO_WAL_RETRIES", "0")
        path = str(tmp_path / "db")
        manager = DurabilityManager(path, group_commit=True)
        manager.append([
            ("begin",),
            ("create_table", "t", [["x", "INTEGER"]], "standard", {}),
            ("commit",),
        ])
        good_size = os.path.getsize(manager.wal_path)

        faults.arm("wal.fsync=error")
        outcomes = []
        outcomes_mutex = threading.Lock()

        def writer(i):
            try:
                manager.append([
                    ("begin",), ("insert", "t", i, [i]), ("commit",),
                ])
                result = "ok"
            except (DegradedError, DurabilityError, OSError) as exc:
                result = type(exc).__name__
            with outcomes_mutex:
                outcomes.append(result)

        threads = [
            threading.Thread(target=writer, args=(i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        faults.disarm()

        assert len(outcomes) == 4
        assert "ok" not in outcomes, outcomes
        assert manager.degraded
        assert os.path.getsize(manager.wal_path) == good_size
        manager.close()

        # Recovery sees only the priming unit -- nothing from the batch.
        recovered = Catalog()
        DurabilityManager(path).recover_into(recovered, VariableRegistry())
        assert list(recovered.table("t").rows()) == []
