"""Tests for scalar expression evaluation (arithmetic, 3VL, functions)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.engine.expressions import (
    Arithmetic,
    Between,
    BoolOp,
    Case,
    Cast,
    ColumnRef,
    Comparison,
    FunctionCall,
    InList,
    IsNull,
    Literal,
    Negate,
    Not,
    PositionRef,
    conjuncts_of,
    conjunction,
)
from repro.engine.schema import Schema
from repro.engine.types import BOOLEAN, FLOAT, INTEGER, NULL, TEXT
from repro.errors import ExpressionError, TypeMismatchError

SCHEMA = Schema.of(("a", INTEGER), ("b", FLOAT), ("s", TEXT), ("flag", BOOLEAN))
ROW = (6, 2.5, "hi", True)


def run(expr, row=ROW, schema=SCHEMA):
    return expr.compile(schema)(row)


class TestLiteralsAndRefs:
    def test_literal(self):
        assert run(Literal(42)) == 42

    def test_column_ref(self):
        assert run(ColumnRef("a")) == 6
        assert run(ColumnRef("s")) == "hi"

    def test_position_ref(self):
        assert run(PositionRef(1, FLOAT)) == 2.5

    def test_type_inference(self):
        assert ColumnRef("a").infer_type(SCHEMA) == INTEGER
        assert Literal("x").infer_type(SCHEMA) == TEXT


class TestArithmetic:
    def test_basic_ops(self):
        assert run(Arithmetic("+", ColumnRef("a"), Literal(2))) == 8
        assert run(Arithmetic("-", ColumnRef("a"), Literal(10))) == -4
        assert run(Arithmetic("*", ColumnRef("a"), ColumnRef("b"))) == 15.0

    def test_integer_division_truncates_toward_zero(self):
        assert run(Arithmetic("/", Literal(7), Literal(2))) == 3
        assert run(Arithmetic("/", Literal(-7), Literal(2))) == -3

    def test_float_division(self):
        assert run(Arithmetic("/", Literal(7.0), Literal(2))) == 3.5

    def test_division_by_zero_raises(self):
        with pytest.raises(ExpressionError):
            run(Arithmetic("/", Literal(1), Literal(0)))

    def test_modulo(self):
        assert run(Arithmetic("%", Literal(7), Literal(3))) == 1

    def test_null_propagation(self):
        assert run(Arithmetic("+", Literal(NULL, INTEGER), Literal(1))) is NULL

    def test_text_concatenation(self):
        assert run(Arithmetic("+", ColumnRef("s"), Literal("!"))) == "hi!"

    def test_type_widening(self):
        expr = Arithmetic("+", ColumnRef("a"), ColumnRef("b"))
        assert expr.infer_type(SCHEMA) == FLOAT

    def test_non_numeric_rejected(self):
        with pytest.raises(TypeMismatchError):
            Arithmetic("*", ColumnRef("s"), Literal(2)).infer_type(SCHEMA)

    def test_negate(self):
        assert run(Negate(ColumnRef("a"))) == -6
        assert run(Negate(Literal(NULL, INTEGER))) is NULL


class TestComparisonsAndBoolOps:
    def test_comparisons(self):
        assert run(Comparison("=", ColumnRef("a"), Literal(6))) is True
        assert run(Comparison("<>", ColumnRef("a"), Literal(6))) is False
        assert run(Comparison("<", ColumnRef("b"), Literal(3))) is True
        assert run(Comparison(">=", ColumnRef("a"), Literal(6.0))) is True

    def test_comparison_null(self):
        assert run(Comparison("=", ColumnRef("a"), Literal(NULL, INTEGER))) is NULL

    def test_and_short_circuit_on_false(self):
        # The second operand would raise if evaluated.
        expr = BoolOp(
            "AND",
            [Literal(False), Comparison("=", Arithmetic("/", Literal(1), Literal(0)), Literal(1))],
        )
        assert run(expr) is False

    def test_or_with_null(self):
        assert run(BoolOp("OR", [Literal(False), Literal(NULL, BOOLEAN)])) is NULL
        assert run(BoolOp("OR", [Literal(True), Literal(NULL, BOOLEAN)])) is True

    def test_not(self):
        assert run(Not(ColumnRef("flag"))) is False
        assert run(Not(Literal(NULL, BOOLEAN))) is NULL

    def test_bool_op_type_check(self):
        with pytest.raises(TypeMismatchError):
            BoolOp("AND", [ColumnRef("a"), Literal(True)]).infer_type(SCHEMA)


class TestPredicates:
    def test_is_null(self):
        assert run(IsNull(Literal(NULL, INTEGER))) is True
        assert run(IsNull(ColumnRef("a"))) is False
        assert run(IsNull(ColumnRef("a"), negated=True)) is True

    def test_in_list(self):
        assert run(InList(ColumnRef("a"), [Literal(1), Literal(6)])) is True
        assert run(InList(ColumnRef("a"), [Literal(1)])) is False
        assert run(InList(ColumnRef("a"), [Literal(1)], negated=True)) is True

    def test_in_list_null_semantics(self):
        # x IN (1, NULL) is NULL when x doesn't match 1.
        assert run(InList(ColumnRef("a"), [Literal(1), Literal(NULL, INTEGER)])) is NULL
        # but TRUE when x matches.
        assert run(InList(Literal(1), [Literal(1), Literal(NULL, INTEGER)])) is True

    def test_between(self):
        assert run(Between(ColumnRef("a"), Literal(5), Literal(7))) is True
        assert run(Between(ColumnRef("a"), Literal(7), Literal(9))) is False
        assert run(Between(ColumnRef("a"), Literal(7), Literal(9), negated=True)) is True


class TestCaseCast:
    def test_case_branches(self):
        expr = Case(
            [
                (Comparison("<", ColumnRef("a"), Literal(5)), Literal("small")),
                (Comparison("<", ColumnRef("a"), Literal(10)), Literal("medium")),
            ],
            Literal("large"),
        )
        assert run(expr) == "medium"

    def test_case_no_match_no_default_is_null(self):
        expr = Case([(Literal(False), Literal(1))])
        assert run(expr) is NULL

    def test_case_type_widening(self):
        expr = Case([(Literal(True), Literal(1))], Literal(2.5))
        assert expr.infer_type(SCHEMA) == FLOAT

    def test_cast_int_to_text(self):
        assert run(Cast(ColumnRef("a"), TEXT)) == "6"

    def test_cast_text_to_int(self):
        assert run(Cast(Literal("123"), INTEGER)) == 123

    def test_cast_text_to_float(self):
        assert run(Cast(Literal(" 1.5 "), FLOAT)) == 1.5

    def test_cast_bad_text_raises(self):
        with pytest.raises(ExpressionError):
            run(Cast(Literal("abc"), INTEGER))

    def test_cast_to_boolean(self):
        assert run(Cast(Literal("true"), BOOLEAN)) is True
        assert run(Cast(Literal(0), BOOLEAN)) is False


class TestFunctions:
    def test_abs(self):
        assert run(FunctionCall("abs", [Negate(ColumnRef("a"))])) == 6

    def test_round_two_args(self):
        assert run(FunctionCall("round", [Literal(2.567), Literal(1)])) == 2.6

    def test_floor_ceil(self):
        assert run(FunctionCall("floor", [ColumnRef("b")])) == 2
        assert run(FunctionCall("ceil", [ColumnRef("b")])) == 3

    def test_string_functions(self):
        assert run(FunctionCall("upper", [ColumnRef("s")])) == "HI"
        assert run(FunctionCall("length", [ColumnRef("s")])) == 2

    def test_coalesce(self):
        expr = FunctionCall("coalesce", [Literal(NULL, INTEGER), Literal(5)])
        assert run(expr) == 5

    def test_null_safe_functions(self):
        assert run(FunctionCall("abs", [Literal(NULL, INTEGER)])) is NULL

    def test_unknown_function_rejected(self):
        with pytest.raises(ExpressionError):
            FunctionCall("frobnicate", [Literal(1)])

    def test_arity_checked(self):
        with pytest.raises(ExpressionError):
            FunctionCall("abs", [])


class TestConjunctHelpers:
    def test_flatten_nested_ands(self):
        expr = BoolOp(
            "AND",
            [
                BoolOp("AND", [Literal(True), Literal(False)]),
                Literal(True),
            ],
        )
        assert len(conjuncts_of(expr)) == 3

    def test_or_not_flattened(self):
        expr = BoolOp("OR", [Literal(True), Literal(False)])
        assert conjuncts_of(expr) == [expr]

    def test_conjunction_roundtrip(self):
        parts = [Literal(True), Literal(False), Literal(True)]
        assert conjuncts_of(conjunction(parts)) == parts
        assert conjunction([]) is None
        assert conjunction([parts[0]]) is parts[0]


class TestPropertyBased:
    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    def test_comparison_consistency(self, x, y):
        schema = Schema.of(("x", INTEGER), ("y", INTEGER))
        row = (x, y)
        lt = Comparison("<", ColumnRef("x"), ColumnRef("y")).compile(schema)(row)
        gt = Comparison(">", ColumnRef("y"), ColumnRef("x")).compile(schema)(row)
        assert lt == gt

    @given(st.integers(-100, 100), st.integers(-100, 100))
    def test_arithmetic_matches_python(self, x, y):
        schema = Schema.of(("x", INTEGER), ("y", INTEGER))
        row = (x, y)
        assert Arithmetic("+", ColumnRef("x"), ColumnRef("y")).compile(schema)(row) == x + y
        assert Arithmetic("*", ColumnRef("x"), ColumnRef("y")).compile(schema)(row) == x * y
