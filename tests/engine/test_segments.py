"""Unit tests for the binary column-segment codec (engine/segments.py):
typed-array round trips, NULL bitmaps, fallback encodings, tid encodings,
registry segments, corruption detection, and the version-2 compressed
encodings (dictionary strings, delta ints) with their format gating."""

import pytest

from repro.engine.segments import (
    MAGIC,
    MAGIC_V2,
    decode_column,
    decode_registry_segment,
    decode_table_segment,
    encode_column,
    encode_registry_segment,
    encode_table_segment,
    segment_name,
)
from repro.errors import RecoveryError


class TestColumnCodec:
    def test_int_column_packs_typed(self):
        values = [1, -5, 2**62, 0]
        encoding, block = encode_column("INTEGER", values)
        assert encoding == "i8"
        assert len(block) == 8 * len(values)
        assert decode_column(encoding, block, len(values)) == values

    def test_float_column_bit_exact(self):
        values = [0.1, -2.5, 1e-300, float("inf"), float("nan")]
        encoding, block = encode_column("FLOAT", values)
        assert encoding == "f8"
        decoded = decode_column(encoding, block, len(values))
        assert decoded[:4] == values[:4]
        assert decoded[4] != decoded[4]  # NaN round-trips as NaN

    def test_text_column_length_prefixed_utf8(self):
        values = ["", "hello", "mötley crüe", "日本語", "a" * 1000]
        encoding, block = encode_column("TEXT", values)
        assert encoding == "utf8"
        assert decode_column(encoding, block, len(values)) == values

    def test_boolean_column_with_nulls(self):
        values = [True, False, None, True]
        encoding, block = encode_column("BOOLEAN", values)
        assert encoding == "bool"
        assert decode_column(encoding, block, len(values)) == values

    @pytest.mark.parametrize(
        "type_name,values,expected",
        [
            ("INTEGER", [1, None, 3], "i8?"),
            ("FLOAT", [None, 2.5], "f8?"),
            ("TEXT", ["a", None, ""], "utf8?"),
        ],
    )
    def test_null_bitmap_variants(self, type_name, values, expected):
        encoding, block = encode_column(type_name, values)
        assert encoding == expected
        assert decode_column(encoding, block, len(values)) == values

    def test_huge_int_falls_back_to_json(self):
        values = [1, 2**100, -(2**80)]
        encoding, block = encode_column("INTEGER", values)
        assert encoding == "json"
        assert decode_column(encoding, block, len(values)) == values

    def test_lone_surrogate_falls_back_to_json(self):
        values = ["ok", "\ud800"]
        encoding, block = encode_column("TEXT", values)
        assert encoding == "json"
        assert decode_column(encoding, block, len(values)) == values

    def test_empty_column(self):
        for type_name in ("INTEGER", "FLOAT", "TEXT", "BOOLEAN"):
            encoding, block = encode_column(type_name, [])
            assert decode_column(encoding, block, 0) == []

    def test_corrupt_block_rejected(self):
        encoding, block = encode_column("INTEGER", [1, 2, 3])
        with pytest.raises(RecoveryError):
            decode_column(encoding, block[:-1], 3)  # torn
        with pytest.raises(RecoveryError):
            decode_column("nope", block, 3)  # unknown encoding


class TestCompressedEncodings:
    def test_sorted_ints_delta_encode(self):
        values = [100 + 3 * i for i in range(64)]
        encoding, block = encode_column("INTEGER", values)
        assert encoding == "i8d"
        assert len(block) < 8 * len(values)
        assert decode_column(encoding, block, len(values)) == values

    def test_unsorted_ints_stay_plain(self):
        values = [5, 3, 8, 1, 9, 2, 7, 4, 6, 0]
        encoding, _ = encode_column("INTEGER", values)
        assert encoding == "i8"

    def test_short_columns_stay_plain(self):
        # Below the 8-value floor compression cannot pay for itself.
        encoding, _ = encode_column("INTEGER", [1, 2, 3])
        assert encoding == "i8"

    def test_large_sorted_gaps_still_roundtrip(self):
        values = [0, 1, 2**40, 2**40 + 5, 2**62, 2**62, 2**62 + 1, 2**62 + 2]
        encoding, block = encode_column("INTEGER", values)
        assert decode_column(encoding, block, len(values)) == values

    def test_negative_sorted_ints_roundtrip(self):
        values = list(range(-(2**50), -(2**50) + 20)) + [-17, -17, 0, 3, 3, 9]
        values.sort()
        encoding, block = encode_column("INTEGER", values)
        # The -2**50 → -17 jump needs a wide delta, but the encoder only
        # picks i8d when it still wins overall; either way it round-trips.
        assert decode_column(encoding, block, len(values)) == values

    def test_delta_beats_plain_only_when_smaller(self):
        # One enormous gap forces 8-byte deltas; delta coding cannot win
        # and the encoder must keep the plain layout.
        values = sorted([-(2**50), -17, -17, 0, 3, 3, 9, 2**31])
        encoding, _ = encode_column("INTEGER", values)
        assert encoding == "i8"

    def test_low_cardinality_text_dictionary_encodes(self):
        values = (["red", "green", "blue"] * 20)[:50]
        encoding, block = encode_column("TEXT", values)
        assert encoding == "utf8d"
        # Strictly smaller than the plain length-prefixed layout.
        assert len(block) < sum(len(v.encode()) for v in values) + 4 * len(values)
        assert decode_column(encoding, block, len(values)) == values

    def test_high_cardinality_text_stays_plain(self):
        values = [f"row-{i}" for i in range(32)]
        encoding, _ = encode_column("TEXT", values)
        assert encoding == "utf8"

    def test_dictionary_text_with_nulls(self):
        values = (["on", None, "off", "off"] * 10)[:38]
        encoding, block = encode_column("TEXT", values)
        assert encoding == "utf8d?"
        assert decode_column(encoding, block, len(values)) == values

    def test_compression_env_escape_hatch(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEGMENT_COMPRESSION", "0")
        assert encode_column("INTEGER", list(range(64)))[0] == "i8"
        assert encode_column("TEXT", ["a", "b"] * 32)[0] == "utf8"

    def test_truncated_compressed_blocks_rejected(self):
        for type_name, values in (
            ("INTEGER", list(range(100, 164))),
            ("TEXT", ["x", "y"] * 16),
        ):
            encoding, block = encode_column(type_name, values)
            with pytest.raises(RecoveryError):
                decode_column(encoding, block[: len(block) // 2], len(values))


def _table_segment(**overrides):
    spec = dict(
        name="t",
        table_kind="standard",
        properties={},
        columns_meta=[("k", "INTEGER"), ("w", "FLOAT"), ("s", "TEXT")],
        tids=[1, 2, 3],
        columns=[[1, 2, 3], [0.5, 1.5, 2.5], ["a", "b", "c"]],
        next_tid=4,
        indexes=[],
    )
    spec.update(overrides)
    return encode_table_segment(
        spec["name"],
        spec["table_kind"],
        spec["properties"],
        spec["columns_meta"],
        spec["tids"],
        spec["columns"],
        spec["next_tid"],
        spec["indexes"],
    )


class TestTableSegment:
    def test_roundtrip(self):
        data = _table_segment(
            table_kind="urelation",
            properties={"payload_arity": 1, "cond_arity": 1},
            indexes=[["hash", "by_k", [0], True]],
        )
        decoded = decode_table_segment(data)
        assert decoded["table"] == "t"
        assert decoded["table_kind"] == "urelation"
        assert decoded["properties"] == {"payload_arity": 1, "cond_arity": 1}
        assert decoded["columns"] == [("k", "INTEGER"), ("w", "FLOAT"), ("s", "TEXT")]
        assert decoded["tids"] == [1, 2, 3]
        assert decoded["column_values"] == [[1, 2, 3], [0.5, 1.5, 2.5], ["a", "b", "c"]]
        assert decoded["next_tid"] == 4
        assert decoded["indexes"] == [["hash", "by_k", [0], True]]

    def test_dense_tids_encode_as_range(self):
        dense = _table_segment()
        sparse = _table_segment(tids=[1, 5, 9])
        # The dense encoding carries no tid block at all.
        assert len(dense) < len(sparse)
        assert decode_table_segment(sparse)["tids"] == [1, 5, 9]

    def test_empty_table(self):
        data = _table_segment(tids=[], columns=[[], [], []], next_tid=7)
        decoded = decode_table_segment(data)
        assert decoded["tids"] == []
        assert decoded["column_values"] == [[], [], []]
        assert decoded["next_tid"] == 7

    def test_content_addressed_name_is_deterministic(self):
        assert segment_name(_table_segment()) == segment_name(_table_segment())
        assert segment_name(_table_segment()) != segment_name(
            _table_segment(tids=[2, 3, 4])
        )

    def test_bitflip_detected(self):
        data = bytearray(_table_segment())
        data[len(data) // 2] ^= 0xFF
        with pytest.raises(RecoveryError):
            decode_table_segment(bytes(data))

    def test_truncation_detected(self):
        data = _table_segment()
        with pytest.raises(RecoveryError):
            decode_table_segment(data[: len(data) - 5])

    def test_not_a_segment_rejected(self):
        with pytest.raises(RecoveryError):
            decode_table_segment(b"definitely not a segment file")


class TestRegistrySegment:
    def test_roundtrip(self):
        state = {
            "next_id": 4,
            "variables": [
                [1, "x1", [[0, 0.25], [1, 0.75]]],
                [2, "coin", [[0, 0.5], [1, 0.5]]],
                [3, "tri", [[0, 0.2], [1, 0.3], [2, 0.5]]],
            ],
        }
        decoded = decode_registry_segment(encode_registry_segment(state))
        assert decoded == state

    def test_empty_delta(self):
        state = {"next_id": 9, "variables": []}
        assert decode_registry_segment(encode_registry_segment(state)) == state

    def test_unpackable_names_and_values_fall_back_to_json(self):
        """Variable names are built from user text (lone surrogates are
        storable) and domain values are arbitrary ints: the registry
        segment must degrade per block instead of failing the checkpoint
        forever."""
        state = {
            "next_id": 3,
            "variables": [
                [1, "k[\ud800]", [[0, 0.5], [1, 0.5]]],
                [2, "big", [[10**30, 0.25], [1, 0.75]]],
            ],
        }
        assert decode_registry_segment(encode_registry_segment(state)) == state

    def test_kind_mismatch_rejected(self):
        table = _table_segment()
        with pytest.raises(RecoveryError):
            decode_registry_segment(table)
        registry = encode_registry_segment({"next_id": 1, "variables": []})
        with pytest.raises(RecoveryError):
            decode_table_segment(registry)


class TestFormatVersionGating:
    def test_uncompressed_segments_keep_v1_magic(self):
        """Segments whose columns take no v2 encoding must stay v1 so old
        readers (and content-addressed manifests from before compression)
        keep loading them byte-identically."""
        data = _table_segment(
            columns_meta=[("w", "FLOAT")], columns=[[0.5, 1.5, 2.5]]
        )
        assert data.startswith(MAGIC)
        assert decode_table_segment(data)["column_values"] == [[0.5, 1.5, 2.5]]

    def test_compressed_segments_get_v2_magic(self):
        n = 64
        data = _table_segment(
            columns_meta=[("k", "INTEGER")],
            columns=[list(range(n))],
            tids=list(range(1, n + 1)),
            next_tid=n + 1,
        )
        assert data.startswith(MAGIC_V2)
        assert decode_table_segment(data)["column_values"] == [list(range(n))]

    def test_compression_off_reproduces_v1_bytes(self, monkeypatch):
        """With the escape hatch set, the writer must emit exactly the
        pre-compression format (stable content-addressed names)."""
        n = 64
        build = lambda: _table_segment(
            columns_meta=[("k", "INTEGER"), ("s", "TEXT")],
            columns=[list(range(n)), ["a", "b"] * (n // 2)],
            tids=list(range(1, n + 1)),
            next_tid=n + 1,
        )
        compressed = build()
        monkeypatch.setenv("REPRO_SEGMENT_COMPRESSION", "0")
        plain = build()
        assert compressed.startswith(MAGIC_V2)
        assert plain.startswith(MAGIC)
        assert decode_table_segment(plain) == decode_table_segment(compressed)

    def test_future_format_version_rejected_with_clear_error(self):
        data = _table_segment()
        forged = b"MBSEG009" + data[len(MAGIC) :]
        with pytest.raises(RecoveryError, match="newer"):
            decode_table_segment(forged)
