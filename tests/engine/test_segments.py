"""Unit tests for the binary column-segment codec (engine/segments.py):
typed-array round trips, NULL bitmaps, fallback encodings, tid encodings,
registry segments, and corruption detection."""

import pytest

from repro.engine.segments import (
    decode_column,
    decode_registry_segment,
    decode_table_segment,
    encode_column,
    encode_registry_segment,
    encode_table_segment,
    segment_name,
)
from repro.errors import RecoveryError


class TestColumnCodec:
    def test_int_column_packs_typed(self):
        values = [1, -5, 2**62, 0]
        encoding, block = encode_column("INTEGER", values)
        assert encoding == "i8"
        assert len(block) == 8 * len(values)
        assert decode_column(encoding, block, len(values)) == values

    def test_float_column_bit_exact(self):
        values = [0.1, -2.5, 1e-300, float("inf"), float("nan")]
        encoding, block = encode_column("FLOAT", values)
        assert encoding == "f8"
        decoded = decode_column(encoding, block, len(values))
        assert decoded[:4] == values[:4]
        assert decoded[4] != decoded[4]  # NaN round-trips as NaN

    def test_text_column_length_prefixed_utf8(self):
        values = ["", "hello", "mötley crüe", "日本語", "a" * 1000]
        encoding, block = encode_column("TEXT", values)
        assert encoding == "utf8"
        assert decode_column(encoding, block, len(values)) == values

    def test_boolean_column_with_nulls(self):
        values = [True, False, None, True]
        encoding, block = encode_column("BOOLEAN", values)
        assert encoding == "bool"
        assert decode_column(encoding, block, len(values)) == values

    @pytest.mark.parametrize(
        "type_name,values,expected",
        [
            ("INTEGER", [1, None, 3], "i8?"),
            ("FLOAT", [None, 2.5], "f8?"),
            ("TEXT", ["a", None, ""], "utf8?"),
        ],
    )
    def test_null_bitmap_variants(self, type_name, values, expected):
        encoding, block = encode_column(type_name, values)
        assert encoding == expected
        assert decode_column(encoding, block, len(values)) == values

    def test_huge_int_falls_back_to_json(self):
        values = [1, 2**100, -(2**80)]
        encoding, block = encode_column("INTEGER", values)
        assert encoding == "json"
        assert decode_column(encoding, block, len(values)) == values

    def test_lone_surrogate_falls_back_to_json(self):
        values = ["ok", "\ud800"]
        encoding, block = encode_column("TEXT", values)
        assert encoding == "json"
        assert decode_column(encoding, block, len(values)) == values

    def test_empty_column(self):
        for type_name in ("INTEGER", "FLOAT", "TEXT", "BOOLEAN"):
            encoding, block = encode_column(type_name, [])
            assert decode_column(encoding, block, 0) == []

    def test_corrupt_block_rejected(self):
        encoding, block = encode_column("INTEGER", [1, 2, 3])
        with pytest.raises(RecoveryError):
            decode_column(encoding, block[:-1], 3)  # torn
        with pytest.raises(RecoveryError):
            decode_column("nope", block, 3)  # unknown encoding


def _table_segment(**overrides):
    spec = dict(
        name="t",
        table_kind="standard",
        properties={},
        columns_meta=[("k", "INTEGER"), ("w", "FLOAT"), ("s", "TEXT")],
        tids=[1, 2, 3],
        columns=[[1, 2, 3], [0.5, 1.5, 2.5], ["a", "b", "c"]],
        next_tid=4,
        indexes=[],
    )
    spec.update(overrides)
    return encode_table_segment(
        spec["name"],
        spec["table_kind"],
        spec["properties"],
        spec["columns_meta"],
        spec["tids"],
        spec["columns"],
        spec["next_tid"],
        spec["indexes"],
    )


class TestTableSegment:
    def test_roundtrip(self):
        data = _table_segment(
            table_kind="urelation",
            properties={"payload_arity": 1, "cond_arity": 1},
            indexes=[["hash", "by_k", [0], True]],
        )
        decoded = decode_table_segment(data)
        assert decoded["table"] == "t"
        assert decoded["table_kind"] == "urelation"
        assert decoded["properties"] == {"payload_arity": 1, "cond_arity": 1}
        assert decoded["columns"] == [("k", "INTEGER"), ("w", "FLOAT"), ("s", "TEXT")]
        assert decoded["tids"] == [1, 2, 3]
        assert decoded["column_values"] == [[1, 2, 3], [0.5, 1.5, 2.5], ["a", "b", "c"]]
        assert decoded["next_tid"] == 4
        assert decoded["indexes"] == [["hash", "by_k", [0], True]]

    def test_dense_tids_encode_as_range(self):
        dense = _table_segment()
        sparse = _table_segment(tids=[1, 5, 9])
        # The dense encoding carries no tid block at all.
        assert len(dense) < len(sparse)
        assert decode_table_segment(sparse)["tids"] == [1, 5, 9]

    def test_empty_table(self):
        data = _table_segment(tids=[], columns=[[], [], []], next_tid=7)
        decoded = decode_table_segment(data)
        assert decoded["tids"] == []
        assert decoded["column_values"] == [[], [], []]
        assert decoded["next_tid"] == 7

    def test_content_addressed_name_is_deterministic(self):
        assert segment_name(_table_segment()) == segment_name(_table_segment())
        assert segment_name(_table_segment()) != segment_name(
            _table_segment(tids=[2, 3, 4])
        )

    def test_bitflip_detected(self):
        data = bytearray(_table_segment())
        data[len(data) // 2] ^= 0xFF
        with pytest.raises(RecoveryError):
            decode_table_segment(bytes(data))

    def test_truncation_detected(self):
        data = _table_segment()
        with pytest.raises(RecoveryError):
            decode_table_segment(data[: len(data) - 5])

    def test_not_a_segment_rejected(self):
        with pytest.raises(RecoveryError):
            decode_table_segment(b"definitely not a segment file")


class TestRegistrySegment:
    def test_roundtrip(self):
        state = {
            "next_id": 4,
            "variables": [
                [1, "x1", [[0, 0.25], [1, 0.75]]],
                [2, "coin", [[0, 0.5], [1, 0.5]]],
                [3, "tri", [[0, 0.2], [1, 0.3], [2, 0.5]]],
            ],
        }
        decoded = decode_registry_segment(encode_registry_segment(state))
        assert decoded == state

    def test_empty_delta(self):
        state = {"next_id": 9, "variables": []}
        assert decode_registry_segment(encode_registry_segment(state)) == state

    def test_unpackable_names_and_values_fall_back_to_json(self):
        """Variable names are built from user text (lone surrogates are
        storable) and domain values are arbitrary ints: the registry
        segment must degrade per block instead of failing the checkpoint
        forever."""
        state = {
            "next_id": 3,
            "variables": [
                [1, "k[\ud800]", [[0, 0.5], [1, 0.5]]],
                [2, "big", [[10**30, 0.25], [1, 0.75]]],
            ],
        }
        assert decode_registry_segment(encode_registry_segment(state)) == state

    def test_kind_mismatch_rejected(self):
        table = _table_segment()
        with pytest.raises(RecoveryError):
            decode_registry_segment(table)
        registry = encode_registry_segment({"next_id": 1, "variables": []})
        with pytest.raises(RecoveryError):
            decode_table_segment(registry)
