"""Process-parallel confidence (engine/parallel.py): differential
serial == parallel answers across worker counts, the component-shard
path, seeded Monte-Carlo determinism, the cost gate, worker-crash
degradation, shared-memory hygiene, and the SQL-level facade wiring.
"""

import os
import random
import signal
import subprocess
import sys
import time
from multiprocessing import shared_memory

import pytest

from repro.core import aggregates as agg
from repro.core.conditions import Condition
from repro.core.confidence.dispatch import ConfidenceDispatcher, DispatchPolicy
from repro.core.urelation import URelation, condition_columns, encode_condition
from repro.core.variables import VariableRegistry
from repro.db import MayBMS
from repro.engine.parallel import (
    ParallelConfidencePool,
    _greedy_shards,
    _unit_seed,
)
from repro.engine.relation import Relation
from repro.engine.schema import Column, Schema
from repro.engine.types import INTEGER

COND_ARITY = 3
SCHEMA = Schema([Column("g", INTEGER)] + condition_columns(COND_ARITY))


def _group_workload(registry, rng, groups=12, vars_per_group=5, clauses=6):
    """Many small groups: exercises the group-shard strategy with a mix of
    closed-form / SPROUT / exact dispatch decisions."""
    rows = []
    for g in range(groups):
        vars_ = [
            registry.fresh_boolean(rng.uniform(0.2, 0.8))
            for _ in range(vars_per_group)
        ]
        for _ in range(clauses):
            atoms = [(v, 1) for v in rng.sample(vars_, 3)]
            rows.append(
                (g,) + encode_condition(Condition.of(atoms), COND_ARITY, registry)
            )
    return URelation(Relation(SCHEMA, rows), 1, COND_ARITY, registry)


def _component_workload(registry, rng, groups=2, islands=4):
    """Few groups whose lineages split into several variable-disjoint
    islands: exercises the component-shard strategy."""
    rows = []
    for g in range(groups):
        for _ in range(islands):
            vars_ = [
                registry.fresh_boolean(rng.uniform(0.2, 0.8)) for _ in range(3)
            ]
            for _ in range(4):
                atoms = [(v, 1) for v in rng.sample(vars_, 2)]
                rows.append(
                    (g,)
                    + encode_condition(Condition.of(atoms), COND_ARITY, registry)
                )
    return URelation(Relation(SCHEMA, rows), 1, COND_ARITY, registry)


def _serial(urel, policy=None):
    dispatcher = ConfidenceDispatcher(urel.registry, policy or DispatchPolicy())
    return list(agg.conf(urel, ["g"], dispatcher=dispatcher).rows)


def _parallel(urel, pool, policy=None):
    dispatcher = ConfidenceDispatcher(urel.registry, policy or DispatchPolicy())
    return list(
        agg.conf(urel, ["g"], dispatcher=dispatcher, parallel=pool).rows
    )


class TestDifferential:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_group_path_bit_identical(self, workers):
        registry = VariableRegistry()
        urel = _group_workload(registry, random.Random(7))
        expected = _serial(urel)
        with ParallelConfidencePool(workers=workers, min_rows=0, base_seed=3) as pool:
            got = _parallel(urel, pool)
            stats = pool.stats()
        assert stats["parallel_queries"] == 1, stats
        assert stats["parallel_group_shards"] >= 2
        assert got == expected  # bit-identical, not approximately

    @pytest.mark.parametrize("workers", [2, 4])
    def test_component_path_bit_identical(self, workers):
        registry = VariableRegistry()
        urel = _component_workload(registry, random.Random(11))
        # exact_budget=None: the exact engine never defects to Monte Carlo,
        # so every component answer is deterministic and comparable.
        policy = DispatchPolicy(exact_budget=None)
        expected = _serial(urel, policy)
        with ParallelConfidencePool(workers=workers, min_rows=0, base_seed=3) as pool:
            got = _parallel(urel, pool, policy)
            stats = pool.stats()
            path = pool.last_call["path"]
        assert stats["parallel_queries"] == 1, stats
        assert path == "components"
        assert got == expected

    def test_monte_carlo_deterministic_across_worker_counts(self):
        registry = VariableRegistry()
        urel = _group_workload(registry, random.Random(5))
        policy = DispatchPolicy(strategy="monte-carlo", epsilon=0.4, delta=0.2)
        answers = []
        for workers in (1, 2, 4):
            with ParallelConfidencePool(
                workers=workers, min_rows=0, base_seed=42
            ) as pool:
                answers.append(_parallel(urel, pool, policy))
                assert pool.stats()["parallel_queries"] == 1
        assert answers[0] == answers[1] == answers[2]

    def test_base_seed_changes_monte_carlo_answers(self):
        registry = VariableRegistry()
        urel = _group_workload(registry, random.Random(5))
        policy = DispatchPolicy(strategy="monte-carlo", epsilon=0.4, delta=0.2)
        with ParallelConfidencePool(workers=2, min_rows=0, base_seed=1) as pool:
            one = _parallel(urel, pool, policy)
        with ParallelConfidencePool(workers=2, min_rows=0, base_seed=2) as pool:
            two = _parallel(urel, pool, policy)
        assert one != two


class TestCostGate:
    def test_small_relation_stays_serial(self):
        registry = VariableRegistry()
        urel = _group_workload(registry, random.Random(7), groups=3, clauses=2)
        with ParallelConfidencePool(workers=2, min_rows=10_000) as pool:
            assert not pool.eligible(urel)
            got = _parallel(urel, pool)
            stats = pool.stats()
        assert stats["parallel_queries"] == 0
        assert stats["parallel_gated_serial"] >= 1
        assert got == _serial(urel)

    def test_certain_relation_ineligible(self):
        registry = VariableRegistry()
        relation = Relation(Schema([Column("g", INTEGER)]), [(1,), (2,)])
        urel = URelation(relation, 1, 0, registry)
        with ParallelConfidencePool(workers=2, min_rows=0) as pool:
            assert not pool.eligible(urel)

    def test_single_group_forced_strategy_stays_serial(self):
        registry = VariableRegistry()
        urel = _group_workload(registry, random.Random(7), groups=1)
        policy = DispatchPolicy(strategy="exact")
        with ParallelConfidencePool(workers=2, min_rows=0) as pool:
            got = _parallel(urel, pool, policy)
            stats = pool.stats()
        assert stats["parallel_queries"] == 0
        assert stats["parallel_gated_serial"] >= 1
        assert got == _serial(urel, policy)


class TestLifecycle:
    def test_worker_crash_degrades_to_serial_then_recovers(self):
        registry = VariableRegistry()
        urel = _group_workload(registry, random.Random(7))
        expected = _serial(urel)
        with ParallelConfidencePool(workers=2, min_rows=0) as pool:
            assert _parallel(urel, pool) == expected  # warm the executor
            victims = list(pool._executor._processes)
            os.kill(victims[0], signal.SIGKILL)
            time.sleep(0.1)
            # The broken pool degrades to serial: same answer, no raise.
            assert _parallel(urel, pool) == expected
            crashed = pool.stats()
            assert crashed["parallel_worker_crashes"] >= 1
            # A fresh executor replaces the broken one on the next query.
            assert _parallel(urel, pool) == expected
            assert pool.stats()["parallel_queries"] >= 2

    def test_shutdown_unlinks_every_segment(self):
        registry = VariableRegistry()
        urel = _group_workload(registry, random.Random(7))
        pool = ParallelConfidencePool(workers=2, min_rows=0)
        _parallel(urel, pool)
        _parallel(urel, pool)
        pool.shutdown()
        assert pool.segment_history  # the queries did publish segments
        for name in pool.segment_history:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_shutdown_is_idempotent_and_blocks_reuse(self):
        registry = VariableRegistry()
        urel = _group_workload(registry, random.Random(7))
        pool = ParallelConfidencePool(workers=1, min_rows=0)
        pool.shutdown()
        pool.shutdown()
        assert not pool.eligible(urel)

    def test_no_resource_tracker_leak_warnings(self, tmp_path):
        """Run a pool to completion in a subprocess and assert the
        interpreter exits without resource_tracker leak warnings."""
        script = tmp_path / "leakcheck.py"
        script.write_text(
            "import random, sys\n"
            "sys.path.insert(0, {src!r})\n"
            "from repro.db import MayBMS\n"
            "def main():\n"
            "    db = MayBMS(seed=1, parallel_workers=2, parallel_min_rows=1)\n"
            "    db.execute('create table t (g integer, k integer, w float)')\n"
            "    rows = ', '.join(f'({{i % 5}}, {{i}}, 1.0)' for i in range(50))\n"
            "    db.execute('insert into t values ' + rows)\n"
            "    db.execute('create table u as repair key g, k in t weight by w')\n"
            "    db.execute('select g, conf() as p from u group by g')\n"
            "    assert db.parallel_stats()['parallel_queries'] == 1\n"
            "    db.close()\n"
            "if __name__ == '__main__':\n"
            "    main()\n".format(
                src=os.path.join(
                    os.path.dirname(
                        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
                    ),
                    "src",
                )
            )
        )
        proc = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "resource_tracker" not in proc.stderr, proc.stderr
        assert "leaked" not in proc.stderr, proc.stderr


class TestFacade:
    @staticmethod
    def _build(**kwargs):
        db = MayBMS(seed=11, **kwargs)
        db.execute("create table t (g integer, k integer, w float)")
        values = [
            f"({g}, {k}, {1 + (g * 7 + k * 3) % 5})"
            for g in range(10)
            for k in range(12)
        ]
        db.execute("insert into t values " + ", ".join(values))
        db.execute("create table u as repair key g, k in t weight by w")
        return db

    QUERY = "select g, conf() as p from u group by g order by g"

    def test_sql_conf_matches_serial_and_traces(self):
        with self._build() as serial, self._build(
            parallel_workers=2, parallel_min_rows=1
        ) as par:
            expected = serial.execute(self.QUERY).relation.rows
            got = par.execute(self.QUERY).relation.rows
            assert got == expected
            stats = par.parallel_stats()
            assert stats["parallel_queries"] == 1, stats
            explain = "\n".join(
                row[0]
                for row in par.execute("explain " + self.QUERY).relation.rows
            )
            assert "parallel: 2 workers" in explain, explain
            pool = par.parallel_pool
        # context exit closed the store: the pool must be down too
        assert pool._executor is None
        assert par.parallel_stats() is not None  # stats survive close

    def test_sessions_share_the_store_pool(self):
        with self._build(parallel_workers=2, parallel_min_rows=1) as db:
            session = db.session()
            session.execute(self.QUERY)
            assert session.parallel_stats()["parallel_queries"] == 1
            db.execute(self.QUERY)
            assert db.parallel_stats()["parallel_queries"] == 2
            session.close()

    def test_serial_store_has_no_pool(self):
        with MayBMS(seed=1) as db:
            assert db.parallel_pool is None
            assert db.parallel_stats() is None

    def test_env_default_enables_pool(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_WORKERS", "3")
        monkeypatch.setenv("REPRO_PARALLEL_MIN_ROWS", "77")
        with MayBMS(seed=1) as db:
            assert db.parallel_pool is not None
            assert db.parallel_pool.workers == 3
            assert db.parallel_pool.min_rows == 77


class TestShardingPrimitives:
    def test_greedy_shards_cover_all_units_once(self):
        weights = [5, 1, 9, 2, 2, 7, 1, 1]
        shards = _greedy_shards(weights, 3)
        flat = sorted(unit for shard in shards for unit in shard)
        assert flat == list(range(len(weights)))
        loads = sorted(sum(weights[u] for u in shard) for shard in shards)
        assert loads[-1] <= loads[0] + 9  # LPT keeps the spread bounded

    def test_greedy_shards_drop_empty(self):
        assert _greedy_shards([4], 8) == [[0]]

    def test_unit_seed_is_stable_and_distinct(self):
        assert _unit_seed(42, 3) == _unit_seed(42, 3)
        seeds = {_unit_seed(42, g, c) for g in range(20) for c in range(-1, 5)}
        assert len(seeds) == 20 * 6
        assert _unit_seed(1, 3) != _unit_seed(2, 3)


class TestAdaptiveGate:
    """The adaptive parallel_min_rows gate: every sharded call feeds its
    encode-vs-worker-CPU split to _observe_gate, which doubles the
    effective gate when coordinator encode time dominated (sharding was
    overhead) and halves it when worker compute dominated, clamped to
    [max(64, min_rows/8), min_rows*16]."""

    def test_encode_dominated_observations_raise_gate(self):
        pool = ParallelConfidencePool(workers=2, min_rows=1024)
        try:
            assert pool.adaptive
            pool._observe_gate(encode_ms=50.0, cpu_ms=5.0)
            assert pool._min_rows_effective == 2048
            assert not pool.operator_eligible(1500)
            for _ in range(10):  # clamp at min_rows * 16
                pool._observe_gate(encode_ms=50.0, cpu_ms=5.0)
            assert pool._min_rows_effective == 1024 * 16
            assert pool.stats()["parallel_gate_adaptations"] == 4
        finally:
            pool.shutdown()

    def test_compute_dominated_observations_lower_gate(self):
        pool = ParallelConfidencePool(workers=2, min_rows=1024)
        try:
            pool._observe_gate(encode_ms=1.0, cpu_ms=100.0)
            assert pool._min_rows_effective == 512
            assert pool.operator_eligible(512)
            for _ in range(10):  # clamp at max(64, min_rows / 8)
                pool._observe_gate(encode_ms=1.0, cpu_ms=100.0)
            assert pool._min_rows_effective == 128
        finally:
            pool.shutdown()

    def test_balanced_observations_leave_gate_alone(self):
        pool = ParallelConfidencePool(workers=2, min_rows=1024)
        try:
            pool._observe_gate(encode_ms=10.0, cpu_ms=20.0)
            assert pool._min_rows_effective == 1024
            assert pool.stats()["parallel_gate_adaptations"] == 0
        finally:
            pool.shutdown()

    def test_env_escape_hatch_pins_gate(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_ADAPTIVE", "0")
        pool = ParallelConfidencePool(workers=2, min_rows=1024)
        try:
            assert not pool.adaptive
            pool._observe_gate(encode_ms=100.0, cpu_ms=1.0)
            assert pool._min_rows_effective == 1024
            assert pool.stats()["parallel_gate_adaptations"] == 0
        finally:
            pool.shutdown()

    def test_forced_parallel_gate_never_adapts(self):
        # min_rows < 64 means "always shard" (tests and benchmarks):
        # adaptation must not re-gate forced-parallel pools.
        for forced in (0, 1):
            pool = ParallelConfidencePool(workers=2, min_rows=forced)
            try:
                assert not pool.adaptive
                pool._observe_gate(encode_ms=100.0, cpu_ms=1.0)
                assert pool._min_rows_effective == forced
            finally:
                pool.shutdown()

    def test_assigning_min_rows_resets_effective_gate(self):
        pool = ParallelConfidencePool(workers=2, min_rows=1024)
        try:
            pool._observe_gate(encode_ms=50.0, cpu_ms=5.0)
            assert pool._min_rows_effective == 2048
            pool.min_rows = 1  # in-place re-tune, as tests do
            assert pool._min_rows_effective == 1
            assert not pool.adaptive
            assert pool.operator_eligible(2)
        finally:
            pool.shutdown()
