"""Unit tests for the columnar batch engine.

Covers the three new layers: :class:`ColumnBatch` itself, the expression
kernel compiler (:mod:`repro.engine.kernels`) including SQL NULL
semantics and the specialized consistency-filter kernel, and operator
equivalence between the row and batch engines on hand-built plans.
"""

import random

import pytest

from repro.engine import algebra, planner
from repro.engine.columnar import (
    BATCH_SIZE,
    ColumnBatch,
    batches_of_columns,
    concat_batches,
)
from repro.engine.expressions import (
    Arithmetic,
    BoolOp,
    ColumnRef,
    Comparison,
    ConsistencyPredicate,
    Literal,
    PositionRef,
)
from repro.engine.kernels import compile_kernel
from repro.engine.relation import Relation
from repro.engine.schema import Schema
from repro.engine.types import FLOAT, INTEGER, NULL, TEXT
from repro.errors import ExpressionError


class TestColumnBatch:
    def test_from_rows_roundtrip(self):
        rows = [(1, "a"), (2, "b"), (3, "c")]
        batch = ColumnBatch.from_rows(rows, 2)
        assert batch.length == 3
        assert batch.arity == 2
        assert list(batch.rows()) == rows

    def test_empty(self):
        batch = ColumnBatch.empty(3)
        assert batch.length == 0
        assert batch.arity == 3
        assert list(batch.rows()) == []

    def test_take(self):
        batch = ColumnBatch.from_rows([(1, 10), (2, 20), (3, 30)], 2)
        taken = batch.take([2, 0, 2])
        assert list(taken.rows()) == [(3, 30), (1, 10), (3, 30)]

    def test_filter_by_mask_three_valued(self):
        batch = ColumnBatch.from_rows([(1,), (2,), (3,)], 1)
        # NULL (None) must behave as "not kept", exactly like the row
        # engine's `predicate(row) is True` test.
        filtered = batch.filter_by_mask([True, None, False])
        assert list(filtered.rows()) == [(1,)]

    def test_filter_all_true_is_zero_copy(self):
        batch = ColumnBatch.from_rows([(1,), (2,)], 1)
        assert batch.filter_by_mask([True, True]) is batch

    def test_slice_and_concat_columns(self):
        batch = ColumnBatch.from_rows([(1, "x"), (2, "y"), (3, "z")], 2)
        assert list(batch.slice(1, 3).rows()) == [(2, "y"), (3, "z")]
        wide = batch.concat_columns(ColumnBatch.from_rows([(7,), (8,), (9,)], 1))
        assert list(wide.rows()) == [(1, "x", 7), (2, "y", 8), (3, "z", 9)]

    def test_batches_of_columns_single_batch_shares_columns(self):
        columns = ([1, 2, 3], ["a", "b", "c"])
        batches = list(batches_of_columns(columns, 3))
        assert len(batches) == 1
        # Zero-copy: small scans hand the columns through untouched.
        assert batches[0].columns[0] is columns[0]

    def test_batches_of_columns_splits(self):
        n = BATCH_SIZE * 2 + 5
        columns = (list(range(n)),)
        batches = list(batches_of_columns(columns, n))
        assert [b.length for b in batches] == [BATCH_SIZE, BATCH_SIZE, 5]
        assert [row[0] for b in batches for row in b.rows()] == list(range(n))

    def test_concat_batches(self):
        a = ColumnBatch.from_rows([(1,), (2,)], 1)
        b = ColumnBatch.from_rows([(3,)], 1)
        merged = concat_batches([a, b], 1)
        assert list(merged.rows()) == [(1,), (2,), (3,)]
        assert concat_batches([], 1).length == 0


def _run_kernel(expr, schema, rows):
    kernel = compile_kernel(expr, schema)
    batch = ColumnBatch.from_rows(rows, len(schema))
    return list(kernel(batch.columns, batch.length))


def _run_rowwise(expr, schema, rows):
    evaluate = expr.compile(schema)
    return [evaluate(row) for row in rows]


class TestKernels:
    SCHEMA = Schema.of(("a", INTEGER), ("b", INTEGER), ("t", TEXT))
    ROWS = [(1, 2, "x"), (2, 2, "y"), (NULL, 5, NULL), (7, NULL, "x")]

    @pytest.mark.parametrize("op", ["=", "<>", "<", "<=", ">", ">="])
    def test_comparisons_match_row_engine(self, op):
        expr = Comparison(op, ColumnRef("a"), ColumnRef("b"))
        assert _run_kernel(expr, self.SCHEMA, self.ROWS) == _run_rowwise(
            expr, self.SCHEMA, self.ROWS
        )

    def test_comparison_null_propagates(self):
        expr = Comparison("=", ColumnRef("a"), ColumnRef("b"))
        assert _run_kernel(expr, self.SCHEMA, self.ROWS)[2] is NULL

    def test_boolop_kleene(self):
        expr = BoolOp(
            "OR",
            [
                Comparison("=", ColumnRef("a"), ColumnRef("b")),
                Comparison("=", ColumnRef("t"), Literal("x")),
            ],
        )
        assert _run_kernel(expr, self.SCHEMA, self.ROWS) == _run_rowwise(
            expr, self.SCHEMA, self.ROWS
        )

    def test_arithmetic_null_propagates(self):
        expr = Arithmetic("+", ColumnRef("a"), ColumnRef("b"))
        assert _run_kernel(expr, self.SCHEMA, self.ROWS) == [3, 4, NULL, NULL]

    def test_division_by_zero_raises(self):
        schema = Schema.of(("a", INTEGER), ("b", INTEGER))
        expr = Arithmetic("/", ColumnRef("a"), ColumnRef("b"))
        with pytest.raises(ExpressionError):
            _run_kernel(expr, schema, [(4, 2), (1, 0)])

    def test_guarded_division_short_circuits_like_row_engine(self):
        """`b <> 0 AND a / b > 1` must not divide by zero: AND over an
        operand that can raise falls back to the row engine's
        short-circuit evaluation."""
        schema = Schema.of(("a", INTEGER), ("b", INTEGER))
        expr = BoolOp(
            "AND",
            [
                Comparison("<>", ColumnRef("b"), Literal(0)),
                Comparison(
                    ">", Arithmetic("/", ColumnRef("a"), ColumnRef("b")), Literal(1)
                ),
            ],
        )
        rows = [(4, 2), (1, 0), (9, 3)]
        assert _run_kernel(expr, schema, rows) == [True, False, True]

    def test_text_concat(self):
        schema = Schema.of(("t", TEXT), ("u", TEXT))
        expr = Arithmetic("+", ColumnRef("t"), ColumnRef("u"))
        assert _run_kernel(expr, schema, [("a", "b"), (NULL, "c")]) == ["ab", NULL]


class TestConsistencyKernel:
    def _wide_schema(self):
        # payload, then two condition triples (v, d, p) x 2.
        return Schema.of(
            ("x", INTEGER),
            ("_v0", INTEGER), ("_d0", INTEGER), ("_p0", FLOAT),
            ("_v1", INTEGER), ("_d1", INTEGER), ("_p1", FLOAT),
        )

    def _random_rows(self, count, rng):
        rows = []
        for _ in range(count):
            rows.append(
                (
                    rng.randrange(5),
                    rng.randrange(4), rng.randrange(3), 0.5,
                    rng.randrange(4), rng.randrange(3), 0.5,
                )
            )
        return rows

    @pytest.mark.parametrize("count", [3, 200])
    def test_kernel_matches_row_compile(self, count):
        """The vectorized kernel (NumPy path kicks in at count=200) agrees
        with the row closure on random condition columns."""
        schema = self._wide_schema()
        predicate = ConsistencyPredicate([(1, 2, 4, 5)])
        rows = self._random_rows(count, random.Random(42))
        assert _run_kernel(predicate, schema, rows) == _run_rowwise(
            predicate, schema, rows
        )

    def test_multi_pair(self):
        schema = self._wide_schema()
        predicate = ConsistencyPredicate([(1, 2, 4, 5), (4, 5, 1, 2)])
        rows = self._random_rows(64, random.Random(7))
        assert _run_kernel(predicate, schema, rows) == _run_rowwise(
            predicate, schema, rows
        )

    def test_semantics(self):
        schema = self._wide_schema()
        predicate = ConsistencyPredicate([(1, 2, 4, 5)])
        rows = [
            (0, 3, 1, 0.5, 3, 1, 0.5),  # same variable, same value: keep
            (0, 3, 1, 0.5, 3, 2, 0.5),  # same variable, different value: drop
            (0, 3, 1, 0.5, 9, 2, 0.5),  # different variables: keep
        ]
        assert _run_kernel(predicate, schema, rows) == [True, False, True]


def _random_relation(rng, count):
    schema = Schema.of(("k", INTEGER), ("v", INTEGER), ("t", TEXT), qualifier="r")
    rows = [
        (
            rng.randrange(8),
            rng.randrange(100) if rng.random() > 0.1 else NULL,
            rng.choice(["a", "b", "c"]),
        )
        for _ in range(count)
    ]
    return Relation(schema, rows)


def _assert_engines_agree(plan):
    with planner.forced_engine("row"):
        row_result = planner.run(plan)
    with planner.forced_engine("batch"):
        batch_result = planner.run(plan)
    # Exact row order, not just multiset equality: the batch engine
    # promises the row engine's ordering operator by operator.
    assert batch_result.rows == row_result.rows
    assert batch_result.schema.names == row_result.schema.names


class TestOperatorEquivalence:
    def setup_method(self):
        rng = random.Random(11)
        self.r = _random_relation(rng, 150)
        schema = Schema.of(("k", INTEGER), ("w", FLOAT), qualifier="s")
        self.s = Relation(
            schema,
            [(rng.randrange(8), rng.random()) for _ in range(90)],
        )

    def test_filter_project(self):
        plan = algebra.Project(
            algebra.Select(
                algebra.RelationScan(self.r),
                Comparison(">", ColumnRef("v"), Literal(30)),
            ),
            [(ColumnRef("k"), "k"), (Arithmetic("*", ColumnRef("v"), Literal(2)), "vv")],
        )
        _assert_engines_agree(plan)

    def test_hash_join_with_residual(self):
        plan = algebra.Select(
            algebra.Join(
                algebra.RelationScan(self.r),
                algebra.RelationScan(self.s),
                Comparison("=", ColumnRef("k", "r"), ColumnRef("k", "s")),
            ),
            Comparison(">", ColumnRef("w"), Literal(0.25)),
        )
        _assert_engines_agree(plan)

    def test_nested_loop_join(self):
        plan = algebra.Join(
            algebra.RelationScan(self.r),
            algebra.RelationScan(self.s),
            Comparison("<", ColumnRef("k", "r"), ColumnRef("k", "s")),
        )
        _assert_engines_agree(plan)

    def test_cross_join(self):
        small = Relation(Schema.of(("z", INTEGER)), [(1,), (2,)])
        plan = algebra.Join(algebra.RelationScan(self.r), algebra.RelationScan(small))
        _assert_engines_agree(plan)

    def test_group_by_aggregates(self):
        plan = algebra.GroupBy(
            algebra.RelationScan(self.r),
            [(ColumnRef("k"), "k")],
            [
                algebra.AggregateSpec("count_star", None, "n"),
                algebra.AggregateSpec("sum", ColumnRef("v"), "total"),
                algebra.AggregateSpec("min", ColumnRef("t"), "lo"),
                algebra.AggregateSpec("avg", ColumnRef("v"), "mean"),
            ],
        )
        _assert_engines_agree(plan)

    def test_scalar_aggregate_over_empty_input(self):
        empty = Relation(self.r.schema, [])
        plan = algebra.GroupBy(
            algebra.RelationScan(empty),
            [],
            [
                algebra.AggregateSpec("count_star", None, "n"),
                algebra.AggregateSpec("sum", ColumnRef("v"), "total"),
            ],
        )
        _assert_engines_agree(plan)

    def test_argmax_expansion(self):
        plan = algebra.GroupBy(
            algebra.RelationScan(self.r),
            [(ColumnRef("t"), "t")],
            [algebra.AggregateSpec("argmax", ColumnRef("k"), "best", second=ColumnRef("v"))],
        )
        _assert_engines_agree(plan)

    def test_sort_distinct_limit(self):
        plan = algebra.Limit(
            algebra.Sort(
                algebra.Distinct(
                    algebra.Project(
                        algebra.RelationScan(self.r),
                        [(ColumnRef("k"), "k"), (ColumnRef("t"), "t")],
                    )
                ),
                [(ColumnRef("k"), False), (ColumnRef("t"), True)],
            ),
            count=7,
            offset=3,
        )
        _assert_engines_agree(plan)

    def test_sort_nulls_last_ascending(self):
        plan = algebra.Sort(
            algebra.RelationScan(self.r), [(ColumnRef("v"), True)]
        )
        _assert_engines_agree(plan)

    def test_union_all(self):
        left = algebra.Project(
            algebra.RelationScan(self.r), [(ColumnRef("k"), "k")]
        )
        right = algebra.Project(
            algebra.RelationScan(self.s), [(ColumnRef("k"), "k")]
        )
        _assert_engines_agree(algebra.Union(left, right))

    def test_values(self):
        plan = algebra.Values(
            Schema.of(("x", INTEGER), ("y", TEXT)),
            ((1, "a"), (2, "b")),
        )
        _assert_engines_agree(plan)

    def test_values_ragged_rows_rejected_by_both_engines(self):
        """Regression: the batch engine must reject malformed Values rows
        with the same SchemaError the row engine raises, not silently
        truncate them."""
        from repro.errors import SchemaError

        plan = algebra.Values(
            Schema.of(("x", INTEGER), ("y", INTEGER)), ((1,), (2,))
        )
        for engine in ("row", "batch"):
            with planner.forced_engine(engine):
                with pytest.raises(SchemaError):
                    planner.run(plan)

    def test_zero_arity_relation_keeps_row_count(self):
        """Regression: a zero-column batch still carries its row count --
        the engines must agree on scans of zero-arity relations."""
        empty_schema = Schema([])
        relation = Relation(empty_schema, [(), (), ()])
        _assert_engines_agree(algebra.RelationScan(relation))
        batch = ColumnBatch((), 3)
        assert list(batch.rows()) == [(), (), ()]

    def test_large_input_spans_batches(self):
        rng = random.Random(5)
        big = _random_relation(rng, BATCH_SIZE * 2 + 17)
        plan = algebra.Select(
            algebra.RelationScan(big),
            Comparison(">", ColumnRef("v"), Literal(20)),
        )
        _assert_engines_agree(plan)
