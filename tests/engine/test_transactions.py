"""Tests for transactions, locks, and the write-ahead log.

The paper's Section 2.3 claim under test: because U-relations are plain
tables, updates / concurrency control / recovery work with standard
machinery.
"""

import threading

import pytest

from repro.engine.catalog import KIND_URELATION, Catalog
from repro.engine.schema import Schema
from repro.engine.transactions import LockManager, Transaction, WriteAheadLog
from repro.engine.types import FLOAT, INTEGER, TEXT
from repro.errors import TransactionError


@pytest.fixture
def catalog():
    c = Catalog()
    c.create_table("t", Schema.of(("x", INTEGER), ("s", TEXT)))
    c.table("t").insert((1, "a"))
    c.table("t").insert((2, "b"))
    return c


class TestTransactionRollback:
    def test_rollback_insert(self, catalog):
        txn = Transaction(catalog)
        txn.insert("t", (3, "c"))
        assert len(catalog.table("t")) == 3
        txn.rollback()
        assert len(catalog.table("t")) == 2

    def test_rollback_delete_restores_row_and_tid(self, catalog):
        txn = Transaction(catalog)
        txn.delete("t", 1)
        txn.rollback()
        assert catalog.table("t").get(1) == (1, "a")

    def test_rollback_update(self, catalog):
        txn = Transaction(catalog)
        txn.update("t", 1, (99, "z"))
        txn.rollback()
        assert catalog.table("t").get(1) == (1, "a")

    def test_rollback_create_table(self, catalog):
        txn = Transaction(catalog)
        txn.create_table("fresh", Schema.of(("y", INTEGER)))
        txn.rollback()
        assert not catalog.has_table("fresh")

    def test_rollback_drop_table(self, catalog):
        txn = Transaction(catalog)
        txn.drop_table("t")
        assert not catalog.has_table("t")
        txn.rollback()
        assert catalog.has_table("t")
        assert len(catalog.table("t")) == 2

    def test_rollback_mixed_operations_in_reverse(self, catalog):
        txn = Transaction(catalog)
        tid = txn.insert("t", (3, "c"))
        txn.update("t", tid, (4, "d"))
        txn.delete("t", 1)
        txn.rollback()
        table = catalog.table("t")
        assert len(table) == 2
        assert table.get(1) == (1, "a")

    def test_delete_where(self, catalog):
        txn = Transaction(catalog)
        count = txn.delete_where("t", lambda row: row[0] > 1)
        assert count == 1
        txn.rollback()
        assert len(catalog.table("t")) == 2


class TestTransactionStates:
    def test_commit_then_mutation_rejected(self, catalog):
        txn = Transaction(catalog)
        txn.commit()
        with pytest.raises(TransactionError):
            txn.insert("t", (5, "e"))

    def test_double_commit_rejected(self, catalog):
        txn = Transaction(catalog)
        txn.commit()
        with pytest.raises(TransactionError):
            txn.commit()

    def test_commit_keeps_changes(self, catalog):
        txn = Transaction(catalog)
        txn.insert("t", (3, "c"))
        txn.commit()
        assert len(catalog.table("t")) == 3


class TestWriteAheadLog:
    def test_replay_rebuilds_catalog(self, catalog):
        wal = WriteAheadLog()
        txn = Transaction(catalog, wal)
        txn.create_table("u", Schema.of(("a", INTEGER), ("p", FLOAT)))
        txn.insert("u", (1, 0.5))
        txn.insert("u", (2, 0.7))
        txn.commit()

        recovered = wal.replay()
        assert recovered.has_table("u")
        assert len(recovered.table("u")) == 2

    def test_replay_preserves_urelation_kind(self, catalog):
        wal = WriteAheadLog()
        txn = Transaction(catalog, wal)
        txn.create_table(
            "uu",
            Schema.of(("a", INTEGER), ("_v0", INTEGER), ("_d0", INTEGER), ("_p0", FLOAT)),
            kind=KIND_URELATION,
            properties={"payload_arity": 1, "cond_arity": 1},
        )
        txn.insert("uu", (1, 1, 0, 0.5))
        txn.commit()
        recovered = wal.replay()
        entry = recovered.entry("uu")
        assert entry.is_urelation
        assert entry.properties["cond_arity"] == 1

    def test_rolled_back_transaction_not_logged(self, catalog):
        wal = WriteAheadLog()
        txn = Transaction(catalog, wal)
        txn.create_table("gone", Schema.of(("a", INTEGER)))
        txn.rollback()
        assert len(wal) == 0
        assert not wal.replay().has_table("gone")

    def test_replay_applies_updates_and_deletes(self, catalog):
        wal = WriteAheadLog()
        txn = Transaction(catalog, wal)
        txn.create_table("v", Schema.of(("a", INTEGER)))
        tid = txn.insert("v", (1,))
        txn.update("v", tid, (2,))
        other = txn.insert("v", (3,))
        txn.delete("v", other)
        txn.commit()
        recovered = wal.replay()
        assert list(recovered.table("v").rows()) == [(2,)]


class TestLockManager:
    def test_shared_locks_coexist(self):
        locks = LockManager()
        locks.acquire_shared("t")
        locks.acquire_shared("t")
        locks.release_shared("t")
        locks.release_shared("t")

    def test_exclusive_blocks_shared(self):
        locks = LockManager()
        locks.acquire_exclusive("t")
        grabbed = []

        def reader():
            locks.acquire_shared("t", timeout=5)
            grabbed.append(True)
            locks.release_shared("t")

        thread = threading.Thread(target=reader)
        thread.start()
        thread.join(timeout=0.2)
        assert not grabbed  # still blocked
        locks.release_exclusive("t")
        thread.join(timeout=5)
        assert grabbed

    def test_shared_blocks_exclusive_until_released(self):
        locks = LockManager()
        locks.acquire_shared("t")
        acquired = []

        def writer():
            locks.acquire_exclusive("t", timeout=5)
            acquired.append(True)
            locks.release_exclusive("t")

        thread = threading.Thread(target=writer)
        thread.start()
        thread.join(timeout=0.2)
        assert not acquired
        locks.release_shared("t")
        thread.join(timeout=5)
        assert acquired

    def test_locks_are_per_table(self):
        locks = LockManager()
        locks.acquire_exclusive("a")
        locks.acquire_exclusive("b")  # no deadlock: different tables
        locks.release_exclusive("a")
        locks.release_exclusive("b")

    def test_release_unheld_raises(self):
        locks = LockManager()
        with pytest.raises(TransactionError):
            locks.release_shared("t")
        with pytest.raises(TransactionError):
            locks.release_exclusive("t")

    def test_timeout(self):
        locks = LockManager()
        locks.acquire_exclusive("t")
        result = []

        def waiter():
            try:
                locks.acquire_shared("t", timeout=0.05)
                result.append("acquired")
            except TransactionError:
                result.append("timeout")

        thread = threading.Thread(target=waiter)
        thread.start()
        thread.join(timeout=5)
        assert result == ["timeout"]
        locks.release_exclusive("t")

    def test_concurrent_counter_with_exclusive_lock(self, catalog):
        """Many writers incrementing a row stay serializable under the lock."""
        locks = LockManager()
        table = catalog.table("t")

        def bump():
            for _ in range(50):
                locks.acquire_exclusive("t", timeout=10)
                try:
                    x, s = table.get(1)
                    table.update(1, (x + 1, s))
                finally:
                    locks.release_exclusive("t")

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert table.get(1)[0] == 1 + 200
