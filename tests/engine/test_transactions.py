"""Tests for transactions, locks, and the write-ahead log.

The paper's Section 2.3 claim under test: because U-relations are plain
tables, updates / concurrency control / recovery work with standard
machinery.
"""

import threading

import pytest

from repro.engine.catalog import KIND_URELATION, Catalog
from repro.engine.schema import Schema
from repro.engine.transactions import LockManager, Transaction, WriteAheadLog
from repro.engine.types import FLOAT, INTEGER, TEXT
from repro.errors import TransactionError


@pytest.fixture
def catalog():
    c = Catalog()
    c.create_table("t", Schema.of(("x", INTEGER), ("s", TEXT)))
    c.table("t").insert((1, "a"))
    c.table("t").insert((2, "b"))
    return c


class TestTransactionRollback:
    def test_rollback_insert(self, catalog):
        txn = Transaction(catalog)
        txn.insert("t", (3, "c"))
        assert len(catalog.table("t")) == 3
        txn.rollback()
        assert len(catalog.table("t")) == 2

    def test_rollback_delete_restores_row_and_tid(self, catalog):
        txn = Transaction(catalog)
        txn.delete("t", 1)
        txn.rollback()
        assert catalog.table("t").get(1) == (1, "a")

    def test_rollback_update(self, catalog):
        txn = Transaction(catalog)
        txn.update("t", 1, (99, "z"))
        txn.rollback()
        assert catalog.table("t").get(1) == (1, "a")

    def test_rollback_create_table(self, catalog):
        txn = Transaction(catalog)
        txn.create_table("fresh", Schema.of(("y", INTEGER)))
        txn.rollback()
        assert not catalog.has_table("fresh")

    def test_rollback_drop_table(self, catalog):
        txn = Transaction(catalog)
        txn.drop_table("t")
        assert not catalog.has_table("t")
        txn.rollback()
        assert catalog.has_table("t")
        assert len(catalog.table("t")) == 2

    def test_rollback_mixed_operations_in_reverse(self, catalog):
        txn = Transaction(catalog)
        tid = txn.insert("t", (3, "c"))
        txn.update("t", tid, (4, "d"))
        txn.delete("t", 1)
        txn.rollback()
        table = catalog.table("t")
        assert len(table) == 2
        assert table.get(1) == (1, "a")

    def test_delete_where(self, catalog):
        txn = Transaction(catalog)
        count = txn.delete_where("t", lambda row: row[0] > 1)
        assert count == 1
        txn.rollback()
        assert len(catalog.table("t")) == 2


class TestTransactionStates:
    def test_commit_then_mutation_rejected(self, catalog):
        txn = Transaction(catalog)
        txn.commit()
        with pytest.raises(TransactionError):
            txn.insert("t", (5, "e"))

    def test_double_commit_rejected(self, catalog):
        txn = Transaction(catalog)
        txn.commit()
        with pytest.raises(TransactionError):
            txn.commit()

    def test_commit_keeps_changes(self, catalog):
        txn = Transaction(catalog)
        txn.insert("t", (3, "c"))
        txn.commit()
        assert len(catalog.table("t")) == 3


class TestWriteAheadLog:
    def test_replay_rebuilds_catalog(self, catalog):
        wal = WriteAheadLog()
        txn = Transaction(catalog, wal)
        txn.create_table("u", Schema.of(("a", INTEGER), ("p", FLOAT)))
        txn.insert("u", (1, 0.5))
        txn.insert("u", (2, 0.7))
        txn.commit()

        recovered = wal.replay()
        assert recovered.has_table("u")
        assert len(recovered.table("u")) == 2

    def test_replay_preserves_urelation_kind(self, catalog):
        wal = WriteAheadLog()
        txn = Transaction(catalog, wal)
        txn.create_table(
            "uu",
            Schema.of(("a", INTEGER), ("_v0", INTEGER), ("_d0", INTEGER), ("_p0", FLOAT)),
            kind=KIND_URELATION,
            properties={"payload_arity": 1, "cond_arity": 1},
        )
        txn.insert("uu", (1, 1, 0, 0.5))
        txn.commit()
        recovered = wal.replay()
        entry = recovered.entry("uu")
        assert entry.is_urelation
        assert entry.properties["cond_arity"] == 1

    def test_rolled_back_transaction_not_logged(self, catalog):
        wal = WriteAheadLog()
        txn = Transaction(catalog, wal)
        txn.create_table("gone", Schema.of(("a", INTEGER)))
        txn.rollback()
        assert len(wal) == 0
        assert not wal.replay().has_table("gone")

    def test_replay_applies_updates_and_deletes(self, catalog):
        wal = WriteAheadLog()
        txn = Transaction(catalog, wal)
        txn.create_table("v", Schema.of(("a", INTEGER)))
        tid = txn.insert("v", (1,))
        txn.update("v", tid, (2,))
        other = txn.insert("v", (3,))
        txn.delete("v", other)
        txn.commit()
        recovered = wal.replay()
        assert list(recovered.table("v").rows()) == [(2,)]


class TestWalReplayFidelity:
    """Regression tests: replay used to lose probabilistic state (variable
    registrations were never logged) and to match deleted/updated rows by
    value, which diverges on duplicate rows."""

    def test_replay_restores_variable_registry(self, catalog):
        from repro.core.variables import VariableRegistry

        wal = WriteAheadLog()
        registry = VariableRegistry()
        registry.on_register = wal.log_variable
        var = registry.fresh({0: 0.2, 1: 0.8}, name="choice")

        recovered_registry = VariableRegistry()
        wal.replay(registry=recovered_registry)
        assert recovered_registry.distribution(var) == {0: 0.2, 1: 0.8}
        assert recovered_registry.name(var) == "choice"
        # next-id advances past restored variables: no id collisions.
        assert recovered_registry.fresh({0: 1.0}) == var + 1

    def test_replay_deletes_by_tid_on_duplicate_rows(self, catalog):
        wal = WriteAheadLog()
        txn = Transaction(catalog, wal)
        txn.create_table("dup", Schema.of(("x", INTEGER)))
        first = txn.insert("dup", (7,))
        second = txn.insert("dup", (7,))
        third = txn.insert("dup", (7,))
        txn.delete("dup", second)
        txn.update("dup", third, (8,))
        txn.commit()

        recovered = wal.replay()
        assert list(recovered.table("dup").items()) == [
            (first, (7,)), (third, (8,)),
        ]

    def test_replay_preserves_tid_counter_across_delete(self, catalog):
        wal = WriteAheadLog()
        txn = Transaction(catalog, wal)
        txn.create_table("v", Schema.of(("x", INTEGER)))
        tid = txn.insert("v", (1,))
        txn.delete("v", tid)
        txn.commit()
        recovered = wal.replay()
        # A post-recovery insert must not reuse the deleted tid.
        assert recovered.table("v").insert((2,)) == tid + 1

    def test_replay_truncate(self, catalog):
        wal = WriteAheadLog()
        txn = Transaction(catalog, wal)
        txn.create_table("v", Schema.of(("x", INTEGER)))
        txn.insert("v", (1,))
        txn.truncate("v")
        txn.insert("v", (2,))
        txn.commit()
        recovered = wal.replay()
        assert list(recovered.table("v").rows()) == [(2,)]


class TestBulkTransactionMethods:
    def test_insert_many_rollback(self, catalog):
        txn = Transaction(catalog)
        txn.insert_many("t", [(3, "c"), (4, "d")])
        assert len(catalog.table("t")) == 4
        txn.rollback()
        assert len(catalog.table("t")) == 2

    def test_update_where_rollback(self, catalog):
        txn = Transaction(catalog)
        txn.update_where("t", lambda row: row[0] == 1, lambda row: (99, row[1]))
        assert catalog.table("t").get(1) == (99, "a")
        txn.rollback()
        assert catalog.table("t").get(1) == (1, "a")

    def test_truncate_rollback(self, catalog):
        txn = Transaction(catalog)
        txn.truncate("t")
        assert len(catalog.table("t")) == 0
        txn.rollback()
        assert sorted(catalog.table("t").rows()) == [(1, "a"), (2, "b")]


class TestLockManager:
    def test_shared_locks_coexist(self):
        locks = LockManager()
        locks.acquire_shared("t")
        locks.acquire_shared("t")
        locks.release_shared("t")
        locks.release_shared("t")

    def test_exclusive_blocks_shared(self):
        locks = LockManager()
        locks.acquire_exclusive("t")
        grabbed = []

        def reader():
            locks.acquire_shared("t", timeout=5)
            grabbed.append(True)
            locks.release_shared("t")

        thread = threading.Thread(target=reader)
        thread.start()
        thread.join(timeout=0.2)
        assert not grabbed  # still blocked
        locks.release_exclusive("t")
        thread.join(timeout=5)
        assert grabbed

    def test_shared_blocks_exclusive_until_released(self):
        locks = LockManager()
        locks.acquire_shared("t")
        acquired = []

        def writer():
            locks.acquire_exclusive("t", timeout=5)
            acquired.append(True)
            locks.release_exclusive("t")

        thread = threading.Thread(target=writer)
        thread.start()
        thread.join(timeout=0.2)
        assert not acquired
        locks.release_shared("t")
        thread.join(timeout=5)
        assert acquired

    def test_locks_are_per_table(self):
        locks = LockManager()
        locks.acquire_exclusive("a")
        locks.acquire_exclusive("b")  # no deadlock: different tables
        locks.release_exclusive("a")
        locks.release_exclusive("b")

    def test_release_unheld_raises(self):
        locks = LockManager()
        with pytest.raises(TransactionError):
            locks.release_shared("t")
        with pytest.raises(TransactionError):
            locks.release_exclusive("t")

    def test_timeout(self):
        locks = LockManager()
        locks.acquire_exclusive("t")
        result = []

        def waiter():
            try:
                locks.acquire_shared("t", timeout=0.05)
                result.append("acquired")
            except TransactionError:
                result.append("timeout")

        thread = threading.Thread(target=waiter)
        thread.start()
        thread.join(timeout=5)
        assert result == ["timeout"]
        locks.release_exclusive("t")

    def test_shared_to_exclusive_upgrade(self):
        """Regression: a thread holding a shared lock used to deadlock
        forever in acquire_exclusive, waiting on its own reader count."""
        locks = LockManager()
        locks.acquire_shared("t")
        locks.acquire_exclusive("t", timeout=1)  # must not block on itself
        locks.release_exclusive("t")
        locks.release_shared("t")
        # The table is fully free again afterwards.
        locks.acquire_exclusive("t", timeout=1)
        locks.release_exclusive("t")

    def test_upgrade_waits_for_other_readers(self):
        locks = LockManager()
        upgraded = []
        reader_holding = threading.Event()
        release_reader = threading.Event()

        def other_reader():
            locks.acquire_shared("t", timeout=5)
            reader_holding.set()
            release_reader.wait(timeout=5)
            locks.release_shared("t")

        def upgrader():
            locks.acquire_shared("t", timeout=5)
            locks.acquire_exclusive("t", timeout=5)
            upgraded.append(True)
            locks.release_exclusive("t")
            locks.release_shared("t")

        reader = threading.Thread(target=other_reader)
        reader.start()
        assert reader_holding.wait(timeout=5)
        thread = threading.Thread(target=upgrader)
        thread.start()
        thread.join(timeout=0.2)
        assert not upgraded  # still waiting on the other reader's hold
        release_reader.set()
        reader.join(timeout=5)
        thread.join(timeout=5)
        assert upgraded

    def test_competing_upgrades_fail_fast(self):
        """Two shared holders both upgrading would deadlock on each other;
        the second request must raise instead of hanging."""
        locks = LockManager()
        locks.acquire_shared("t")  # main thread holds shared
        started = threading.Event()
        outcome = []

        def first_upgrader():
            locks.acquire_shared("t", timeout=5)
            started.set()
            try:
                locks.acquire_exclusive("t", timeout=5)
                outcome.append("upgraded")
                locks.release_exclusive("t")
            except TransactionError:
                outcome.append("error")
            locks.release_shared("t")

        thread = threading.Thread(target=first_upgrader)
        thread.start()
        assert started.wait(timeout=5)
        # Main also holds shared and now competes for the upgrade.
        with pytest.raises(TransactionError, match="upgrade deadlock"):
            locks.acquire_exclusive("t", timeout=5)
        # Main backs off: releasing its shared hold unblocks the winner.
        locks.release_shared("t")
        thread.join(timeout=5)
        assert outcome == ["upgraded"]

    def test_new_readers_queue_behind_pending_upgrade(self):
        """A pending upgrade must not be starved by a stream of new
        readers: late shared requests queue behind it."""
        import time

        locks = LockManager()
        locks.acquire_shared("t")  # main's hold keeps the upgrade pending
        worker_ready = threading.Event()
        release_worker = threading.Event()

        def worker():
            locks.acquire_shared("t", timeout=5)
            worker_ready.set()
            try:
                locks.acquire_exclusive("t", timeout=5)  # waits on main
                release_worker.wait(timeout=5)
                locks.release_exclusive("t")
            finally:
                locks.release_shared("t")

        blocked = []

        def late_reader():
            try:
                locks.acquire_shared("t", timeout=0.05)
                blocked.append("acquired")
                locks.release_shared("t")
            except TransactionError:
                blocked.append("timeout")

        thread = threading.Thread(target=worker)
        thread.start()
        assert worker_ready.wait(timeout=5)
        time.sleep(0.05)  # let the worker enter its upgrade wait
        reader = threading.Thread(target=late_reader)
        reader.start()
        reader.join(timeout=5)
        assert blocked == ["timeout"]  # queued behind the upgrader
        locks.release_shared("t")  # main backs off; worker upgrades
        release_worker.set()
        thread.join(timeout=5)

    def test_reader_unblocks_after_upgrade_timeout(self):
        """When a pending upgrade times out, readers queued behind it must
        be woken -- clearing the marker without notify_all left them
        blocked even though shared access was admissible again."""
        import time

        locks = LockManager()
        locks.acquire_shared("t")  # main's hold makes the upgrade pend
        events = []
        upgrader_holding = threading.Event()
        let_upgrader_finish = threading.Event()

        def upgrader():
            locks.acquire_shared("t", timeout=5)
            upgrader_holding.set()
            try:
                locks.acquire_exclusive("t", timeout=0.2)
            except TransactionError:
                events.append("upgrade-timeout")
            # Keep the shared hold: the queued reader must be woken by the
            # timeout cleanup itself, not by this thread's release.
            let_upgrader_finish.wait(timeout=5)
            locks.release_shared("t")

        def late_reader():
            locks.acquire_shared("t", timeout=5)
            events.append("reader-acquired")
            locks.release_shared("t")

        upgrade_thread = threading.Thread(target=upgrader)
        upgrade_thread.start()
        assert upgrader_holding.wait(timeout=5)
        time.sleep(0.05)  # let the upgrader enter its wait
        reader_thread = threading.Thread(target=late_reader)
        reader_thread.start()
        reader_thread.join(timeout=5)
        assert events == ["upgrade-timeout", "reader-acquired"]
        let_upgrader_finish.set()
        upgrade_thread.join(timeout=5)
        locks.release_shared("t")

    def test_concurrent_counter_with_exclusive_lock(self, catalog):
        """Many writers incrementing a row stay serializable under the lock."""
        locks = LockManager()
        table = catalog.table("t")

        def bump():
            for _ in range(50):
                locks.acquire_exclusive("t", timeout=10)
                try:
                    x, s = table.get(1)
                    table.update(1, (x + 1, s))
                finally:
                    locks.release_exclusive("t")

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert table.get(1)[0] == 1 + 200
