"""Tests for in-memory relations (multiset semantics, I/O, utilities)."""

import pytest

from repro.engine.relation import Relation, single_row_relation
from repro.engine.schema import Column, Schema
from repro.engine.types import FLOAT, INTEGER, NULL, TEXT
from repro.errors import SchemaError


@pytest.fixture
def people():
    schema = Schema.of(("name", TEXT), ("age", INTEGER))
    return Relation(schema, [("ann", 30), ("bob", 25), ("ann", 30), ("cy", NULL)])


class TestConstruction:
    def test_arity_checked(self):
        schema = Schema.of(("a", INTEGER))
        with pytest.raises(SchemaError):
            Relation(schema, [(1, 2)])

    def test_multiset_keeps_duplicates(self, people):
        assert len(people) == 4

    def test_from_to_dicts_roundtrip(self):
        schema = Schema.of(("a", INTEGER), ("b", TEXT))
        dicts = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        relation = Relation.from_dicts(schema, dicts)
        assert relation.to_dicts() == dicts

    def test_from_dicts_missing_key_is_null(self):
        schema = Schema.of(("a", INTEGER), ("b", TEXT))
        relation = Relation.from_dicts(schema, [{"a": 1}])
        assert relation.rows[0] == (1, NULL)


class TestEquality:
    def test_order_insensitive(self):
        schema = Schema.of(("a", INTEGER))
        assert Relation(schema, [(1,), (2,)]) == Relation(schema, [(2,), (1,)])

    def test_multiplicity_sensitive(self):
        schema = Schema.of(("a", INTEGER))
        assert Relation(schema, [(1,), (1,)]) != Relation(schema, [(1,)])

    def test_ignores_qualifiers(self):
        a = Relation(Schema([Column("x", INTEGER, "t")]), [(1,)])
        b = Relation(Schema([Column("x", INTEGER)]), [(1,)])
        assert a == b

    def test_null_rows_compare(self):
        schema = Schema.of(("a", INTEGER))
        assert Relation(schema, [(NULL,)]) == Relation(schema, [(NULL,)])


class TestOperations:
    def test_project(self, people):
        names = people.project(["name"])
        assert names.schema.names == ["name"]
        assert len(names) == 4

    def test_filter(self, people):
        young = people.filter(lambda row: row[1] is not NULL and row[1] < 28)
        assert young.rows == [("bob", 25)]

    def test_sorted_by(self, people):
        ordered = people.sorted_by(["age"])
        ages = [row[1] for row in ordered]
        assert ages[:3] == [25, 30, 30]
        assert ages[3] is NULL  # NULLs last

    def test_sorted_descending(self, people):
        ordered = people.sorted_by(["name"], descending=True)
        assert ordered.rows[0][0] == "cy"

    def test_distinct(self, people):
        assert len(people.distinct()) == 3

    def test_column(self, people):
        assert people.column("name") == ["ann", "bob", "ann", "cy"]

    def test_single_value(self):
        assert single_row_relation([("n", 7)]).single_value() == 7

    def test_single_value_rejects_multi(self, people):
        with pytest.raises(SchemaError):
            people.single_value()


class TestPresentation:
    def test_pretty_contains_header_and_rows(self, people):
        text = people.pretty()
        assert "name" in text and "ann" in text and "(4 rows)" in text
        assert "NULL" in text

    def test_pretty_max_rows(self, people):
        text = people.pretty(max_rows=2)
        assert "2 more rows" in text

    def test_csv_roundtrip(self, people):
        text = people.to_csv()
        back = Relation.from_csv(people.schema, text)
        assert back == people

    def test_csv_preserves_null(self):
        schema = Schema.of(("a", INTEGER), ("b", FLOAT))
        relation = Relation(schema, [(1, NULL), (NULL, 2.5)])
        assert Relation.from_csv(schema, relation.to_csv()) == relation
