"""Regressions for the rollback variable-leak.

Rolling back ``CREATE TABLE u AS REPAIR KEY a IN t WEIGHT BY p`` dropped
the table but left its variables registered in the VariableRegistry --
and in durable mode the phantom variables survived close/reopen (their
``register_variable`` units were flushed with the *next* commit even
though the creating transaction rolled back).  Registration is now
journaled in the registering transaction: rollback unregisters, and the
records reach the WAL only inside the transaction's committed unit.
"""

import pytest

from repro.core.variables import VariableRegistry
from repro.db import MayBMS
from repro.errors import TableExistsError, VariableError


@pytest.fixture
def db():
    db = MayBMS(seed=1)
    db.execute("create table t (k integer, a integer, p float)")
    db.execute(
        "insert into t values (1, 1, 0.5), (1, 2, 0.5), (2, 1, 0.3), (2, 2, 0.7)"
    )
    return db


class TestUnregister:
    def test_unregister_removes_and_reclaims_last_id(self):
        registry = VariableRegistry()
        first = registry.fresh([0.5, 0.5])
        second = registry.fresh([0.2, 0.8])
        registry.unregister(second)
        registry.unregister(first)
        assert len(registry) == 0
        # Ids were reclaimed in reverse order: the next variable reuses them.
        assert registry.fresh([1.0]) == first

    def test_unregister_middle_keeps_counter(self):
        registry = VariableRegistry()
        first = registry.fresh([0.5, 0.5])
        second = registry.fresh([0.2, 0.8])
        registry.unregister(first)
        assert second in registry
        assert registry.fresh([1.0]) > second

    def test_unregister_unknown_or_top_raises(self):
        registry = VariableRegistry()
        with pytest.raises(VariableError):
            registry.unregister(0)
        with pytest.raises(VariableError):
            registry.unregister(123)


class TestRollbackUnregisters:
    def test_rollback_of_create_table_as_repair_key(self, db):
        assert len(db.registry) == 0
        db.begin()
        db.execute("create table u as repair key k in t weight by p")
        assert len(db.registry) == 2  # one variable per key group
        db.rollback()
        assert "u" not in [name.lower() for name in db.tables()]
        assert len(db.registry) == 0, "rolled-back variables must unregister"
        assert not db.wal.has_variable_records()

    def test_rollback_of_pick_tuples(self, db):
        db.begin()
        db.execute("create table v as pick tuples from t with probability p")
        assert len(db.registry) > 0
        db.rollback()
        assert len(db.registry) == 0
        assert not db.wal.has_variable_records()

    def test_commit_keeps_variables(self, db):
        db.begin()
        db.execute("create table u as repair key k in t weight by p")
        db.commit()
        assert len(db.registry) == 2
        # The registrations are inside the committed unit, not standalone.
        records = db.wal.records()
        assert ("register_variable" in {r[0] for r in records})
        conf = db.query("select a, conf() as c from u where k = 1 group by a")
        assert sorted(round(c, 9) for _, c in conf.rows) == [0.5, 0.5]

    def test_failed_autocommit_statement_unregisters(self, db):
        db.execute("create table u as repair key k in t weight by p")
        variables_before = len(db.registry)
        # Second CREATE of the same name fails after evaluating the query
        # (and registering fresh variables); they must be rolled back too.
        with pytest.raises(TableExistsError):
            db.execute("create table u as repair key k in t weight by p")
        assert len(db.registry) == variables_before

    def test_statement_rollback_inside_transaction_is_partial(self, db):
        db.begin()
        db.execute("create table u as repair key k in t weight by p")
        with pytest.raises(TableExistsError):
            db.execute("create table u as repair key k in t weight by p")
        # The failed statement's variables are gone, the first one's stay.
        assert len(db.registry) == 2
        db.commit()
        assert len(db.registry) == 2

    def test_select_repair_key_outside_transaction_keeps_variables(self, db):
        # A plain SELECT registers variables that back the returned
        # URelation; without a transaction there is nothing to undo.
        result = db.uncertain_query("select * from repair key k in t weight by p r")
        assert len(db.registry) == 2
        assert db.wal.has_variable_records()
        assert len(result.relation) == 4


class TestDurableRollback:
    def test_phantom_variables_do_not_survive_reopen(self, tmp_path, db):
        path = str(tmp_path / "store")
        with MayBMS(path=path) as durable:
            durable.execute("create table t (k integer, a integer, p float)")
            durable.execute(
                "insert into t values (1, 1, 0.5), (1, 2, 0.5)"
            )
            durable.begin()
            durable.execute("create table u as repair key k in t weight by p")
            durable.rollback()
            assert len(durable.registry) == 0
        with MayBMS(path=path) as reopened:
            assert reopened.tables() == ["t"]
            assert len(reopened.registry) == 0, (
                "rolled-back variable registrations must not be recovered"
            )

    def test_committed_variables_survive_reopen_bit_identically(self, tmp_path):
        path = str(tmp_path / "store")
        with MayBMS(path=path) as durable:
            durable.execute("create table t (k integer, a integer, p float)")
            durable.execute(
                "insert into t values (1, 1, 0.25), (1, 2, 0.75), (2, 5, 1.0)"
            )
            durable.begin()
            durable.execute("create table u as repair key k in t weight by p")
            durable.commit()
            before = sorted(
                durable.query(
                    "select a, conf() as c from u group by a"
                ).rows
            )
        with MayBMS(path=path) as reopened:
            after = sorted(
                reopened.query(
                    "select a, conf() as c from u group by a"
                ).rows
            )
        assert after == before

    def test_rollback_then_recreate_is_consistent_after_recovery(self, tmp_path):
        path = str(tmp_path / "store")
        with MayBMS(path=path) as durable:
            durable.execute("create table t (k integer, a integer, p float)")
            durable.execute("insert into t values (1, 1, 0.5), (1, 2, 0.5)")
            durable.begin()
            durable.execute("create table u as repair key k in t weight by p")
            durable.rollback()
            # Recreate after rollback: variable ids were reclaimed, so the
            # committed encoding references exactly the recovered registry.
            durable.execute("create table u as repair key k in t weight by p")
            before = sorted(
                durable.query("select a, conf() as c from u group by a").rows
            )
        with MayBMS(path=path) as reopened:
            after = sorted(
                reopened.query("select a, conf() as c from u group by a").rows
            )
            assert after == before
            assert len(reopened.registry) == 1
