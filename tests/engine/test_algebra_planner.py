"""Tests for logical plans and the logical-to-physical planner."""

import pytest

from repro.engine import algebra, planner
from repro.engine.algebra import (
    AggregateSpec,
    Alias,
    Distinct,
    GroupBy,
    Join,
    Limit,
    Project,
    RelationScan,
    Select,
    Sort,
    Union,
    Values,
)
from repro.engine.expressions import (
    Arithmetic,
    BoolOp,
    ColumnRef,
    Comparison,
    Literal,
)
from repro.engine.relation import Relation
from repro.engine.schema import Schema
from repro.engine.types import FLOAT, INTEGER, NULL, TEXT
from repro.errors import PlanError, TypeMismatchError


@pytest.fixture
def orders():
    schema = Schema.of(("id", INTEGER), ("cust", TEXT), ("total", FLOAT))
    return Relation(
        schema,
        [
            (1, "ann", 10.0),
            (2, "bob", 20.0),
            (3, "ann", 30.0),
            (4, "cy", 40.0),
            (5, "ann", NULL),
        ],
    )


@pytest.fixture
def customers():
    schema = Schema.of(("name", TEXT), ("city", TEXT))
    return Relation(
        schema, [("ann", "york"), ("bob", "leeds"), ("dee", "york")]
    )


class TestScanSelectProject:
    def test_scan(self, orders):
        result = planner.run(RelationScan(orders))
        assert result == orders

    def test_scan_with_alias_qualifies(self, orders):
        plan = RelationScan(orders, "o")
        assert plan.schema().columns[0].qualifier == "o"

    def test_select(self, orders):
        plan = Select(
            RelationScan(orders), Comparison(">", ColumnRef("total"), Literal(15.0))
        )
        result = planner.run(plan)
        assert sorted(row[0] for row in result) == [2, 3, 4]

    def test_select_null_predicate_filters(self, orders):
        # total > 15 is NULL for the NULL row -- excluded, not kept.
        plan = Select(
            RelationScan(orders), Comparison(">", ColumnRef("total"), Literal(0.0))
        )
        assert len(planner.run(plan)) == 4

    def test_select_type_check(self, orders):
        with pytest.raises(TypeMismatchError):
            Select(RelationScan(orders), ColumnRef("total")).schema()

    def test_project_expression(self, orders):
        plan = Project(
            RelationScan(orders),
            [(ColumnRef("id"), "id"), (Arithmetic("*", ColumnRef("total"), Literal(2.0)), "double")],
        )
        result = planner.run(plan)
        assert result.schema.names == ["id", "double"]
        assert (1, 20.0) in result.rows

    def test_project_keeps_duplicates(self, orders):
        plan = Project(RelationScan(orders), [(ColumnRef("cust"), "cust")])
        assert len(planner.run(plan)) == 5

    def test_empty_projection_rejected(self, orders):
        with pytest.raises(PlanError):
            Project(RelationScan(orders), [])


class TestJoins:
    def test_equi_join(self, orders, customers):
        plan = Join(
            RelationScan(orders, "o"),
            RelationScan(customers, "c"),
            Comparison("=", ColumnRef("cust", "o"), ColumnRef("name", "c")),
        )
        result = planner.run(plan)
        assert len(result) == 4  # ann x3, bob x1
        assert len(result.schema) == 5

    def test_cross_join(self, orders, customers):
        plan = Join(RelationScan(orders, "o"), RelationScan(customers, "c"))
        assert len(planner.run(plan)) == 15

    def test_join_with_residual_predicate(self, orders, customers):
        predicate = BoolOp(
            "AND",
            [
                Comparison("=", ColumnRef("cust", "o"), ColumnRef("name", "c")),
                Comparison(">", ColumnRef("total", "o"), Literal(15.0)),
            ],
        )
        plan = Join(RelationScan(orders, "o"), RelationScan(customers, "c"), predicate)
        result = planner.run(plan)
        assert sorted(row[0] for row in result) == [2, 3]

    def test_pushdown_through_select_over_join(self, orders, customers):
        join = Join(RelationScan(orders, "o"), RelationScan(customers, "c"))
        predicate = BoolOp(
            "AND",
            [
                Comparison("=", ColumnRef("cust", "o"), ColumnRef("name", "c")),
                Comparison("=", ColumnRef("city", "c"), Literal("york")),
            ],
        )
        result = planner.run(Select(join, predicate))
        assert sorted(row[0] for row in result) == [1, 3, 5]

    def test_join_null_keys_never_match(self):
        schema = Schema.of(("k", INTEGER))
        left = Relation(schema, [(1,), (NULL,)])
        right = Relation(schema, [(1,), (NULL,)])
        plan = Join(
            RelationScan(left, "l"),
            RelationScan(right, "r"),
            Comparison("=", ColumnRef("k", "l"), ColumnRef("k", "r")),
        )
        assert len(planner.run(plan)) == 1

    def test_nested_loop_for_inequality(self, orders, customers):
        plan = Join(
            RelationScan(orders, "o"),
            RelationScan(customers, "c"),
            Comparison("<", ColumnRef("cust", "o"), ColumnRef("name", "c")),
        )
        result = planner.run(plan)
        # hand-count: cust < name pairs
        expected = sum(
            1 for o in orders for c in customers if o[1] < c[0]
        )
        assert len(result) == expected


class TestSetOperations:
    def test_union_all(self, orders):
        plan = Union(RelationScan(orders), RelationScan(orders))
        assert len(planner.run(plan)) == 10

    def test_union_widens_types(self):
        ints = Relation(Schema.of(("x", INTEGER)), [(1,)])
        floats = Relation(Schema.of(("x", FLOAT)), [(2.5,)])
        plan = Union(RelationScan(ints), RelationScan(floats))
        assert plan.schema().types == [FLOAT]
        assert len(planner.run(plan)) == 2

    def test_union_incompatible_rejected(self, orders, customers):
        with pytest.raises(PlanError):
            Union(RelationScan(orders), RelationScan(customers)).schema()

    def test_distinct(self, orders):
        plan = Distinct(Project(RelationScan(orders), [(ColumnRef("cust"), "cust")]))
        assert len(planner.run(plan)) == 3

    def test_distinct_groups_nulls(self):
        rel = Relation(Schema.of(("x", INTEGER)), [(NULL,), (NULL,), (1,)])
        assert len(planner.run(Distinct(RelationScan(rel)))) == 2


class TestGroupBy:
    def test_count_sum_avg(self, orders):
        plan = GroupBy(
            RelationScan(orders),
            [(ColumnRef("cust"), "cust")],
            [
                AggregateSpec("count_star", None, "n"),
                AggregateSpec("sum", ColumnRef("total"), "total"),
                AggregateSpec("avg", ColumnRef("total"), "mean"),
            ],
        )
        result = planner.run(plan)
        by_cust = {row[0]: row[1:] for row in result}
        assert by_cust["ann"] == (3, 40.0, 20.0)  # NULL ignored by sum/avg
        assert by_cust["bob"] == (1, 20.0, 20.0)

    def test_min_max(self, orders):
        plan = GroupBy(
            RelationScan(orders),
            [],
            [
                AggregateSpec("min", ColumnRef("total"), "lo"),
                AggregateSpec("max", ColumnRef("total"), "hi"),
            ],
        )
        assert planner.run(plan).rows == [(10.0, 40.0)]

    def test_empty_input_scalar_aggregate(self):
        empty = Relation(Schema.of(("x", INTEGER)), [])
        plan = GroupBy(
            RelationScan(empty),
            [],
            [
                AggregateSpec("count_star", None, "n"),
                AggregateSpec("sum", ColumnRef("x"), "s"),
            ],
        )
        assert planner.run(plan).rows == [(0, NULL)]

    def test_empty_input_with_groups_yields_nothing(self):
        empty = Relation(Schema.of(("x", INTEGER)), [])
        plan = GroupBy(
            RelationScan(empty),
            [(ColumnRef("x"), "x")],
            [AggregateSpec("count_star", None, "n")],
        )
        assert len(planner.run(plan)) == 0

    def test_count_distinct(self, orders):
        plan = GroupBy(
            RelationScan(orders),
            [],
            [AggregateSpec("count", ColumnRef("cust"), "n", distinct=True)],
        )
        assert planner.run(plan).rows == [(3,)]

    def test_null_group_key(self, orders):
        plan = GroupBy(
            RelationScan(orders),
            [(ColumnRef("total"), "total")],
            [AggregateSpec("count_star", None, "n")],
        )
        result = planner.run(plan)
        assert len(result) == 5  # 4 values + the NULL group

    def test_argmax_single_winner(self, orders):
        plan = GroupBy(
            RelationScan(orders),
            [],
            [AggregateSpec("argmax", ColumnRef("cust"), "best", second=ColumnRef("total"))],
        )
        assert planner.run(plan).rows == [("cy",)]

    def test_argmax_emits_all_maximizers(self):
        schema = Schema.of(("team", TEXT), ("player", TEXT), ("score", INTEGER))
        rel = Relation(
            schema,
            [("a", "p1", 9), ("a", "p2", 9), ("a", "p3", 5), ("b", "q1", 3)],
        )
        plan = GroupBy(
            RelationScan(rel),
            [(ColumnRef("team"), "team")],
            [AggregateSpec("argmax", ColumnRef("player"), "best", second=ColumnRef("score"))],
        )
        result = planner.run(plan)
        assert sorted(result.rows) == [("a", "p1"), ("a", "p2"), ("b", "q1")]


class TestSortLimitAlias:
    def test_sort_descending_nulls_first(self, orders):
        # PostgreSQL semantics: DESC puts NULLs first.
        plan = Sort(RelationScan(orders), [(ColumnRef("total"), False)])
        totals = [row[2] for row in planner.run(plan)]
        assert totals[0] is NULL
        assert totals[1:] == [40.0, 30.0, 20.0, 10.0]

    def test_sort_ascending_nulls_last(self, orders):
        plan = Sort(RelationScan(orders), [(ColumnRef("total"), True)])
        totals = [row[2] for row in planner.run(plan)]
        assert totals[:4] == [10.0, 20.0, 30.0, 40.0]
        assert totals[4] is NULL

    def test_sort_multi_key(self, orders):
        plan = Sort(
            RelationScan(orders),
            [(ColumnRef("cust"), True), (ColumnRef("total"), False)],
        )
        rows = planner.run(plan).rows
        # ann first (asc), within ann: NULL first (desc), then 30, 10.
        assert rows[0][1] == "ann" and rows[0][2] is NULL
        assert rows[1][1] == "ann" and rows[1][2] == 30.0

    def test_limit_offset(self, orders):
        plan = Limit(Sort(RelationScan(orders), [(ColumnRef("id"), True)]), 2, 1)
        assert [row[0] for row in planner.run(plan)] == [2, 3]

    def test_limit_none_means_all(self, orders):
        assert len(planner.run(Limit(RelationScan(orders), None, 0))) == 5

    def test_alias_requalifies(self, orders):
        plan = Alias(RelationScan(orders), "o2")
        assert all(c.qualifier == "o2" for c in plan.schema())

    def test_alias_renames_columns(self, orders):
        plan = Alias(RelationScan(orders), "o2", ("x", "y", "z"))
        assert plan.schema().names == ["x", "y", "z"]

    def test_values(self):
        schema = Schema.of(("a", INTEGER))
        plan = Values(schema, ((1,), (2,)))
        assert len(planner.run(plan)) == 2

    def test_explain_renders_tree(self, orders):
        plan = Limit(Select(RelationScan(orders), Comparison("=", ColumnRef("id"), Literal(1))), 1, 0)
        text = plan.explain()
        assert "Limit" in text and "Select" in text and "Scan" in text
