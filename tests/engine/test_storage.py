"""Tests for base table storage, tuple ids, and indexes."""

import pytest

from repro.engine.indexes import HashIndex, SortedIndex
from repro.engine.schema import Schema
from repro.engine.storage import Table
from repro.engine.types import FLOAT, INTEGER, NULL, TEXT
from repro.errors import StorageError


@pytest.fixture
def table():
    t = Table("players", Schema.of(("name", TEXT), ("score", INTEGER)))
    t.insert(("ann", 10))
    t.insert(("bob", 20))
    t.insert(("cy", 30))
    return t


class TestBasicStorage:
    def test_insert_returns_increasing_tids(self):
        t = Table("t", Schema.of(("x", INTEGER)))
        assert t.insert((1,)) == 1
        assert t.insert((2,)) == 2

    def test_get(self, table):
        assert table.get(2) == ("bob", 20)

    def test_get_missing_raises(self, table):
        with pytest.raises(StorageError):
            table.get(99)

    def test_type_coercion_on_insert(self):
        t = Table("t", Schema.of(("x", FLOAT)))
        t.insert((1,))
        assert t.get(1) == (1.0,)

    def test_type_violation_rejected(self, table):
        with pytest.raises(Exception):
            table.insert((42, "not an int"))

    def test_arity_checked(self, table):
        with pytest.raises(StorageError):
            table.insert(("ann",))

    def test_null_allowed(self, table):
        tid = table.insert((NULL, NULL))
        assert table.get(tid) == (NULL, NULL)

    def test_delete_keeps_other_tids(self, table):
        table.delete(2)
        assert table.get(1) == ("ann", 10)
        assert table.get(3) == ("cy", 30)
        assert len(table) == 2

    def test_update_returns_old(self, table):
        old = table.update(1, ("ann", 11))
        assert old == ("ann", 10)
        assert table.get(1) == ("ann", 11)

    def test_restore_reuses_tid(self, table):
        row = table.delete(2)
        table.restore(2, row)
        assert table.get(2) == ("bob", 20)

    def test_restore_existing_tid_rejected(self, table):
        with pytest.raises(StorageError):
            table.restore(1, ("x", 1))

    def test_restore_advances_tid_counter(self):
        t = Table("t", Schema.of(("x", INTEGER)))
        t.restore(10, (1,))
        assert t.insert((2,)) == 11

    def test_snapshot_is_immutable_copy(self, table):
        snap = table.snapshot()
        table.insert(("dee", 40))
        assert len(snap) == 3

    def test_snapshot_alias(self, table):
        snap = table.snapshot("p")
        assert all(c.qualifier == "p" for c in snap.schema)

    def test_delete_where(self, table):
        victims = table.delete_where(lambda row: row[1] > 15)
        assert len(victims) == 2
        assert len(table) == 1

    def test_update_where(self, table):
        table.update_where(
            lambda row: row[0] == "ann", lambda row: (row[0], row[1] + 1)
        )
        assert table.get(1) == ("ann", 11)

    def test_truncate(self, table):
        removed = table.truncate()
        assert len(removed) == 3
        assert len(table) == 0


class TestBulkMutations:
    def test_insert_many_returns_consecutive_tids(self, table):
        tids = table.insert_many([("dee", 40), ("eve", 50)])
        assert tids == [4, 5]
        assert table.get(4) == ("dee", 40)
        assert table.get(5) == ("eve", 50)

    def test_insert_many_empty(self, table):
        assert table.insert_many([]) == []
        assert len(table) == 3

    def test_insert_many_coerces_types(self):
        t = Table("t", Schema.of(("x", FLOAT)))
        t.insert_many([(1,), (2,)])
        assert t.get(1) == (1.0,)

    def test_insert_many_maintains_indexes(self, table):
        table.create_hash_index("by_name", ["name"])
        table.create_sorted_index("by_score", ["score"])
        table.insert_many([("dee", 40), ("dee", 41)])
        assert [row[1] for row in table.lookup("by_name", ("dee",))] == [40, 41]
        index = table.index("by_score")
        assert [table.get(t)[0] for t in index.range((40,), (41,))] == ["dee", "dee"]

    def test_insert_many_equivalent_to_repeated_insert(self):
        a = Table("a", Schema.of(("x", INTEGER)))
        b = Table("b", Schema.of(("x", INTEGER)))
        a.create_hash_index("ix", ["x"])
        b.create_hash_index("ix", ["x"])
        rows = [(i % 3,) for i in range(10)]
        for row in rows:
            a.insert(row)
        b.insert_many(rows)
        assert list(a.rows()) == list(b.rows())
        assert a.lookup("ix", (1,)) == b.lookup("ix", (1,))

    def test_delete_where_maintains_indexes(self, table):
        table.create_hash_index("by_name", ["name"])
        removed = table.delete_where(lambda row: row[1] >= 20)
        assert [tid for tid, _ in removed] == [2, 3]
        assert table.lookup("by_name", ("bob",)) == []
        assert table.lookup("by_name", ("ann",)) == [("ann", 10)]

    def test_update_where_maintains_indexes(self, table):
        table.create_hash_index("by_score", ["score"])
        table.update_where(lambda row: row[0] == "bob", lambda row: (row[0], 99))
        assert table.lookup("by_score", (99,)) == [("bob", 99)]
        assert table.lookup("by_score", (20,)) == []


class TestSnapshotCaching:
    def test_snapshot_cached_until_mutation(self, table):
        first = table.snapshot()
        assert table.snapshot() is first  # unchanged table: same object
        table.insert(("dee", 40))
        second = table.snapshot()
        assert second is not first
        assert len(first) == 3 and len(second) == 4

    def test_all_mutations_invalidate(self, table):
        baseline = table.snapshot()
        table.delete(1)
        assert len(table.snapshot()) == 2
        table.update(2, ("bob", 21))
        assert ("bob", 21) in table.snapshot().rows
        table.insert_many([("dee", 40)])
        assert len(table.snapshot()) == 3
        table.truncate()
        assert len(table.snapshot()) == 0
        assert len(baseline) == 3  # old snapshots are unaffected

    def test_aliased_snapshot_shares_rows(self, table):
        base = table.snapshot()
        aliased = table.snapshot("p")
        assert aliased.rows is base.rows  # zero-copy requalification
        assert aliased.schema.columns[0].qualifier == "p"

    def test_restore_invalidates(self, table):
        table.snapshot()
        row = table.delete(2)
        table.restore(2, row)
        assert len(table.snapshot()) == 3


class TestHashIndexes:
    def test_lookup(self, table):
        table.create_hash_index("by_name", ["name"])
        assert table.lookup("by_name", ["bob"]) == [("bob", 20)]
        assert table.lookup("by_name", ["zed"]) == []

    def test_index_maintained_on_insert_delete(self, table):
        table.create_hash_index("by_name", ["name"])
        tid = table.insert(("bob", 99))
        assert len(table.lookup("by_name", ["bob"])) == 2
        table.delete(tid)
        assert len(table.lookup("by_name", ["bob"])) == 1

    def test_index_maintained_on_update(self, table):
        table.create_hash_index("by_name", ["name"])
        table.update(2, ("bobby", 20))
        assert table.lookup("by_name", ["bob"]) == []
        assert table.lookup("by_name", ["bobby"]) == [("bobby", 20)]

    def test_unique_index_violation(self, table):
        table.create_hash_index("uq", ["name"], unique=True)
        with pytest.raises(StorageError):
            table.insert(("ann", 99))

    def test_duplicate_index_name_rejected(self, table):
        table.create_hash_index("i", ["name"])
        with pytest.raises(StorageError):
            table.create_hash_index("i", ["score"])

    def test_drop_index(self, table):
        table.create_hash_index("i", ["name"])
        table.drop_index("i")
        with pytest.raises(StorageError):
            table.index("i")

    def test_null_keys_indexed(self, table):
        table.create_hash_index("by_score", ["score"])
        table.insert(("dee", NULL))
        assert table.lookup("by_score", [NULL]) == [("dee", NULL)]


class TestSortedIndex:
    def test_range_scan(self, table):
        index = table.create_sorted_index("by_score", ["score"])
        assert index.range([15], [35]) == [2, 3]
        assert index.range(None, [10]) == [1]
        assert index.range([25], None) == [3]

    def test_maintained_on_delete(self, table):
        index = table.create_sorted_index("by_score", ["score"])
        table.delete(2)
        assert index.range([0], [100]) == [1, 3]

    def test_full_range(self, table):
        index = table.create_sorted_index("by_score", ["score"])
        assert index.range() == [1, 2, 3]
