"""Tests for the system catalog (standard vs U-relation bookkeeping)."""

import pytest

from repro.engine.catalog import (
    KIND_STANDARD,
    KIND_URELATION,
    Catalog,
    CatalogEntry,
)
from repro.engine.schema import Schema
from repro.engine.storage import Table
from repro.engine.types import FLOAT, INTEGER, TEXT
from repro.errors import CatalogError, TableExistsError, TableNotFoundError


@pytest.fixture
def catalog():
    c = Catalog()
    c.create_table("plain", Schema.of(("a", INTEGER)))
    c.create_table(
        "probs",
        Schema.of(("a", INTEGER), ("_v0", INTEGER), ("_d0", INTEGER), ("_p0", FLOAT)),
        KIND_URELATION,
        {"payload_arity": 1, "cond_arity": 1},
    )
    return c


class TestLifecycle:
    def test_create_and_lookup(self, catalog):
        assert catalog.has_table("plain")
        assert catalog.table("plain").name == "plain"

    def test_case_insensitive(self, catalog):
        assert catalog.has_table("PLAIN")
        assert catalog.entry("Probs").is_urelation

    def test_duplicate_rejected(self, catalog):
        with pytest.raises(TableExistsError):
            catalog.create_table("plain", Schema.of(("x", TEXT)))

    def test_if_not_exists_returns_existing(self, catalog):
        entry = catalog.create_table(
            "plain", Schema.of(("zzz", TEXT)), if_not_exists=True
        )
        assert entry.table.schema.names == ["a"]

    def test_drop(self, catalog):
        catalog.drop_table("plain")
        assert not catalog.has_table("plain")

    def test_drop_missing_raises(self, catalog):
        with pytest.raises(TableNotFoundError):
            catalog.drop_table("ghost")

    def test_drop_if_exists_silent(self, catalog):
        assert catalog.drop_table("ghost", if_exists=True) is None

    def test_rename(self, catalog):
        catalog.rename_table("plain", "renamed")
        assert catalog.has_table("renamed")
        assert not catalog.has_table("plain")
        assert catalog.table("renamed").name == "renamed"

    def test_rename_to_existing_rejected(self, catalog):
        with pytest.raises(TableExistsError):
            catalog.rename_table("plain", "probs")

    def test_register_external(self, catalog):
        table = Table("ext", Schema.of(("x", TEXT)))
        catalog.register(CatalogEntry(table, KIND_STANDARD))
        assert catalog.has_table("ext")

    def test_unknown_kind_rejected(self):
        table = Table("t", Schema.of(("x", TEXT)))
        with pytest.raises(CatalogError):
            CatalogEntry(table, "weird")

    def test_table_names_sorted(self, catalog):
        assert catalog.table_names() == ["plain", "probs"]


class TestIntrospection:
    def test_sys_tables_distinguishes_kinds(self, catalog):
        rows = {row[0]: row for row in catalog.sys_tables()}
        assert rows["plain"][1] == KIND_STANDARD
        assert rows["probs"][1] == KIND_URELATION
        assert rows["probs"][3] == 1  # cond_arity

    def test_sys_tables_row_counts(self, catalog):
        catalog.table("plain").insert((1,))
        rows = {row[0]: row for row in catalog.sys_tables()}
        assert rows["plain"][2] == 1

    def test_sys_columns_marks_condition_columns(self, catalog):
        rows = [r for r in catalog.sys_columns() if r[0] == "probs"]
        flags = {name: is_cond for _, _, name, _, is_cond in rows}
        assert flags["a"] is False
        assert flags["_v0"] is True and flags["_p0"] is True

    def test_sys_columns_types(self, catalog):
        rows = [r for r in catalog.sys_columns() if r[0] == "plain"]
        assert rows[0][3] == "INTEGER"
