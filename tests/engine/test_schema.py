"""Tests for columns, schemas, and SQL name resolution."""

import pytest

from repro.engine.schema import Column, Schema
from repro.engine.types import FLOAT, INTEGER, TEXT
from repro.errors import (
    AmbiguousColumnError,
    DuplicateColumnError,
    UnknownColumnError,
)


@pytest.fixture
def joined_schema():
    """Schema shaped like the output of a self-join: r1.a, r1.b, r2.a."""
    return Schema(
        [
            Column("a", INTEGER, "r1"),
            Column("b", TEXT, "r1"),
            Column("a", INTEGER, "r2"),
        ]
    )


class TestColumn:
    def test_qualified_name(self):
        assert Column("x", INTEGER, "t").qualified_name == "t.x"
        assert Column("x", INTEGER).qualified_name == "x"

    def test_matches_case_insensitive(self):
        column = Column("Player", TEXT, "R1")
        assert column.matches("player")
        assert column.matches("PLAYER", "r1")
        assert not column.matches("player", "r2")

    def test_with_qualifier(self):
        column = Column("x", INTEGER, "a").with_qualifier("b")
        assert column.qualifier == "b"


class TestSchemaConstruction:
    def test_duplicate_unqualified_rejected(self):
        with pytest.raises(DuplicateColumnError):
            Schema([Column("a", INTEGER), Column("a", TEXT)])

    def test_duplicate_qualified_rejected(self):
        with pytest.raises(DuplicateColumnError):
            Schema([Column("a", INTEGER, "t"), Column("A", TEXT, "T")])

    def test_same_name_different_qualifiers_allowed(self, joined_schema):
        assert len(joined_schema) == 3

    def test_of_helper(self):
        schema = Schema.of(("a", INTEGER), ("b", TEXT))
        assert schema.names == ["a", "b"]
        assert schema.types == [INTEGER, TEXT]


class TestResolution:
    def test_resolve_unqualified_unique(self, joined_schema):
        assert joined_schema.resolve("b") == 1

    def test_resolve_unqualified_ambiguous(self, joined_schema):
        with pytest.raises(AmbiguousColumnError):
            joined_schema.resolve("a")

    def test_resolve_qualified(self, joined_schema):
        assert joined_schema.resolve("a", "r1") == 0
        assert joined_schema.resolve("a", "r2") == 2

    def test_resolve_missing(self, joined_schema):
        with pytest.raises(UnknownColumnError):
            joined_schema.resolve("z")
        with pytest.raises(UnknownColumnError):
            joined_schema.resolve("b", "r2")

    def test_case_insensitive(self, joined_schema):
        assert joined_schema.resolve("B", "R1") == 1

    def test_has(self, joined_schema):
        assert joined_schema.has("b")
        assert not joined_schema.has("a")  # ambiguous counts as not-has
        assert joined_schema.has("a", "r1")


class TestSchemaOperations:
    def test_concat(self):
        left = Schema.of(("a", INTEGER))
        right = Schema.of(("b", TEXT))
        assert left.concat(right).names == ["a", "b"]

    def test_project(self, joined_schema):
        projected = joined_schema.project([2, 0])
        assert [c.qualified_name for c in projected] == ["r2.a", "r1.a"]

    def test_with_qualifier(self, joined_schema):
        requalified = Schema.of(("a", INTEGER), ("b", TEXT)).with_qualifier("t")
        assert [c.qualified_name for c in requalified] == ["t.a", "t.b"]

    def test_rename(self):
        schema = Schema.of(("a", INTEGER), ("b", TEXT)).rename(["x", "y"])
        assert schema.names == ["x", "y"]

    def test_rename_arity_mismatch(self):
        with pytest.raises(DuplicateColumnError):
            Schema.of(("a", INTEGER)).rename(["x", "y"])

    def test_union_compatibility(self):
        a = Schema.of(("x", INTEGER), ("y", TEXT))
        b = Schema.of(("p", FLOAT), ("q", TEXT))
        c = Schema.of(("p", TEXT), ("q", TEXT))
        assert a.union_compatible_with(b)  # INTEGER/FLOAT widen
        assert not a.union_compatible_with(c)
        assert not a.union_compatible_with(Schema.of(("x", INTEGER)))
