"""Tests for the MayBMS session facade: table management, recovery,
error paths, and cross-layer invariants through the public API."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import MayBMS, Relation, Schema, FLOAT, INTEGER, TEXT
from repro.core.urelation import URelation
from repro.errors import AnalysisError, MayBMSError, TransactionError


@pytest.fixture
def db():
    session = MayBMS()
    session.execute("create table t (k integer, v text, w float)")
    session.execute(
        "insert into t values (1, 'a', 1.0), (1, 'b', 3.0), (2, 'c', 2.0)"
    )
    return session


class TestTableManagement:
    def test_create_from_relation(self, db):
        relation = Relation(Schema.of(("x", INTEGER)), [(1,), (2,)])
        db.create_table_from_relation("ext", relation)
        assert len(db.table("ext")) == 2

    def test_create_from_urelation_roundtrip(self, db):
        urel = db.uncertain_query(
            "select * from (repair key k in t weight by w) r"
        )
        db.create_table_from_urelation("stored", urel)
        back = db.urelation("stored")
        assert back.payload_arity == urel.payload_arity
        assert back.cond_arity == urel.cond_arity
        assert len(back) == len(urel)

    def test_urelation_accessor_rejects_standard(self, db):
        with pytest.raises(AnalysisError):
            db.urelation("t")

    def test_tables_listing(self, db):
        assert db.tables() == ["t"]

    def test_sys_columns_through_facade(self, db):
        db.execute("create table u as select * from (pick tuples from t) s")
        rows = [r for r in db.sys_columns() if r[0] == "u"]
        condition_flags = [r[4] for r in rows]
        assert condition_flags[-3:] == [True, True, True]


class TestQueryInterfaces:
    def test_query_vs_uncertain_query(self, db):
        certain = db.query("select k from t")
        assert len(certain) == 3
        uncertain = db.uncertain_query(
            "select k from (pick tuples from t) s"
        )
        assert isinstance(uncertain, URelation)

    def test_uncertain_query_rejects_certain(self, db):
        with pytest.raises(AnalysisError):
            db.uncertain_query("select k from t")

    def test_all_errors_share_base(self, db):
        with pytest.raises(MayBMSError):
            db.query("select nope from t")
        with pytest.raises(MayBMSError):
            db.query("select sum( from t")
        with pytest.raises(MayBMSError):
            db.query("select k from ghost")


class TestRecoveryThroughFacade:
    def test_wal_replay_restores_committed_state(self, db):
        db.begin()
        db.transaction.create_table("journal", Schema.of(("x", INTEGER)))
        db.transaction.insert("journal", (10,))
        db.transaction.insert("journal", (20,))
        db.commit()

        db.begin()
        db.transaction.insert("journal", (99,))
        db.rollback()  # never committed, must not survive recovery

        recovered = db.wal.replay()
        assert recovered.has_table("journal")
        assert sorted(recovered.table("journal").rows()) == [(10,), (20,)]

    def test_transaction_state_errors(self, db):
        with pytest.raises(TransactionError):
            db.commit()
        with pytest.raises(TransactionError):
            db.rollback()
        with pytest.raises(TransactionError):
            _ = db.transaction


class TestCrossLayerProperties:
    @given(
        st.lists(
            st.tuples(st.integers(1, 3), st.floats(0.5, 4.0)),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_repair_key_conf_equals_normalized_weights(self, rows):
        """Through the full SQL stack: conf of each repair-key alternative
        equals its weight divided by the group total."""
        session = MayBMS()
        session.execute("create table r (k integer, w float)")
        for k, w in rows:
            session.execute(f"insert into r values ({k}, {w})")
        result = session.query(
            "select k, w, conf() as p from "
            "(repair key k in r weight by w) x group by k, w"
        )
        totals = {}
        for k, w in rows:
            totals[k] = totals.get(k, 0.0) + w
        # Duplicate (k, w) pairs or-combine; compute expected per distinct row.
        weight_sums = {}
        for k, w in rows:
            weight_sums[(k, w)] = weight_sums.get((k, w), 0.0) + w
        for k, w, p in result:
            assert p == pytest.approx(weight_sums[(k, w)] / totals[k], rel=1e-9)

    @given(
        st.lists(
            st.tuples(st.integers(-5, 5), st.floats(0.0, 1.0)),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_pick_tuples_esum_linearity(self, rows):
        """esum over pick-tuples equals sum(v * p) regardless of structure."""
        session = MayBMS()
        session.execute("create table r (v integer, p float)")
        for v, p in rows:
            session.execute(f"insert into r values ({v}, {p})")
        result = session.query(
            "select esum(v) as e from "
            "(pick tuples from r independently with probability p) s"
        )
        expected = sum(v * p for v, p in rows)
        assert result.single_value() == pytest.approx(expected, abs=1e-9)

    @given(st.integers(1, 4), st.integers(2, 4))
    @settings(max_examples=10, deadline=None)
    def test_conf_distribution_sums_to_one_per_group(self, n_groups, group_size):
        session = MayBMS()
        session.execute("create table r (k integer, v integer)")
        for k in range(n_groups):
            for v in range(group_size):
                session.execute(f"insert into r values ({k}, {v})")
        result = session.query(
            "select k, v, conf() as p from (repair key k in r) x group by k, v"
        )
        sums = {}
        for k, v, p in result:
            sums[k] = sums.get(k, 0.0) + p
        for total in sums.values():
            assert total == pytest.approx(1.0)
