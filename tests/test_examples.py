"""Smoke tests: every example script runs to completion.

The examples are deliverables; each embeds its own correctness assertions
(e.g. random_walk.py asserts machine-precision agreement with numpy), so
"runs without raising" is a meaningful check.
"""

import io
import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    captured = capsys.readouterr()
    assert captured.out.strip(), f"{script} produced no output"


def test_all_examples_present():
    assert {
        "quickstart.py",
        "random_walk.py",
        "nba_whatif.py",
        "data_cleaning.py",
        "sprout_safe_plans.py",
        "conditioning_beliefs.py",
    } <= set(EXAMPLES)
